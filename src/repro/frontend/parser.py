"""Recursive-descent parser for CoreDSL (grammar of paper Figure 2).

Produces the AST defined in :mod:`repro.frontend.ast_nodes`.  The statement
and expression sublanguage follows C with the paper's extensions:

* the concatenation operator ``::``,
* the array-subscript operator on scalars (single bit) and with ranges
  (``x[hi:lo]``),
* Verilog-sized literals,
* ``spawn { ... }`` blocks,
* bitwidth-parameterized types ``signed<expr>`` / ``unsigned<expr>``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, tokenize
from repro.frontend.types import ALIASES, IntType
from repro.utils.diagnostics import CoreDSLError

_TYPE_KEYWORDS = {"signed", "unsigned", "int", "char", "short", "long", "bool"}
_STORAGE_KEYWORDS = {"register", "extern", "const", "volatile", "static"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

#: Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "::": 8,
    "<<": 9, ">>": 9,
    "+": 10, "-": 10,
    "*": 11, "/": 11, "%": 11,
}


class Parser:
    """Token-stream parser; one instance per source file."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind in ("op", "keyword") and tok.text == text

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            tok = self.peek()
            raise CoreDSLError(f"expected {text!r}, found {tok.text!r}", tok.loc)
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != "ident":
            raise CoreDSLError(f"expected identifier, found {tok.text!r}", tok.loc)
        return self.advance()

    def error(self, message: str) -> CoreDSLError:
        return CoreDSLError(message, self.peek().loc)

    # -- top level -------------------------------------------------------------
    def parse_description(self) -> ast.Description:
        desc = ast.Description(loc=self.peek().loc)
        while self.accept("import"):
            tok = self.peek()
            if tok.kind != "string":
                raise self.error("expected string literal after 'import'")
            self.advance()
            self.accept(";")  # Figure 1 of the paper omits the semicolon
            desc.imports.append(tok.text)
        while self.peek().kind != "eof":
            if self.check("InstructionSet"):
                desc.instruction_sets.append(self.parse_instruction_set())
            elif self.check("Core"):
                desc.cores.append(self.parse_core())
            else:
                raise self.error(
                    f"expected 'InstructionSet' or 'Core', found {self.peek().text!r}"
                )
        return desc

    def parse_instruction_set(self) -> ast.InstructionSetDef:
        loc = self.expect("InstructionSet").loc
        name = self.expect_ident().text
        extends = None
        if self.accept("extends"):
            extends = self.expect_ident().text
        body = self.parse_isa_body()
        return ast.InstructionSetDef(loc=loc, name=name, extends=extends, body=body)

    def parse_core(self) -> ast.CoreDef:
        loc = self.expect("Core").loc
        name = self.expect_ident().text
        provides: List[str] = []
        if self.accept("provides"):
            provides.append(self.expect_ident().text)
            while self.accept(","):
                provides.append(self.expect_ident().text)
        body = self.parse_isa_body()
        return ast.CoreDef(loc=loc, name=name, provides=provides, body=body)

    def parse_isa_body(self) -> ast.ISABody:
        loc = self.expect("{").loc
        body = ast.ISABody(loc=loc)
        while not self.accept("}"):
            if self.check("architectural_state"):
                self.advance()
                self.expect("{")
                while not self.accept("}"):
                    body.state.extend(self.parse_state_decl())
            elif self.check("instructions"):
                self.advance()
                self.expect("{")
                while not self.accept("}"):
                    body.instructions.append(self.parse_instruction())
            elif self.check("always"):
                self.advance()
                self.expect("{")
                while not self.accept("}"):
                    name_tok = self.expect_ident()
                    block = self.parse_block()
                    body.always_blocks.append(
                        ast.AlwaysDef(loc=name_tok.loc, name=name_tok.text, body=block)
                    )
            elif self.check("functions"):
                self.advance()
                self.expect("{")
                while not self.accept("}"):
                    body.functions.append(self.parse_function())
            else:
                raise self.error(
                    "expected 'architectural_state', 'instructions', 'always' "
                    f"or 'functions', found {self.peek().text!r}"
                )
        return body

    # -- architectural state ------------------------------------------------
    def parse_state_decl(self) -> List[ast.StateDecl]:
        loc = self.peek().loc
        storage = "param"
        while self.peek().kind == "keyword" and self.peek().text in _STORAGE_KEYWORDS:
            word = self.advance().text
            if word in ("register", "extern", "const"):
                storage = word
        is_signed, width_expr = self.parse_type_spec()
        decls: List[ast.StateDecl] = []
        while True:
            name_tok = self.expect_ident()
            decl = ast.StateDecl(
                loc=loc, storage=storage, is_signed=is_signed,
                width_expr=width_expr, name=name_tok.text,
            )
            is_attr_start = (
                self.check("[")
                and self.peek(1).kind == "op"
                and self.peek(1).text == "["
            )
            if self.check("[") and not is_attr_start:
                self.advance()
                decl.array_size_expr = self.parse_expr()
                self.expect("]")
            while self.check("[") and self.peek(1).kind == "op" and self.peek(1).text == "[":
                self.advance()
                self.advance()
                decl.attributes.append(self.expect_ident().text)
                self.expect("]")
                self.expect("]")
            if self.accept("="):
                if self.check("{"):
                    self.advance()
                    decl.init_list = []
                    if not self.check("}"):
                        decl.init_list.append(self.parse_expr())
                        while self.accept(","):
                            decl.init_list.append(self.parse_expr())
                    self.expect("}")
                else:
                    decl.init = self.parse_expr()
            decls.append(decl)
            if not self.accept(","):
                break
        self.expect(";")
        return decls

    def parse_type_spec(self):
        """Return ``(is_signed, width_expr)``.  ``width_expr`` is an Expr
        (usually a constant) to support parameterized widths."""
        tok = self.peek()
        if tok.kind != "keyword" or tok.text not in _TYPE_KEYWORDS:
            raise self.error(f"expected type, found {tok.text!r}")
        self.advance()
        word = tok.text
        if word in ("signed", "unsigned"):
            if self.accept("<"):
                # Width expressions stop before relational operators so the
                # closing '>' of the type is not mistaken for "greater-than".
                width = self.parse_binary(_BINARY_PRECEDENCE["::"])
                self.expect(">")
                return word == "signed", width
            # 'unsigned int', 'unsigned char', ... or bare (defaults to 32 bit)
            nxt = self.peek()
            if nxt.kind == "keyword" and nxt.text in ALIASES:
                self.advance()
                base = ALIASES[nxt.text]
                return word == "signed", _const_expr(base.width, tok)
            return word == "signed", _const_expr(32, tok)
        base = ALIASES[word]
        return base.is_signed, _const_expr(base.width, tok)

    # -- instructions ----------------------------------------------------------
    def parse_instruction(self) -> ast.InstructionDef:
        name_tok = self.expect_ident()
        self.expect("{")
        self.expect("encoding")
        self.expect(":")
        encoding = self.parse_encoding()
        # Optional (ignored) assembly section, part of full CoreDSL.
        if self.accept("assembly"):
            self.expect(":")
            while not self.check(";"):
                self.advance()
            self.expect(";")
        self.expect("behavior")
        self.expect(":")
        behavior = self.parse_statement()
        if not isinstance(behavior, ast.BlockStmt):
            behavior = ast.BlockStmt(loc=behavior.loc, statements=[behavior])
        self.expect("}")
        return ast.InstructionDef(
            loc=name_tok.loc, name=name_tok.text, encoding=encoding, behavior=behavior
        )

    def parse_encoding(self) -> List[ast.EncodingComponent]:
        comps: List[ast.EncodingComponent] = []
        while True:
            tok = self.peek()
            if tok.kind == "verilog_number":
                self.advance()
                comps.append(ast.EncBits(loc=tok.loc, width=tok.width, value=tok.value))
            elif tok.kind == "ident":
                self.advance()
                self.expect("[")
                hi = self._expect_int()
                self.expect(":")
                lo = self._expect_int()
                self.expect("]")
                comps.append(ast.EncField(loc=tok.loc, name=tok.text, hi=hi, lo=lo))
            else:
                raise self.error(
                    "encoding component must be a sized literal (e.g. 7'b0001011) "
                    f"or a field slice (e.g. rs1[4:0]), found {tok.text!r}"
                )
            if not self.accept("::"):
                break
        self.expect(";")
        return comps

    def _expect_int(self) -> int:
        tok = self.peek()
        if tok.kind not in ("number", "verilog_number"):
            raise self.error(f"expected integer, found {tok.text!r}")
        self.advance()
        return tok.value

    # -- functions --------------------------------------------------------------
    def parse_function(self) -> ast.FunctionDef:
        loc = self.peek().loc
        if self.accept("void"):
            ret_signed, ret_width = False, None
        else:
            ret_signed, ret_width = self.parse_type_spec()
        name = self.expect_ident().text
        self.expect("(")
        params: List[ast.FunctionParam] = []
        if not self.check(")"):
            while True:
                p_signed, p_width = self.parse_type_spec()
                p_name = self.expect_ident().text
                params.append(ast.FunctionParam(
                    loc=loc, is_signed=p_signed, width_expr=p_width, name=p_name
                ))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.FunctionDef(
            loc=loc, name=name, return_signed=ret_signed,
            return_width_expr=ret_width, params=params, body=body,
        )

    # -- statements ---------------------------------------------------------------
    def parse_block(self) -> ast.BlockStmt:
        loc = self.expect("{").loc
        stmts: List[ast.Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_statement())
        return ast.BlockStmt(loc=loc, statements=stmts)

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if self.check("{"):
            return self.parse_block()
        if self.accept(";"):
            return ast.BlockStmt(loc=tok.loc)
        if self.check("if"):
            return self.parse_if()
        if self.check("for"):
            return self.parse_for()
        if self.check("while"):
            return self.parse_while()
        if self.check("do"):
            return self.parse_do_while()
        if self.check("switch"):
            return self.parse_switch()
        if self.check("spawn"):
            self.advance()
            body = self.parse_block()
            return ast.SpawnStmt(loc=tok.loc, body=body)
        if self.check("return"):
            self.advance()
            value = None if self.check(";") else self.parse_expr()
            self.expect(";")
            return ast.ReturnStmt(loc=tok.loc, value=value)
        if tok.kind == "keyword" and tok.text in _TYPE_KEYWORDS:
            stmt = self.parse_var_decl()
            self.expect(";")
            return stmt
        stmt = self.parse_expr_or_assign()
        self.expect(";")
        return stmt

    def parse_var_decl(self) -> ast.Stmt:
        loc = self.peek().loc
        is_signed, width_expr = self.parse_type_spec()
        decls: List[ast.Stmt] = []
        while True:
            name = self.expect_ident().text
            init = self.parse_expr() if self.accept("=") else None
            decls.append(ast.VarDecl(
                loc=loc, is_signed=is_signed, width_expr=width_expr,
                name=name, init=init,
            ))
            if not self.accept(","):
                break
        if len(decls) == 1:
            return decls[0]
        return ast.BlockStmt(loc=loc, statements=decls)

    def parse_expr_or_assign(self) -> ast.Stmt:
        loc = self.peek().loc
        # Prefix increment/decrement as statements: ``--COUNT;``
        if self.check("++") or self.check("--"):
            op = self.advance().text
            target = self.parse_unary()
            one = ast.IntLiteral(loc=loc, value=1)
            return ast.Assign(loc=loc, target=target, op=op[0] + "=", value=one)
        expr = self.parse_expr()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.advance()
            value = self.parse_expr()
            return ast.Assign(loc=loc, target=expr, op=tok.text, value=value)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            one = ast.IntLiteral(loc=loc, value=1)
            return ast.Assign(loc=loc, target=expr, op=tok.text[0] + "=", value=one)
        return ast.ExprStmt(loc=loc, expr=expr)

    def parse_if(self) -> ast.IfStmt:
        loc = self.expect("if").loc
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.parse_statement()
        else_body = None
        if self.accept("else"):
            else_body = self.parse_statement()
        return ast.IfStmt(loc=loc, cond=cond, then_body=then_body, else_body=else_body)

    def parse_for(self) -> ast.ForStmt:
        loc = self.expect("for").loc
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.check(";"):
            tok = self.peek()
            if tok.kind == "keyword" and tok.text in _TYPE_KEYWORDS:
                init = self.parse_var_decl()
            else:
                init = self.parse_expr_or_assign()
        self.expect(";")
        cond = None if self.check(";") else self.parse_expr()
        self.expect(";")
        step: Optional[ast.Stmt] = None
        if not self.check(")"):
            step = self.parse_expr_or_assign()
        self.expect(")")
        body = self.parse_statement()
        return ast.ForStmt(loc=loc, init=init, cond=cond, step=step, body=body)

    def parse_while(self) -> ast.WhileStmt:
        loc = self.expect("while").loc
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_statement()
        return ast.WhileStmt(loc=loc, cond=cond, body=body)

    def parse_do_while(self) -> ast.WhileStmt:
        loc = self.expect("do").loc
        body = self.parse_statement()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.WhileStmt(loc=loc, cond=cond, body=body, is_do_while=True)

    def parse_switch(self) -> ast.SwitchStmt:
        loc = self.expect("switch").loc
        self.expect("(")
        value = self.parse_expr()
        self.expect(")")
        self.expect("{")
        cases: List[ast.SwitchCase] = []
        seen_default = False
        while not self.accept("}"):
            case_loc = self.peek().loc
            if self.accept("case"):
                label = self.parse_expr()
            elif self.accept("default"):
                if seen_default:
                    raise CoreDSLError("duplicate 'default' label", case_loc)
                seen_default = True
                label = None
            else:
                raise self.error("expected 'case' or 'default'")
            self.expect(":")
            statements: List[ast.Stmt] = []
            terminated = False
            while not (self.check("case") or self.check("default")
                       or self.check("}")):
                if self.accept("break"):
                    self.expect(";")
                    terminated = True
                    break
                statements.append(self.parse_statement())
            if not terminated and not (label is None and self.check("}")):
                # Arms must be break-terminated; only the final 'default'
                # arm may fall off the end of the switch.
                raise CoreDSLError(
                    "switch arms must end with 'break' (fall-through is "
                    "not supported)",
                    case_loc,
                )
            cases.append(ast.SwitchCase(
                loc=case_loc, label=label,
                body=ast.BlockStmt(loc=case_loc, statements=statements),
            ))
        return ast.SwitchStmt(loc=loc, value=value, cases=cases)

    # -- expressions ------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self.parse_conditional()

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            true_value = self.parse_expr()
            self.expect(":")
            false_value = self.parse_conditional()
            return ast.Conditional(
                loc=cond.loc, cond=cond, true_value=true_value, false_value=false_value
            )
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "op":
                break
            prec = _BINARY_PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                break
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.BinaryOp(loc=tok.loc, op=tok.text, lhs=lhs, rhs=rhs)
        return lhs

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "~", "!", "+"):
            self.advance()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return ast.UnaryOp(loc=tok.loc, op=tok.text, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.check("["):
            self.advance()
            first = self.parse_expr()
            if self.accept(":"):
                second = self.parse_expr()
                self.expect("]")
                expr = ast.RangeExpr(loc=expr.loc, base=expr, hi=first, lo=second)
            else:
                self.expect("]")
                expr = ast.IndexExpr(loc=expr.loc, base=expr, index=first)
        return expr

    def _looks_like_cast(self) -> bool:
        """A '(' starts a cast iff the next token is a type keyword."""
        nxt = self.peek(1)
        return nxt.kind == "keyword" and nxt.text in _TYPE_KEYWORDS

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return ast.IntLiteral(loc=tok.loc, value=tok.value)
        if tok.kind == "verilog_number":
            self.advance()
            lit_type = IntType(tok.width, tok.signed)
            return ast.IntLiteral(loc=tok.loc, value=tok.value, explicit_type=lit_type)
        if self.check("true") or self.check("false"):
            self.advance()
            return ast.BoolLiteral(loc=tok.loc, value=tok.text == "true")
        if tok.kind == "ident":
            self.advance()
            if self.check("("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.check(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return ast.FunctionCall(loc=tok.loc, callee=tok.text, args=args)
            return ast.Identifier(loc=tok.loc, name=tok.text)
        if self.check("("):
            if self._looks_like_cast():
                return self.parse_cast()
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise self.error(f"expected expression, found {tok.text!r}")

    def parse_cast(self) -> ast.Expr:
        loc = self.expect("(").loc
        word = self.peek().text
        has_explicit_width = False
        if word in ("signed", "unsigned"):
            self.advance()
            is_signed = word == "signed"
            width_expr: Optional[ast.Expr] = None
            if self.accept("<"):
                width_expr = self.parse_binary(_BINARY_PRECEDENCE["::"])
                self.expect(">")
                has_explicit_width = True
            elif self.peek().kind == "keyword" and self.peek().text in ALIASES:
                alias = ALIASES[self.advance().text]
                width_expr = _const_expr(alias.width, self.peek())
                has_explicit_width = True
        else:
            alias = ALIASES[self.advance().text]
            is_signed = alias.is_signed
            width_expr = _const_expr(alias.width, self.peek())
            has_explicit_width = True
        self.expect(")")
        operand = self.parse_unary()
        return ast.Cast(
            loc=loc, target_signed=is_signed,
            width_expr=width_expr if has_explicit_width else None,
            operand=operand,
        )


def _const_expr(value: int, tok: Token) -> ast.IntLiteral:
    return ast.IntLiteral(loc=tok.loc, value=value)


def parse_description(text: str, filename: str = "<input>") -> ast.Description:
    """Parse a CoreDSL source string into a :class:`Description` AST."""
    parser = Parser(tokenize(text, filename))
    return parser.parse_description()
