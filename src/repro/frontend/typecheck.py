"""Type checking and constant evaluation for CoreDSL behaviors.

Implements the bitwidth-aware rules of paper Section 2.3 on the AST:

* every expression gets a ``ctype`` (:class:`~repro.frontend.types.IntType`),
* implicit conversions must be value-preserving (no silent narrowing or sign
  loss), with the single exception of *compound* assignments (``a += b``),
  which by definition truncate back to the target's type,
* bit/element ranges (``x[hi:lo]``) require bounds that are compile-time
  constants or the same variable with constant offsets (paper Section 2.4),
* constants are folded so that loop bounds and shift amounts are known.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend import ast_nodes as ast
from repro.frontend import types as ty
from repro.frontend.types import IntType
from repro.utils.diagnostics import CoreDSLError, SourceLocation

# ---------------------------------------------------------------------------
# Constant evaluation (value semantics: mathematical integers)
# ---------------------------------------------------------------------------

_ARITH_FOLD = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: _int_div(a, b),
    "%": lambda a, b: _int_rem(a, b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


def _int_div(a: int, b: int) -> int:
    """C-style truncating division."""
    if b == 0:
        raise CoreDSLError("division by zero in constant expression")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _int_rem(a: int, b: int) -> int:
    return a - _int_div(a, b) * b


def const_eval(expr: ast.Expr, env: Optional[Dict[str, int]] = None) -> Optional[int]:
    """Evaluate ``expr`` to a mathematical integer if it is a compile-time
    constant under ``env`` (name -> value); return None otherwise."""
    env = env or {}
    if isinstance(expr, ast.IntLiteral):
        if expr.explicit_type is not None and expr.explicit_type.is_signed:
            from repro.utils.bits import to_signed
            return to_signed(expr.value, expr.explicit_type.width)
        return expr.value
    if isinstance(expr, ast.BoolLiteral):
        return int(expr.value)
    if isinstance(expr, ast.Identifier):
        return env.get(expr.name)
    if isinstance(expr, ast.UnaryOp):
        val = const_eval(expr.operand, env)
        if val is None:
            return None
        if expr.op == "-":
            return -val
        if expr.op == "!":
            return int(not val)
        if expr.op == "~":
            # Complement within the operand's type (matching the golden
            # interpreter): ``~unsigned<8>(186)`` is 69, not -187.  The
            # operand's ctype is available whenever the checker has already
            # decorated it; fall back to the signed view otherwise.
            operand_type = getattr(expr.operand, "ctype", None)
            if isinstance(operand_type, IntType):
                from repro.utils.bits import to_signed, to_unsigned
                raw = to_unsigned(~to_unsigned(val, operand_type.width),
                                  operand_type.width)
                if operand_type.is_signed:
                    return to_signed(raw, operand_type.width)
                return raw
            return ~val
        return None
    if isinstance(expr, ast.BinaryOp):
        fold = _ARITH_FOLD.get(expr.op)
        if fold is None:
            return None
        lhs = const_eval(expr.lhs, env)
        rhs = const_eval(expr.rhs, env)
        if lhs is None or rhs is None:
            return None
        return fold(lhs, rhs)
    if isinstance(expr, ast.Conditional):
        cond = const_eval(expr.cond, env)
        if cond is None:
            return None
        return const_eval(expr.true_value if cond else expr.false_value, env)
    if isinstance(expr, ast.Cast):
        val = const_eval(expr.operand, env)
        if val is None or expr.width_expr is None:
            return None
        width = const_eval(expr.width_expr, env)
        if width is None:
            return None
        from repro.utils.bits import to_signed, to_unsigned
        raw = to_unsigned(val, width)
        return to_signed(raw, width) if expr.target_signed else raw
    return None


def affine_form(
    expr: ast.Expr, env: Optional[Dict[str, int]] = None
) -> Optional[Tuple[Optional[str], int]]:
    """Decompose ``expr`` as ``var + offset`` (var may be None for pure
    constants).  Used to validate range bounds like ``x[i+7:i]``."""
    env = env or {}
    val = const_eval(expr, env)
    if val is not None:
        return (None, val)
    if isinstance(expr, ast.Identifier):
        return (expr.name, 0)
    if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-"):
        lhs = affine_form(expr.lhs, env)
        rhs = affine_form(expr.rhs, env)
        if lhs is None or rhs is None:
            return None
        lvar, loff = lhs
        rvar, roff = rhs
        if expr.op == "+":
            if lvar is not None and rvar is not None:
                return None
            return (lvar or rvar, loff + roff)
        if rvar is not None:
            return None
        return (lvar, loff - roff)
    return None


def range_width(
    hi: ast.Expr, lo: ast.Expr, env: Optional[Dict[str, int]] = None
) -> int:
    """Number of elements/bits selected by ``[hi:lo]``; raises if the bounds
    are not constants or not the same variable with constant offsets."""
    hi_form = affine_form(hi, env)
    lo_form = affine_form(lo, env)
    if hi_form is None or lo_form is None or hi_form[0] != lo_form[0]:
        raise CoreDSLError(
            "range bounds must be compile-time constants or the same "
            "variable with a constant offset",
            hi.loc,
        )
    diff = hi_form[1] - lo_form[1]
    if diff < 0:
        raise CoreDSLError(f"range [{hi_form[1]}:{lo_form[1]}] has from < to", hi.loc)
    return diff + 1


# ---------------------------------------------------------------------------
# State / function metadata used during checking
# ---------------------------------------------------------------------------

class StateInfo:
    """Resolved information about one architectural-state element."""

    KINDS = ("scalar_reg", "array_reg", "mem", "rom", "param")

    def __init__(self, name: str, kind: str, element: IntType,
                 size: Optional[int] = None, attributes: Optional[List[str]] = None,
                 init_values: Optional[List[int]] = None,
                 loc: Optional["SourceLocation"] = None):
        assert kind in self.KINDS
        self.name = name
        self.kind = kind
        self.element = element
        self.size = size
        self.attributes = attributes or []
        self.init_values = init_values
        #: Declaration site (for lints); None for synthesized state.
        self.loc = loc

    @property
    def is_pc(self) -> bool:
        return "is_pc" in self.attributes

    @property
    def is_main_reg(self) -> bool:
        return "is_main_reg" in self.attributes

    @property
    def is_main_mem(self) -> bool:
        return "is_main_mem" in self.attributes

    def __repr__(self) -> str:
        suffix = f"[{self.size}]" if self.size is not None else ""
        return f"StateInfo({self.name}: {self.element}{suffix}, {self.kind})"


class FunctionSig:
    def __init__(self, name: str, params: List[Tuple[str, IntType]],
                 return_type: Optional[IntType], definition: ast.FunctionDef):
        self.name = name
        self.params = params
        self.return_type = return_type
        self.definition = definition


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------

class TypeChecker:
    """Checks and decorates the behaviors of one elaborated ISA."""

    def __init__(self, parameters: Dict[str, int], state: Dict[str, StateInfo],
                 functions: Dict[str, FunctionSig]):
        self.parameters = parameters
        self.state = state
        self.functions = functions
        self.scopes: List[Dict[str, IntType]] = []
        self.fields: Dict[str, IntType] = {}
        self.current_function: Optional[FunctionSig] = None
        self.in_always = False
        self.saw_spawn = False

    # -- scope helpers -------------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare_local(self, name: str, type_: IntType, loc) -> None:
        if name in self.scopes[-1]:
            raise CoreDSLError(f"redeclaration of '{name}'", loc)
        self.scopes[-1][name] = type_

    def lookup_local(self, name: str) -> Optional[IntType]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def width_of(self, width_expr: Optional[ast.Expr], loc) -> int:
        if width_expr is None:
            raise CoreDSLError("missing type width", loc)
        width = const_eval(width_expr, self.parameters)
        if width is None:
            raise CoreDSLError("type width must be a compile-time constant", loc)
        if width < 1:
            raise CoreDSLError(f"type width must be >= 1, got {width}", loc)
        return width

    # -- entry points -----------------------------------------------------------
    def check_instruction(self, instr: ast.InstructionDef,
                          fields: Dict[str, IntType]) -> bool:
        """Check an instruction behavior; returns True if it contains spawn."""
        self.fields = dict(fields)
        self.scopes = [{}]
        self.in_always = False
        self.saw_spawn = False
        self.check_stmt(instr.behavior)
        self.fields = {}
        return self.saw_spawn

    def check_always(self, block: ast.AlwaysDef) -> None:
        self.fields = {}
        self.scopes = [{}]
        self.in_always = True
        try:
            self.check_stmt(block.body)
        finally:
            self.in_always = False

    def check_function(self, sig: FunctionSig) -> None:
        self.fields = {}
        self.scopes = [dict(sig.params)]
        self.current_function = sig
        try:
            self.check_stmt(sig.definition.body)
        finally:
            self.current_function = None

    # -- statements ------------------------------------------------------------
    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.BlockStmt):
            self.push_scope()
            for child in stmt.statements:
                self.check_stmt(child)
            self.pop_scope()
        elif isinstance(stmt, ast.VarDecl):
            width = self.width_of(stmt.width_expr, stmt.loc)
            decl_type = IntType(width, stmt.is_signed)
            stmt.decl_type = decl_type
            if stmt.init is not None:
                init_type = self.check_expr(stmt.init)
                self.require_convertible(init_type, decl_type, stmt.init)
            self.declare_local(stmt.name, decl_type, stmt.loc)
        elif isinstance(stmt, ast.Assign):
            self.check_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr_or_void(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.check_expr(stmt.cond)
            self.check_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self.check_stmt(stmt.else_body)
        elif isinstance(stmt, ast.ForStmt):
            self.push_scope()
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self.check_expr(stmt.cond)
            if stmt.step is not None:
                self.check_stmt(stmt.step)
            self.check_stmt(stmt.body)
            self.pop_scope()
        elif isinstance(stmt, ast.WhileStmt):
            self.push_scope()
            self.check_expr(stmt.cond)
            self.check_stmt(stmt.body)
            self.pop_scope()
        elif isinstance(stmt, ast.SwitchStmt):
            value_type = self.check_expr(stmt.value)
            for case in stmt.cases:
                if case.label is not None:
                    label_type = self.check_expr(case.label)
                    if case.label.const_value is None:
                        raise CoreDSLError(
                            "case labels must be compile-time constants",
                            case.loc,
                        )
                    if not value_type.can_represent(case.label.const_value):
                        raise CoreDSLError(
                            f"case label {case.label.const_value} is not "
                            f"representable in the switch value's type "
                            f"{value_type}",
                            case.loc,
                        )
                self.check_stmt(case.body)
        elif isinstance(stmt, ast.ReturnStmt):
            if self.current_function is None:
                raise CoreDSLError("'return' outside of a function", stmt.loc)
            ret = self.current_function.return_type
            if ret is None:
                if stmt.value is not None:
                    raise CoreDSLError("void function cannot return a value", stmt.loc)
            else:
                if stmt.value is None:
                    raise CoreDSLError("missing return value", stmt.loc)
                value_type = self.check_expr(stmt.value)
                self.require_convertible(value_type, ret, stmt.value)
        elif isinstance(stmt, ast.SpawnStmt):
            if self.in_always:
                raise CoreDSLError("'spawn' is not allowed in always-blocks", stmt.loc)
            if self.current_function is not None:
                raise CoreDSLError("'spawn' is not allowed in functions", stmt.loc)
            self.saw_spawn = True
            self.check_stmt(stmt.body)
        else:
            raise CoreDSLError(f"unsupported statement {type(stmt).__name__}", stmt.loc)

    def check_assign(self, stmt: ast.Assign) -> None:
        target_type = self.check_target(stmt.target)
        value_type = self.check_expr(stmt.value)
        if stmt.op == "=":
            self.require_convertible(value_type, target_type, stmt.value)
        # Compound assignment truncates back to the target type by definition.

    def check_target(self, target: ast.Expr) -> IntType:
        if isinstance(target, ast.Identifier):
            local = self.lookup_local(target.name)
            if local is not None:
                target.ctype = local
                return local
            info = self.state.get(target.name)
            if info is not None:
                if info.kind == "scalar_reg":
                    target.ctype = info.element
                    return info.element
                if info.kind == "rom":
                    raise CoreDSLError(
                        f"cannot write constant register '{target.name}'", target.loc
                    )
                raise CoreDSLError(
                    f"'{target.name}' must be indexed to be assigned", target.loc
                )
            if target.name in self.fields:
                raise CoreDSLError(
                    f"cannot assign to encoding field '{target.name}'", target.loc
                )
            raise CoreDSLError(f"unknown assignment target '{target.name}'", target.loc)
        if isinstance(target, ast.IndexExpr):
            info = self._state_base(target.base)
            if info is None:
                raise CoreDSLError(
                    "bit-indexed assignment is only supported on architectural "
                    "state arrays",
                    target.loc,
                )
            if info.kind == "rom":
                raise CoreDSLError(
                    f"cannot write constant register '{info.name}'", target.loc
                )
            if info.kind not in ("array_reg", "mem"):
                raise CoreDSLError(f"'{info.name}' is not indexable", target.loc)
            self.check_expr(target.index)
            target.ctype = info.element
            return info.element
        if isinstance(target, ast.RangeExpr):
            info = self._state_base(target.base)
            if info is None or info.kind != "mem":
                raise CoreDSLError(
                    "range assignment is only supported on address spaces "
                    "(e.g. MEM[a+3:a])",
                    target.loc,
                )
            self.check_expr(target.hi)
            self.check_expr(target.lo)
            count = range_width(target.hi, target.lo, self.parameters)
            result = ty.unsigned(count * info.element.width)
            target.ctype = result
            return result
        raise CoreDSLError("unsupported assignment target", target.loc)

    def _state_base(self, base: Optional[ast.Expr]) -> Optional[StateInfo]:
        if isinstance(base, ast.Identifier) and self.lookup_local(base.name) is None:
            return self.state.get(base.name)
        return None

    # -- expressions ----------------------------------------------------------
    def check_expr_or_void(self, expr: ast.Expr) -> Optional[IntType]:
        if isinstance(expr, ast.FunctionCall):
            return self._check_call(expr, allow_void=True)
        return self.check_expr(expr)

    def check_expr(self, expr: ast.Expr) -> IntType:
        result = self._check_expr(expr)
        expr.ctype = result
        if expr.const_value is None:
            expr.const_value = const_eval(expr, self.parameters)
        return result

    def _check_expr(self, expr: ast.Expr) -> IntType:
        if isinstance(expr, ast.IntLiteral):
            if expr.explicit_type is not None:
                return expr.explicit_type
            return ty.literal_type(expr.value)
        if isinstance(expr, ast.BoolLiteral):
            return ty.BOOL
        if isinstance(expr, ast.Identifier):
            return self._check_identifier(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._check_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self.check_expr(expr.operand)
            if expr.op == "-":
                return ty.neg_result(operand)
            if expr.op == "~":
                return ty.not_result(operand)
            if expr.op == "!":
                return ty.BOOL
            raise CoreDSLError(f"unsupported unary operator '{expr.op}'", expr.loc)
        if isinstance(expr, ast.Conditional):
            self.check_expr(expr.cond)
            true_type = self.check_expr(expr.true_value)
            false_type = self.check_expr(expr.false_value)
            return ty.common_supertype(true_type, false_type)
        if isinstance(expr, ast.Cast):
            operand = self.check_expr(expr.operand)
            if expr.width_expr is not None:
                width = self.width_of(expr.width_expr, expr.loc)
            else:
                width = operand.width
            expr.target_width = width
            return IntType(width, expr.target_signed)
        if isinstance(expr, ast.FunctionCall):
            result = self._check_call(expr, allow_void=False)
            assert result is not None
            return result
        if isinstance(expr, ast.IndexExpr):
            return self._check_index(expr)
        if isinstance(expr, ast.RangeExpr):
            return self._check_range(expr)
        raise CoreDSLError(f"unsupported expression {type(expr).__name__}", expr.loc)

    def _check_identifier(self, expr: ast.Identifier) -> IntType:
        local = self.lookup_local(expr.name)
        if local is not None:
            return local
        if expr.name in self.fields:
            return self.fields[expr.name]
        if expr.name in self.parameters:
            value = self.parameters[expr.name]
            if value >= 0:
                return ty.literal_type(value)
            from repro.utils.bits import bit_length_signed
            return ty.signed(bit_length_signed(value))
        info = self.state.get(expr.name)
        if info is not None:
            if info.kind == "scalar_reg":
                return info.element
            raise CoreDSLError(
                f"'{expr.name}' is a register file / address space and must be "
                "indexed",
                expr.loc,
            )
        raise CoreDSLError(f"unknown identifier '{expr.name}'", expr.loc)

    def _check_binary(self, expr: ast.BinaryOp) -> IntType:
        lhs = self.check_expr(expr.lhs)
        rhs = self.check_expr(expr.rhs)
        op = expr.op
        if op == "+":
            return ty.add_result(lhs, rhs)
        if op == "-":
            return ty.sub_result(lhs, rhs)
        if op == "*":
            return ty.mul_result(lhs, rhs)
        if op == "/":
            return ty.div_result(lhs, rhs)
        if op == "%":
            return ty.mod_result(lhs, rhs)
        if op in ("&", "|", "^"):
            return ty.bitwise_result(lhs, rhs)
        if op == "<<":
            return ty.shl_result(lhs, rhs, shift_const=expr.rhs.const_value)
        if op == ">>":
            return ty.shr_result(lhs, rhs)
        if op == "::":
            return ty.concat_result(lhs, rhs)
        if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return ty.BOOL
        raise CoreDSLError(f"unsupported binary operator '{op}'", expr.loc)

    def _check_call(self, expr: ast.FunctionCall,
                    allow_void: bool) -> Optional[IntType]:
        sig = self.functions.get(expr.callee)
        if sig is None:
            raise CoreDSLError(f"unknown function '{expr.callee}'", expr.loc)
        if len(expr.args) != len(sig.params):
            raise CoreDSLError(
                f"'{expr.callee}' expects {len(sig.params)} arguments, "
                f"got {len(expr.args)}",
                expr.loc,
            )
        for arg, (param_name, param_type) in zip(expr.args, sig.params):
            arg_type = self.check_expr(arg)
            if not arg_type.implicitly_convertible_to(param_type):
                raise CoreDSLError(
                    f"argument '{param_name}' of '{expr.callee}': cannot "
                    f"implicitly convert {arg_type} to {param_type}",
                    arg.loc,
                )
        if sig.return_type is None and not allow_void:
            raise CoreDSLError(
                f"void function '{expr.callee}' used as a value", expr.loc
            )
        return sig.return_type

    def _check_index(self, expr: ast.IndexExpr) -> IntType:
        info = self._state_base(expr.base)
        if info is not None:
            if info.kind == "param":
                raise CoreDSLError(f"cannot index parameter '{info.name}'", expr.loc)
            if info.kind == "scalar_reg":
                # Single-bit access on a scalar register value.
                expr.base.ctype = info.element
                self.check_expr(expr.index)
                return ty.BOOL
            self.check_expr(expr.index)
            expr.base.ctype = info.element
            return info.element
        base_type = self.check_expr(expr.base)
        self.check_expr(expr.index)
        index_const = expr.index.const_value
        if index_const is not None and not 0 <= index_const < base_type.width:
            raise CoreDSLError(
                f"bit index {index_const} out of range for {base_type}", expr.loc
            )
        return ty.BOOL

    def _check_range(self, expr: ast.RangeExpr) -> IntType:
        env = self.parameters
        info = self._state_base(expr.base)
        self.check_expr(expr.hi)
        self.check_expr(expr.lo)
        count = range_width(expr.hi, expr.lo, env)
        if info is not None and info.kind in ("mem", "rom", "array_reg"):
            expr.base.ctype = info.element
            return ty.unsigned(count * info.element.width)
        if info is not None and info.kind == "scalar_reg":
            base_type = info.element
            expr.base.ctype = base_type
        else:
            base_type = self.check_expr(expr.base)
        hi_const = expr.hi.const_value
        if hi_const is not None and hi_const >= base_type.width:
            raise CoreDSLError(
                f"bit range [{hi_const}:..] exceeds {base_type}", expr.loc
            )
        return ty.unsigned(count)

    # -- conversions --------------------------------------------------------------
    def require_convertible(self, source: IntType, target: IntType,
                            expr: ast.Expr) -> None:
        # A constant whose value fits the target is always fine (literals get
        # minimal unsigned types, e.g. assigning 0 to signed<32>).
        if expr.const_value is not None and target.can_represent(expr.const_value):
            return
        if not source.implicitly_convertible_to(target):
            raise CoreDSLError(
                f"implicit conversion from {source} to {target} would lose "
                "precision or sign information; use an explicit cast",
                expr.loc,
            )
