"""Builtin CoreDSL descriptions available via ``import``.

The paper's examples start with ``import "RV32I.core_desc"``, which declares
the standard RISC-V architectural state: the general-purpose register field
``X`` (32 elements of ``unsigned<32>``), the program counter ``PC``, and the
byte-addressable main-memory address space ``MEM``.  The special roles are
marked with attributes (``[[is_main_reg]]``, ``[[is_pc]]``, ``[[is_main_mem]]``)
so later flow stages can pattern-match accesses to SCAIE-V sub-interfaces.
"""

RV32I_CORE_DESC = """
InstructionSet RISCVBase {
  architectural_state {
    unsigned int XLEN = 32;
    register unsigned<XLEN> X[32] [[is_main_reg]];
    register unsigned<XLEN> PC [[is_pc]];
    extern unsigned<8> MEM[4294967296] [[is_main_mem]];
  }
}

InstructionSet RV32I extends RISCVBase {
}
"""

#: Import path -> CoreDSL source text.
BUILTIN_SOURCES = {
    "RV32I.core_desc": RV32I_CORE_DESC,
    "RISCVBase.core_desc": RV32I_CORE_DESC,
}
