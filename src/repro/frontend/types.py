"""The CoreDSL type system (paper Section 2.3).

CoreDSL is built around signed and unsigned integers with arbitrary bitwidths
in two's-complement representation.  The key properties implemented here:

* **No implicit information loss.**  ``unsigned<4> = unsigned<5>`` and
  ``unsigned<4> = signed<4>`` are rejected; widening that preserves every
  representable value is implicit.
* **Bitwidth-aware operators.**  All arithmetic operators accept mixed
  signedness and produce a result wide enough to represent every possible
  value (``unsigned<5> + signed<4> -> signed<7>``).
* **Explicit narrowing** via C-style casts.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.utils.diagnostics import CoreDSLError

#: Widest type the checker will synthesize before demanding an explicit cast.
MAX_SYNTH_WIDTH = 4096


class Type:
    """Base class for CoreDSL types."""


@dataclasses.dataclass(frozen=True)
class IntType(Type):
    """``signed<width>`` or ``unsigned<width>``."""

    width: int
    is_signed: bool

    def __post_init__(self) -> None:
        if self.width < 1:
            raise CoreDSLError(f"integer type must have width >= 1, got {self.width}")

    # -- value range --------------------------------------------------------
    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.is_signed else 0

    @property
    def max_value(self) -> int:
        if self.is_signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def can_represent(self, value: int) -> bool:
        return self.min_value <= value <= self.max_value

    # -- conversions ---------------------------------------------------------
    def implicitly_convertible_to(self, other: "Type") -> bool:
        """True iff every value of ``self`` is representable in ``other``
        (the paper's rule: precision or sign is never lost implicitly)."""
        if not isinstance(other, IntType):
            return False
        return (
            other.min_value <= self.min_value
            and self.max_value <= other.max_value
        )

    # -- display -------------------------------------------------------------
    def __str__(self) -> str:
        return f"{'signed' if self.is_signed else 'unsigned'}<{self.width}>"


@dataclasses.dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclasses.dataclass(frozen=True)
class ArrayType(Type):
    """Array of integers, used for architectural state (register files, ROMs,
    address spaces).  Not a first-class value type in behaviors."""

    element: IntType
    size: int

    def __str__(self) -> str:
        return f"{self.element}[{self.size}]"


def signed(width: int) -> IntType:
    return IntType(width, True)


def unsigned(width: int) -> IntType:
    return IntType(width, False)


VOID = VoidType()
BOOL = unsigned(1)

#: C-style aliases accepted by the parser.
ALIASES = {
    "int": signed(32),
    "char": signed(8),
    "short": signed(16),
    "long": signed(64),
    "bool": unsigned(1),
}


def _check_width(width: int, what: str) -> None:
    if width > MAX_SYNTH_WIDTH:
        raise CoreDSLError(
            f"{what} would require {width} bits (> {MAX_SYNTH_WIDTH}); "
            "add an explicit cast"
        )


def promote(lhs: IntType, rhs: IntType) -> tuple:
    """Bring two operands into a common signedness domain.

    If exactly one operand is signed, the unsigned operand is widened by one
    bit and reinterpreted as signed, which preserves its value.
    """
    if lhs.is_signed == rhs.is_signed:
        return lhs, rhs
    if lhs.is_signed:
        return lhs, signed(rhs.width + 1)
    return signed(lhs.width + 1), rhs


def add_result(lhs: IntType, rhs: IntType) -> IntType:
    """``u5 + s4 -> s7`` (paper example): promote, then max-width + 1."""
    lp, rp = promote(lhs, rhs)
    width = max(lp.width, rp.width) + 1
    _check_width(width, "addition result")
    return IntType(width, lp.is_signed)


def sub_result(lhs: IntType, rhs: IntType) -> IntType:
    """Subtraction of unsigned values can be negative, so the result is
    always signed."""
    lp, rp = promote(lhs, rhs)
    width = max(lp.width, rp.width) + 1
    _check_width(width, "subtraction result")
    return signed(width)


def mul_result(lhs: IntType, rhs: IntType) -> IntType:
    lp, rp = promote(lhs, rhs)
    width = lp.width + rp.width
    _check_width(width, "multiplication result")
    return IntType(width, lp.is_signed)


def div_result(lhs: IntType, rhs: IntType) -> IntType:
    lp, rp = promote(lhs, rhs)
    # -min / -1 overflows by one bit for signed dividends.
    width = lp.width + (1 if lp.is_signed else 0)
    _check_width(width, "division result")
    return IntType(width, lp.is_signed or rp.is_signed)


def mod_result(lhs: IntType, rhs: IntType) -> IntType:
    lp, rp = promote(lhs, rhs)
    width = min(lp.width, rp.width)
    return IntType(width, lp.is_signed)


def bitwise_result(lhs: IntType, rhs: IntType) -> IntType:
    lp, rp = promote(lhs, rhs)
    width = max(lp.width, rp.width)
    _check_width(width, "bitwise result")
    return IntType(width, lp.is_signed)


def shl_result(lhs: IntType, rhs: IntType, shift_const: Optional[int] = None) -> IntType:
    """Left shift grows the value; with a compile-time constant shift amount
    the growth is exact, otherwise we assume the maximum encodable shift."""
    if shift_const is not None:
        width = lhs.width + max(0, shift_const)
    else:
        width = lhs.width + rhs.max_value
    _check_width(width, "left-shift result")
    return IntType(width, lhs.is_signed)


def shr_result(lhs: IntType, rhs: IntType) -> IntType:
    return lhs


def neg_result(operand: IntType) -> IntType:
    width = operand.width + 1
    _check_width(width, "negation result")
    return signed(width)


def not_result(operand: IntType) -> IntType:
    return operand


def concat_result(lhs: IntType, rhs: IntType) -> IntType:
    width = lhs.width + rhs.width
    _check_width(width, "concatenation result")
    return unsigned(width)


def slice_result(hi: int, lo: int) -> IntType:
    if hi < lo:
        raise CoreDSLError(f"invalid bit range [{hi}:{lo}] (from < to)")
    return unsigned(hi - lo + 1)


def common_supertype(lhs: IntType, rhs: IntType) -> IntType:
    """Smallest type both operands implicitly convert to (used for the
    conditional operator and control-flow merges)."""
    lp, rp = promote(lhs, rhs)
    width = max(lp.width, rp.width)
    result = IntType(width, lp.is_signed)
    if not (lhs.implicitly_convertible_to(result) and rhs.implicitly_convertible_to(result)):
        width += 1
        result = IntType(width, lp.is_signed)
    _check_width(width, "merged result")
    return result


def literal_type(value: int) -> IntType:
    """Integer literals get the minimal-width unsigned type (paper 2.3)."""
    if value < 0:
        raise CoreDSLError("negative literals are expressed as unary minus")
    return unsigned(max(1, value.bit_length()))
