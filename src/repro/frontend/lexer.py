"""Tokenizer for CoreDSL source text.

Handles C-style identifiers, comments, punctuation, multi-character
operators, string literals, C integer literals (``42``, ``0xcafe``, ``0b101``)
and Verilog-style sized literals (``6'd42``, ``3'b111``, ``12'shfff``), which
the paper adopts for precise control over literal types (Section 2.3).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterator, List, Optional

from repro.utils.diagnostics import CoreDSLError, SourceLocation

KEYWORDS = {
    "import", "InstructionSet", "Core", "extends", "provides",
    "architectural_state", "instructions", "always", "functions",
    "if", "else", "for", "while", "do", "return", "spawn",
    "switch", "case", "default", "break",
    "register", "extern", "const", "volatile", "static",
    "signed", "unsigned", "int", "char", "short", "long", "bool", "void",
    "true", "false", "encoding", "behavior", "assembly",
}

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=", "...",
    "::", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]

_VERILOG_RE = re.compile(r"(\d+)'(s?)([bdho])([0-9a-fA-F_xzXZ]+)")
_NUMBER_RE = re.compile(r"0[xX][0-9a-fA-F_]+|0[bB][01_]+|0[oO][0-7_]+|\d[\d_]*")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclasses.dataclass
class Token:
    """A single lexical token.

    ``kind`` is one of ``"ident"``, ``"keyword"``, ``"number"``,
    ``"verilog_number"``, ``"string"``, ``"op"`` or ``"eof"``.  Numeric tokens
    carry their integer ``value``; Verilog-sized literals additionally carry
    ``width`` and ``signed``.
    """

    kind: str
    text: str
    loc: SourceLocation
    value: Optional[int] = None
    width: Optional[int] = None
    signed: bool = False

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


_RADIX = {"b": 2, "o": 8, "d": 10, "h": 16}


def _iter_tokens(text: str, filename: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    n = len(text)

    def loc() -> SourceLocation:
        return SourceLocation(filename, line, pos - line_start + 1)

    while pos < n:
        ch = text[pos]
        # -- whitespace and comments ----------------------------------------
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if text.startswith("//", pos):
            end = text.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if text.startswith("/*", pos):
            end = text.find("*/", pos + 2)
            if end == -1:
                raise CoreDSLError("unterminated block comment", loc())
            line += text.count("\n", pos, end)
            if "\n" in text[pos:end]:
                line_start = text.rfind("\n", pos, end) + 1
            pos = end + 2
            continue
        # -- string literals -------------------------------------------------
        if ch == '"':
            end = pos + 1
            while end < n and text[end] != '"':
                if text[end] == "\\":
                    end += 1
                end += 1
            if end >= n:
                raise CoreDSLError("unterminated string literal", loc())
            yield Token("string", text[pos + 1:end], loc())
            pos = end + 1
            continue
        # -- Verilog-sized literals (must precede plain numbers) -------------
        m = _VERILOG_RE.match(text, pos)
        if m:
            width = int(m.group(1))
            is_signed = m.group(2) == "s"
            radix = _RADIX[m.group(3).lower()]
            digits = m.group(4).replace("_", "")
            try:
                value = int(digits, radix)
            except ValueError:
                raise CoreDSLError(f"invalid digits in literal {m.group(0)!r}", loc())
            if value >= (1 << width):
                raise CoreDSLError(
                    f"literal {m.group(0)!r} does not fit in {width} bits", loc()
                )
            yield Token("verilog_number", m.group(0), loc(), value=value,
                        width=width, signed=is_signed)
            pos = m.end()
            continue
        # -- plain numbers ----------------------------------------------------
        m = _NUMBER_RE.match(text, pos)
        if m:
            raw = m.group(0).replace("_", "")
            value = int(raw, 0)
            yield Token("number", m.group(0), loc(), value=value)
            pos = m.end()
            continue
        # -- identifiers / keywords -------------------------------------------
        m = _IDENT_RE.match(text, pos)
        if m:
            word = m.group(0)
            kind = "keyword" if word in KEYWORDS else "ident"
            yield Token(kind, word, loc())
            pos = m.end()
            continue
        # -- operators ----------------------------------------------------------
        for op in OPERATORS:
            if text.startswith(op, pos):
                yield Token("op", op, loc())
                pos += len(op)
                break
        else:
            raise CoreDSLError(f"unexpected character {ch!r}", loc())
    yield Token("eof", "", SourceLocation(filename, line, pos - line_start + 1))


def tokenize(text: str, filename: str = "<input>") -> List[Token]:
    """Tokenize CoreDSL source ``text`` into a list ending with an EOF token."""
    return list(_iter_tokens(text, filename))
