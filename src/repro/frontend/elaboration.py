"""Elaboration: imports, inheritance, parameters, encodings, type checking.

This is the frontend's main entry point.  :func:`elaborate` takes CoreDSL
source text, resolves ``import`` statements (builtin ``RV32I.core_desc`` or
user-supplied sources/paths), linearizes ``extends``/``provides``
relationships, evaluates ISA *parameters* in the context of the selected top
definition (paper Section 2.2), resolves all state-element and encoding
widths, and type-checks every function, instruction, and always-block.

The result, :class:`ElaboratedISA`, is the "decorated AST" the paper's
Figure 5(a->b) step consumes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from typing import Dict, List, Optional, Tuple

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_description
from repro.frontend.stdlib import BUILTIN_SOURCES
from repro.frontend.typecheck import (
    FunctionSig,
    StateInfo,
    TypeChecker,
    const_eval,
)
from repro.frontend.types import IntType, unsigned
from repro.utils.bits import extract_bits, mask, to_unsigned
from repro.utils.diagnostics import CoreDSLError, SourceLocation

#: RISC-V instruction word width targeted by this flow.
INSTRUCTION_WIDTH = 32


# ---------------------------------------------------------------------------
# Encodings
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class FieldPlacement:
    """One slice of an operand field, placed in the instruction word:
    instruction bits [instr_hi:instr_lo] hold field bits [field_hi:field_lo]."""

    instr_hi: int
    instr_lo: int
    field_hi: int
    field_lo: int


@dataclasses.dataclass
class EncodingField:
    name: str
    width: int
    placements: List[FieldPlacement] = dataclasses.field(default_factory=list)

    @property
    def type(self) -> IntType:
        return unsigned(self.width)


class Encoding:
    """Resolved encoding of one instruction: constant mask/match plus operand
    field placements.  Renders as the paper's pattern notation, e.g.
    ``"-----------------000-----0010011"`` for ADDI."""

    def __init__(self, components: List[ast.EncodingComponent]):
        self.components = components
        self.mask = 0
        self.match = 0
        self.fields: Dict[str, EncodingField] = {}
        pos = INSTRUCTION_WIDTH
        for comp in components:
            if isinstance(comp, ast.EncBits):
                width = comp.width
                if width <= 0:
                    raise CoreDSLError("encoding literal must have width > 0", comp.loc)
                pos -= width
                if pos < 0:
                    raise CoreDSLError("encoding exceeds 32 bits", comp.loc)
                self.mask |= mask(width) << pos
                self.match |= to_unsigned(comp.value, width) << pos
            else:
                width = comp.hi - comp.lo + 1
                if width <= 0:
                    raise CoreDSLError(
                        f"invalid field slice {comp.name}[{comp.hi}:{comp.lo}]",
                        comp.loc,
                    )
                pos -= width
                if pos < 0:
                    raise CoreDSLError("encoding exceeds 32 bits", comp.loc)
                field = self.fields.setdefault(comp.name, EncodingField(comp.name, 0))
                field.placements.append(
                    FieldPlacement(pos + width - 1, pos, comp.hi, comp.lo)
                )
                field.width = max(field.width, comp.hi + 1)
        if pos != 0:
            raise CoreDSLError(
                f"encoding is {INSTRUCTION_WIDTH - pos} bits, expected "
                f"{INSTRUCTION_WIDTH}",
                components[0].loc if components else None,
            )

    def encode(self, field_values: Optional[Dict[str, int]] = None) -> int:
        """Assemble an instruction word from operand field values."""
        word = self.match
        field_values = field_values or {}
        for name, field in self.fields.items():
            value = field_values.get(name, 0)
            for pl in field.placements:
                piece = extract_bits(value, pl.field_hi, pl.field_lo)
                word |= piece << pl.instr_lo
        return word

    def decode(self, word: int) -> Dict[str, int]:
        """Extract operand field values from an instruction word."""
        values: Dict[str, int] = {}
        for name, field in self.fields.items():
            value = 0
            for pl in field.placements:
                piece = extract_bits(word, pl.instr_hi, pl.instr_lo)
                value |= piece << pl.field_lo
            values[name] = value
        return values

    def matches(self, word: int) -> bool:
        return (word & self.mask) == self.match

    @property
    def pattern(self) -> str:
        """32-character mask/match pattern, MSB first, '-' for operand bits."""
        chars = []
        for bit in range(INSTRUCTION_WIDTH - 1, -1, -1):
            if self.mask & (1 << bit):
                chars.append("1" if self.match & (1 << bit) else "0")
            else:
                chars.append("-")
        return "".join(chars)

    def overlaps(self, other: "Encoding") -> bool:
        """True if some instruction word matches both encodings."""
        common = self.mask & other.mask
        return (self.match & common) == (other.match & common)

    def __repr__(self) -> str:
        return f"Encoding({self.pattern})"


# ---------------------------------------------------------------------------
# Elaborated artifacts
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ElabInstruction:
    name: str
    encoding: Encoding
    behavior: ast.BlockStmt
    fields: Dict[str, IntType]
    has_spawn: bool = False
    origin: str = ""
    loc: Optional[SourceLocation] = None


@dataclasses.dataclass
class ElabAlways:
    name: str
    body: ast.BlockStmt
    origin: str = ""
    loc: Optional[SourceLocation] = None


class ElaboratedISA:
    """A fully resolved, type-checked ISA (base state + ISAX definitions)."""

    def __init__(self, name: str):
        self.name = name
        self.parameters: Dict[str, int] = {}
        self.state: Dict[str, StateInfo] = {}
        self.functions: Dict[str, FunctionSig] = {}
        self.instructions: Dict[str, ElabInstruction] = {}
        self.always_blocks: Dict[str, ElabAlways] = {}

    # -- convenient accessors for the special architectural state -----------
    @property
    def main_reg(self) -> Optional[StateInfo]:
        return next((s for s in self.state.values() if s.is_main_reg), None)

    @property
    def pc(self) -> Optional[StateInfo]:
        return next((s for s in self.state.values() if s.is_pc), None)

    @property
    def main_mem(self) -> Optional[StateInfo]:
        return next((s for s in self.state.values() if s.is_main_mem), None)

    def custom_state(self) -> List[StateInfo]:
        """State elements introduced by the ISAX (not the base core's)."""
        return [
            s for s in self.state.values()
            if s.kind in ("scalar_reg", "array_reg", "rom")
            and not (s.is_main_reg or s.is_pc or s.is_main_mem)
        ]

    def check_encoding_conflicts(self) -> List[Tuple[str, str]]:
        """Return pairs of instructions whose encodings overlap."""
        conflicts = []
        instrs = list(self.instructions.values())
        for i, a in enumerate(instrs):
            for b in instrs[i + 1:]:
                if a.encoding.overlaps(b.encoding):
                    conflicts.append((a.name, b.name))
        return conflicts

    def __repr__(self) -> str:
        return (
            f"ElaboratedISA({self.name}: {len(self.instructions)} instructions, "
            f"{len(self.always_blocks)} always-blocks, "
            f"{len(self.custom_state())} custom state elements)"
        )


# ---------------------------------------------------------------------------
# Elaborator
# ---------------------------------------------------------------------------

class _Elaborator:
    def __init__(self, extra_sources: Optional[Dict[str, str]] = None,
                 import_dirs: Optional[List[str]] = None):
        self.extra_sources = extra_sources or {}
        self.import_dirs = import_dirs or []
        self.sets: Dict[str, ast.InstructionSetDef] = {}
        self.cores: Dict[str, ast.CoreDef] = {}
        self._loaded: set = set()

    # -- import handling ------------------------------------------------------
    def load(self, text: str, filename: str) -> ast.Description:
        desc = parse_description(text, filename)
        for imp in desc.imports:
            self._load_import(imp)
        for iset in desc.instruction_sets:
            self.sets[iset.name] = iset
        for core in desc.cores:
            self.cores[core.name] = core
        return desc

    def _load_import(self, name: str) -> None:
        if name in self._loaded:
            return
        self._loaded.add(name)
        if name in self.extra_sources:
            self.load(self.extra_sources[name], name)
            return
        if name in BUILTIN_SOURCES:
            self.load(BUILTIN_SOURCES[name], name)
            return
        for directory in self.import_dirs:
            path = os.path.join(directory, name)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    self.load(handle.read(), path)
                return
        raise CoreDSLError(f"cannot resolve import {name!r}")

    # -- inheritance linearization ---------------------------------------------
    def chain_for_set(self, name: str, seen: Optional[List[str]] = None) -> List[ast.ISABody]:
        seen = seen or []
        if name in seen:
            raise CoreDSLError(f"cyclic 'extends' involving '{name}'")
        iset = self.sets.get(name)
        if iset is None:
            raise CoreDSLError(f"unknown instruction set '{name}'")
        bodies: List[ast.ISABody] = []
        if iset.extends:
            bodies.extend(self.chain_for_set(iset.extends, seen + [name]))
        bodies.append((iset.body, name))  # type: ignore[arg-type]
        return bodies

    def bodies_for_top(self, top: str) -> List[Tuple[ast.ISABody, str]]:
        if top in self.cores:
            core = self.cores[top]
            bodies: List[Tuple[ast.ISABody, str]] = []
            seen_sets: set = set()
            for provided in core.provides:
                for body, origin in self.chain_for_set(provided):
                    if origin not in seen_sets:
                        seen_sets.add(origin)
                        bodies.append((body, origin))
            bodies.append((core.body, top))
            return bodies
        return self.chain_for_set(top)  # type: ignore[return-value]

    # -- main elaboration -----------------------------------------------------------
    def elaborate(self, top: str) -> ElaboratedISA:
        isa = ElaboratedISA(top)
        bodies = self.bodies_for_top(top)

        # Pass 1: parameters, in declaration order; later bodies override.
        for body, _origin in bodies:
            for decl in body.state:
                if decl.storage != "param":
                    continue
                if decl.init is None:
                    if decl.name not in isa.parameters:
                        raise CoreDSLError(
                            f"parameter '{decl.name}' has no value", decl.loc
                        )
                    continue
                value = const_eval(decl.init, isa.parameters)
                if value is None:
                    raise CoreDSLError(
                        f"parameter '{decl.name}' must be a compile-time constant",
                        decl.loc,
                    )
                isa.parameters[decl.name] = value

        # Pass 2: storage declarations.
        for body, _origin in bodies:
            for decl in body.state:
                if decl.storage == "param":
                    continue
                self._elaborate_state(isa, decl)

        # Pass 3: function signatures (so calls can be checked in any order).
        for body, _origin in bodies:
            for fn in body.functions:
                isa.functions[fn.name] = self._signature(isa, fn)

        checker = TypeChecker(isa.parameters, isa.state, isa.functions)
        for sig in isa.functions.values():
            checker.check_function(sig)

        # Pass 4: instructions and always-blocks.
        for body, origin in bodies:
            for instr in body.instructions:
                encoding = Encoding(instr.encoding)
                self._check_field_names(isa, encoding, instr)
                fields = {n: f.type for n, f in encoding.fields.items()}
                has_spawn = checker.check_instruction(instr, fields)
                isa.instructions[instr.name] = ElabInstruction(
                    name=instr.name, encoding=encoding, behavior=instr.behavior,
                    fields=fields, has_spawn=has_spawn, origin=origin,
                    loc=instr.loc,
                )
            for always in body.always_blocks:
                checker.check_always(always)
                isa.always_blocks[always.name] = ElabAlways(
                    name=always.name, body=always.body, origin=origin,
                    loc=always.loc,
                )
        return isa

    def _elaborate_state(self, isa: ElaboratedISA, decl: ast.StateDecl) -> None:
        width = const_eval(decl.width_expr, isa.parameters)
        if width is None or width < 1:
            raise CoreDSLError(
                f"state element '{decl.name}' has non-constant or invalid width",
                decl.loc,
            )
        decl.width = width
        element = IntType(width, decl.is_signed)
        size: Optional[int] = None
        if decl.array_size_expr is not None:
            size = const_eval(decl.array_size_expr, isa.parameters)
            if size is None or size < 1:
                raise CoreDSLError(
                    f"array size of '{decl.name}' must be a positive constant",
                    decl.loc,
                )
            decl.array_size = size

        init_values: Optional[List[int]] = None
        if decl.init_list is not None:
            init_values = []
            for item in decl.init_list:
                value = const_eval(item, isa.parameters)
                if value is None:
                    raise CoreDSLError(
                        f"initializer of '{decl.name}' must be constant", item.loc
                    )
                init_values.append(to_unsigned(value, width))
            if size is None:
                size = len(init_values)
                decl.array_size = size
            elif len(init_values) != size:
                raise CoreDSLError(
                    f"'{decl.name}' has {len(init_values)} initializers for "
                    f"{size} elements",
                    decl.loc,
                )
        elif decl.init is not None:
            value = const_eval(decl.init, isa.parameters)
            if value is None:
                raise CoreDSLError(
                    f"initializer of '{decl.name}' must be constant", decl.loc
                )
            init_values = [to_unsigned(value, width)]

        if decl.storage == "register":
            kind = "array_reg" if size is not None else "scalar_reg"
        elif decl.storage == "extern":
            kind = "mem"
        elif decl.storage == "const":
            kind = "rom"
            if init_values is None:
                raise CoreDSLError(
                    f"constant register '{decl.name}' needs an initializer",
                    decl.loc,
                )
        else:  # pragma: no cover - parser restricts storage classes
            raise CoreDSLError(f"unknown storage class '{decl.storage}'", decl.loc)

        if decl.name in isa.state:
            raise CoreDSLError(f"redefinition of state element '{decl.name}'", decl.loc)
        isa.state[decl.name] = StateInfo(
            decl.name, kind, element, size=size,
            attributes=list(decl.attributes), init_values=init_values,
            loc=decl.loc,
        )

    def _signature(self, isa: ElaboratedISA, fn: ast.FunctionDef) -> FunctionSig:
        params: List[Tuple[str, IntType]] = []
        for param in fn.params:
            width = const_eval(param.width_expr, isa.parameters)
            if width is None or width < 1:
                raise CoreDSLError(
                    f"parameter '{param.name}' of '{fn.name}' has invalid width",
                    param.loc,
                )
            params.append((param.name, IntType(width, param.is_signed)))
        return_type: Optional[IntType] = None
        if fn.return_width_expr is not None:
            width = const_eval(fn.return_width_expr, isa.parameters)
            if width is None or width < 1:
                raise CoreDSLError(
                    f"return type of '{fn.name}' has invalid width", fn.loc
                )
            return_type = IntType(width, fn.return_signed)
        return FunctionSig(fn.name, params, return_type, fn)

    def _check_field_names(self, isa: ElaboratedISA, encoding: Encoding,
                           instr: ast.InstructionDef) -> None:
        for name in encoding.fields:
            if name in isa.state or name in isa.parameters:
                raise CoreDSLError(
                    f"encoding field '{name}' of '{instr.name}' shadows an "
                    "architectural state element or parameter",
                    instr.loc,
                )


#: Memoized elaborations, keyed by content digest.  Elaboration is pure in
#: its inputs (unless ``import_dirs`` brings the filesystem in) and the
#: resulting :class:`ElaboratedISA` is only ever read downstream, so a DSE
#: sweep re-compiling the same ISAX per (core, cycle-time) candidate can
#: share one decorated AST.  Bounded; cleared oldest-first.
_ELABORATION_CACHE: Dict[Tuple[str, ...], "ElaboratedISA"] = {}
_ELABORATION_CACHE_MAX = 256


def _elaborate_uncached(
    source: str,
    top: Optional[str],
    extra_sources: Optional[Dict[str, str]],
    import_dirs: Optional[List[str]],
    filename: str,
) -> ElaboratedISA:
    elaborator = _Elaborator(extra_sources, import_dirs)
    desc = elaborator.load(source, filename)
    if top is None:
        if len(desc.cores) == 1:
            top = desc.cores[0].name
        elif desc.instruction_sets:
            top = desc.instruction_sets[-1].name
        else:
            raise CoreDSLError("description defines no InstructionSet or Core")
    return elaborator.elaborate(top)


def elaborate(
    source: str,
    top: Optional[str] = None,
    extra_sources: Optional[Dict[str, str]] = None,
    import_dirs: Optional[List[str]] = None,
    filename: str = "<input>",
) -> ElaboratedISA:
    """Parse, link and type-check a CoreDSL description.

    ``top`` selects the Core or InstructionSet to elaborate; by default the
    single Core in the file, or the last InstructionSet defined.  Repeated
    calls with identical inputs are served from a digest-keyed memo unless
    ``import_dirs`` makes the result depend on the filesystem.
    """
    if import_dirs:
        return _elaborate_uncached(
            source, top, extra_sources, import_dirs, filename
        )
    digest = hashlib.sha256(source.encode("utf-8"))
    for name in sorted(extra_sources or {}):
        digest.update(name.encode("utf-8"))
        digest.update((extra_sources or {})[name].encode("utf-8"))
    key = (digest.hexdigest(), top or "", filename)
    cached = _ELABORATION_CACHE.get(key)
    if cached is not None:
        return cached
    result = _elaborate_uncached(source, top, extra_sources, None, filename)
    while len(_ELABORATION_CACHE) >= _ELABORATION_CACHE_MAX:
        _ELABORATION_CACHE.pop(next(iter(_ELABORATION_CACHE)))
    _ELABORATION_CACHE[key] = result
    return result
