"""AST node definitions for CoreDSL.

The node set mirrors the grammar in Figure 2 of the paper plus the C-inspired
statement/expression sublanguage of Section 2.4.  After type checking
(:mod:`repro.frontend.typecheck`) every expression node carries a ``ctype``
(:class:`repro.frontend.types.IntType`) and, where applicable, a compile-time
``const_value``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Union

from repro.frontend.types import IntType, Type
from repro.utils.diagnostics import SourceLocation


@dataclasses.dataclass
class Node:
    loc: SourceLocation = dataclasses.field(
        default_factory=SourceLocation, repr=False, compare=False
    )


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class Expr(Node):
    #: Filled in by the type checker.
    ctype: Optional[IntType] = dataclasses.field(default=None, compare=False)
    #: Compile-time constant value, if known (unsigned Python int view).
    const_value: Optional[int] = dataclasses.field(default=None, compare=False)


@dataclasses.dataclass
class IntLiteral(Expr):
    value: int = 0
    #: Explicit type from a Verilog-sized literal, None for C literals.
    explicit_type: Optional[IntType] = None


@dataclasses.dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclasses.dataclass
class Identifier(Expr):
    name: str = ""


@dataclasses.dataclass
class BinaryOp(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclasses.dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclasses.dataclass
class Conditional(Expr):
    cond: Optional[Expr] = None
    true_value: Optional[Expr] = None
    false_value: Optional[Expr] = None


@dataclasses.dataclass
class Cast(Expr):
    """C-style cast: ``(signed<8>) x`` or sign-only ``(unsigned) x``."""

    target_signed: bool = False
    target_width: Optional[int] = None          # None => keep source width
    width_expr: Optional[Expr] = None           # unresolved parameterized width
    operand: Optional[Expr] = None


@dataclasses.dataclass
class FunctionCall(Expr):
    callee: str = ""
    args: List[Expr] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class IndexExpr(Expr):
    """``base[index]``: register-file element, address-space byte, or scalar
    single-bit access (paper extends the subscript operator to scalars)."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclasses.dataclass
class RangeExpr(Expr):
    """``base[hi:lo]``: bit range on scalars, multi-element range on address
    spaces (``MEM[addr+3:addr]`` is a 32-bit little-endian load)."""

    base: Optional[Expr] = None
    hi: Optional[Expr] = None
    lo: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class Stmt(Node):
    pass


@dataclasses.dataclass
class BlockStmt(Stmt):
    statements: List[Stmt] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class VarDecl(Stmt):
    decl_type: Optional[Type] = None
    width_expr: Optional[Expr] = None           # parameterized width
    is_signed: bool = False
    name: str = ""
    init: Optional[Expr] = None


@dataclasses.dataclass
class Assign(Stmt):
    """``target op= value``; plain assignment has ``op == "="``."""

    target: Optional[Expr] = None
    op: str = "="
    value: Optional[Expr] = None


@dataclasses.dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclasses.dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then_body: Optional[Stmt] = None
    else_body: Optional[Stmt] = None


@dataclasses.dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Optional[Stmt] = None


@dataclasses.dataclass
class WhileStmt(Stmt):
    """``while``/``do-while`` loop; like ``for``, the trip count must be
    compile-time evaluable for hardware synthesis (paper Section 2.4 lists
    these as planned loop constructs)."""

    cond: Optional[Expr] = None
    body: Optional[Stmt] = None
    is_do_while: bool = False


@dataclasses.dataclass
class SwitchCase(Node):
    """One ``case CONST:`` (or ``default:`` when label is None) arm; arms
    must be break-terminated (no fall-through)."""

    label: Optional[Expr] = None
    body: Optional["BlockStmt"] = None


@dataclasses.dataclass
class SwitchStmt(Stmt):
    value: Optional[Expr] = None
    cases: List[SwitchCase] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclasses.dataclass
class SpawnStmt(Stmt):
    """``spawn { ... }`` — the behavior inside executes decoupled from the
    base pipeline (paper Section 2.5)."""

    body: Optional[Stmt] = None


# ---------------------------------------------------------------------------
# Encodings
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class EncBits(Node):
    """A constant run of encoding bits, e.g. ``7'b0001011``."""

    width: int = 0
    value: int = 0


@dataclasses.dataclass
class EncField(Node):
    """A named operand field slice, e.g. ``rs2[4:0]`` — bits [hi:lo] *of the
    field* placed at this position of the instruction word."""

    name: str = ""
    hi: int = 0
    lo: int = 0


EncodingComponent = Union[EncBits, EncField]


# ---------------------------------------------------------------------------
# Top-level definitions
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class StateDecl(Node):
    """One declaration from an ``architectural_state`` section.

    ``storage`` is ``"register"`` (architectural register / register file),
    ``"extern"`` (address space, e.g. main memory), ``"const"`` (ROM) or
    ``"param"`` (an ISA parameter — a declaration without storage class).
    """

    storage: str = "param"
    is_signed: bool = False
    width_expr: Optional[Expr] = None
    width: Optional[int] = None
    name: str = ""
    array_size_expr: Optional[Expr] = None
    array_size: Optional[int] = None
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None
    attributes: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class FunctionParam(Node):
    is_signed: bool = False
    width_expr: Optional[Expr] = None
    name: str = ""


@dataclasses.dataclass
class FunctionDef(Node):
    name: str = ""
    return_signed: bool = False
    return_width_expr: Optional[Expr] = None    # None => void
    params: List[FunctionParam] = dataclasses.field(default_factory=list)
    body: Optional[BlockStmt] = None


@dataclasses.dataclass
class InstructionDef(Node):
    name: str = ""
    encoding: List[EncodingComponent] = dataclasses.field(default_factory=list)
    behavior: Optional[BlockStmt] = None


@dataclasses.dataclass
class AlwaysDef(Node):
    name: str = ""
    body: Optional[BlockStmt] = None


@dataclasses.dataclass
class ISABody(Node):
    state: List[StateDecl] = dataclasses.field(default_factory=list)
    instructions: List[InstructionDef] = dataclasses.field(default_factory=list)
    always_blocks: List[AlwaysDef] = dataclasses.field(default_factory=list)
    functions: List[FunctionDef] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class InstructionSetDef(Node):
    name: str = ""
    extends: Optional[str] = None
    body: Optional[ISABody] = None


@dataclasses.dataclass
class CoreDef(Node):
    name: str = ""
    provides: List[str] = dataclasses.field(default_factory=list)
    body: Optional[ISABody] = None


@dataclasses.dataclass
class Description(Node):
    """A parsed CoreDSL file: imports followed by definitions."""

    imports: List[str] = dataclasses.field(default_factory=list)
    instruction_sets: List[InstructionSetDef] = dataclasses.field(default_factory=list)
    cores: List[CoreDef] = dataclasses.field(default_factory=list)
