"""CoreDSL frontend: lexer, parser, type system, elaboration, type checking.

This package implements the CoreDSL language from Section 2 of the paper:
a C-like behavioral ADL with arbitrary-precision integer types, bitwidth-aware
operators, instruction encodings, architectural state, helper functions, and
the ``always``/``spawn`` decoupled-execution constructs.

The main entry point is :func:`repro.frontend.elaboration.elaborate`, which
parses, links (imports + inheritance), and type-checks a CoreDSL description,
producing an :class:`~repro.frontend.elaboration.ElaboratedISA`.
"""

from repro.frontend.types import IntType, signed, unsigned, BOOL
from repro.frontend.lexer import tokenize, Token
from repro.frontend.parser import parse_description
from repro.frontend.elaboration import elaborate, ElaboratedISA

__all__ = [
    "IntType",
    "signed",
    "unsigned",
    "BOOL",
    "tokenize",
    "Token",
    "parse_description",
    "elaborate",
    "ElaboratedISA",
]
