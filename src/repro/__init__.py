"""repro — a reproduction of "Longnail: High-Level Synthesis of Portable
Custom Instruction Set Extensions for RISC-V Processors from Descriptions in
the Open-Source CoreDSL Language" (ASPLOS 2024).

Public API
----------

The one-call entry point is :func:`compile_isax`: CoreDSL source in,
SystemVerilog + SCAIE-V configuration out, scheduled against a host core's
virtual datasheet::

    from repro import compile_isax

    artifact = compile_isax(CORE_DSL_SOURCE, core="VexRiscv")
    print(artifact.verilog)        # Figure 5d-style SystemVerilog
    print(artifact.config_yaml)    # Figure 8/9-style SCAIE-V configuration

Key packages:

* :mod:`repro.frontend` — CoreDSL parser, type system, elaboration,
* :mod:`repro.ir`, :mod:`repro.dialects`, :mod:`repro.lowering` — the
  MLIR-style compilation pipeline,
* :mod:`repro.scheduling` — the LongnailProblem and its ILP scheduler,
* :mod:`repro.scaiev` — virtual datasheets, execution modes, integration,
* :mod:`repro.hls` — hardware generation and SystemVerilog export,
* :mod:`repro.sim` — RTL/golden-model simulators, RV32IM assembler & ISS,
  cycle-approximate core timing models,
* :mod:`repro.eval` — the 22 nm-class ASIC area/frequency model,
* :mod:`repro.isaxes` — the benchmark ISAXes of Table 3,
* :mod:`repro.workloads` — the Section 5.5/5.6 evaluation workloads.
"""

from repro.frontend import elaborate
from repro.hls import compile_isax, compile_isax_set
from repro.isaxes import ALL_ISAXES, isax_source
from repro.scaiev import CORES, core_datasheet, integrate

__version__ = "1.0.0"

__all__ = [
    "elaborate",
    "compile_isax",
    "compile_isax_set",
    "ALL_ISAXES",
    "isax_source",
    "CORES",
    "core_datasheet",
    "integrate",
    "__version__",
]
