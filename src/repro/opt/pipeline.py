"""Optimizer pass manager: ordered, configurable pipeline with metrics.

The -O levels select pass subsets of :data:`PASS_ORDER`:

======  =======================================================
level   pipeline
======  =======================================================
``O0``  (nothing — the optimizer is not run)
``O1``  canonicalize, propagate, cse, dce
``O2``  canonicalize, propagate, cse, strength, range-narrow, share, dce
======  =======================================================

Individual passes toggle via ``--opt-pass NAME`` / ``--no-opt-pass NAME``
on the CLI or ``opt_passes`` on :class:`repro.service.jobs.CompileJob`; the
resulting configuration is part of both the schedule-cache fingerprint and
the artifact-cache content digest, so cached results never cross -O levels.

Every pass reports a :class:`PassStats` record (runs, ops removed and
rewritten, wall time) which is aggregated into an :class:`OptimizerReport`
and flows through ``service/metrics.py`` into batch/server metrics JSON
under ``"optimizer"``.  With ``REPRO_IR_VERIFY=1`` the IV001–IV004 checks
run after every pass application, pinpointing the offending pass by stage
name (``opt:<pass>:<graph>``).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.verifier import require_valid, verify_graph
from repro.ir.core import Graph
from repro.opt.narrow import range_narrow_pass
from repro.opt.passes import (
    canonicalize_pass,
    cse_pass,
    dce_pass,
    propagate_pass,
    share_pass,
    strength_pass,
)
from repro.opt.share import pool_cross_isax

#: Every pass, in pipeline order.  ``range-narrow`` runs after ``strength``
#: (its singleton-operand pinning feeds the constant-shift and div/mod
#: folders on the next round) and before ``share`` (narrowed graphs expose
#: more mutually exclusive arms to mux-pushing).
PASS_ORDER = ("canonicalize", "propagate", "cse", "strength",
              "range-narrow", "share", "dce")

_PASS_FUNCS = {
    "canonicalize": canonicalize_pass,
    "propagate": propagate_pass,
    "cse": cse_pass,
    "strength": strength_pass,
    "range-narrow": range_narrow_pass,
    "share": share_pass,
    "dce": dce_pass,
}

#: -O level presets.
LEVEL_PIPELINES = {
    0: (),
    1: ("canonicalize", "propagate", "cse", "dce"),
    2: PASS_ORDER,
}


@dataclasses.dataclass(frozen=True)
class OptOptions:
    """Optimizer configuration: a level plus per-pass overrides."""

    level: int = 0
    enable: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()
    max_rounds: int = 4

    def __post_init__(self) -> None:
        if self.level not in LEVEL_PIPELINES:
            raise ValueError(f"unknown -O level: {self.level}")
        for name in (*self.enable, *self.disable):
            if name not in PASS_ORDER:
                raise ValueError(f"unknown optimizer pass: {name!r}")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")

    @classmethod
    def coerce(cls, value: Union["OptOptions", int, None]) -> "OptOptions":
        if value is None:
            return cls()
        if isinstance(value, OptOptions):
            return value
        return cls(level=int(value))

    @classmethod
    def from_flags(cls, level: int, passes: Sequence[str] = ()) -> "OptOptions":
        """Build from CLI-style pass specs: ``name`` enables, ``-name``
        disables (the ``--no-opt-pass`` spelling)."""
        enable = tuple(p for p in passes if not p.startswith("-"))
        disable = tuple(p[1:] for p in passes if p.startswith("-"))
        return cls(level=level, enable=enable, disable=disable)

    def pipeline(self) -> Tuple[str, ...]:
        """The effective ordered pass list."""
        selected = set(LEVEL_PIPELINES[self.level])
        selected.update(self.enable)
        selected.difference_update(self.disable)
        return tuple(name for name in PASS_ORDER if name in selected)

    def fingerprint(self) -> str:
        """Stable cache-key component describing this configuration."""
        parts = [f"O{self.level}"]
        parts.extend(f"+{name}" for name in sorted(self.enable))
        parts.extend(f"-{name}" for name in sorted(self.disable))
        return "".join(parts)


@dataclasses.dataclass
class PassStats:
    """Accounting for one pass across every graph and round of a compile."""

    name: str
    runs: int = 0
    ops_removed: int = 0
    ops_rewritten: int = 0
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runs": self.runs,
            "ops_removed": self.ops_removed,
            "ops_rewritten": self.ops_rewritten,
            "seconds": round(self.seconds, 6),
        }


@dataclasses.dataclass
class OptimizerReport:
    """Aggregated optimizer accounting for one compile."""

    level: int
    pipeline: Tuple[str, ...]
    passes: Dict[str, PassStats] = dataclasses.field(default_factory=dict)
    graphs: int = 0
    nodes_before: int = 0
    nodes_after: int = 0
    seconds: float = 0.0
    cross_isax: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def ops_removed(self) -> int:
        return sum(s.ops_removed for s in self.passes.values())

    @property
    def ops_rewritten(self) -> int:
        return sum(s.ops_rewritten for s in self.passes.values())

    @property
    def node_reduction_pct(self) -> float:
        if self.nodes_before <= 0:
            return 0.0
        return 100.0 * (1.0 - self.nodes_after / self.nodes_before)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "pipeline": list(self.pipeline),
            "graphs": self.graphs,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "node_reduction_pct": round(self.node_reduction_pct, 2),
            "ops_removed": self.ops_removed,
            "ops_rewritten": self.ops_rewritten,
            "seconds": round(self.seconds, 6),
            "passes": {name: stats.to_dict()
                       for name, stats in self.passes.items()},
            "cross_isax": self.cross_isax,
        }


class PassManager:
    """Runs the configured pipeline over graphs, collecting statistics."""

    def __init__(self, options: Optional[OptOptions] = None,
                 verify: bool = False) -> None:
        self.options = options or OptOptions()
        self.verify = verify
        self.report = OptimizerReport(
            level=self.options.level, pipeline=self.options.pipeline())

    def run(self, graph: Graph) -> OptimizerReport:
        """Optimize one graph in place (up to ``max_rounds`` rounds)."""
        pipeline = self.options.pipeline()
        if not pipeline:
            return self.report
        started = time.perf_counter()
        self.report.graphs += 1
        self.report.nodes_before += len(graph.operations)
        # Dirty tracking: ``version`` counts changes applied to the graph
        # so far, and each pass records the version it last ran at (after
        # its own changes — every pass drives itself to a local fixpoint).
        # A pass re-runs only when some other pass changed the graph
        # after its last run, so the global fixpoint is unchanged but
        # quiescent passes drop out of later rounds instead of paying a
        # full confirmation sweep each.
        version = 0
        ran_at: Dict[str, int] = {}
        for _round in range(self.options.max_rounds):
            changed = 0
            for name in pipeline:
                if ran_at.get(name) == version:
                    continue
                stats = self.report.passes.setdefault(name, PassStats(name))
                pass_started = time.perf_counter()
                removed, rewritten = _PASS_FUNCS[name](graph)
                stats.seconds += time.perf_counter() - pass_started
                stats.runs += 1
                stats.ops_removed += removed
                stats.ops_rewritten += rewritten
                version += removed + rewritten
                ran_at[name] = version
                changed += removed + rewritten
                if self.verify:
                    require_valid(f"opt:{name}:{graph.name}",
                                  verify_graph(graph))
            if not changed:
                break
        self.report.nodes_after += len(graph.operations)
        self.report.seconds += time.perf_counter() - started
        return self.report


def optimize_graphs(named_graphs: Iterable[Tuple[str, str, Graph]],
                    options: Optional[OptOptions] = None,
                    verify: bool = False) -> OptimizerReport:
    """Optimize a set of ``(name, kind, graph)`` triples from one compile.

    Runs the per-graph pipeline on each graph, then — when the ``share``
    pass is enabled and at least two instruction graphs exist — the
    cross-ISAX pooling pass that annotates shareable units.
    """
    manager = PassManager(options, verify=verify)
    triples = list(named_graphs)
    for _name, _kind, graph in triples:
        manager.run(graph)
    pipeline = manager.options.pipeline()
    if "share" in pipeline:
        instruction_graphs = [t for t in triples if t[1] == "instruction"]
        if len(instruction_graphs) >= 2:
            started = time.perf_counter()
            manager.report.cross_isax = pool_cross_isax(triples)
            manager.report.seconds += time.perf_counter() - started
            if verify:
                for name, _kind, graph in triples:
                    require_valid(f"opt:cross-isax:{name}",
                                  verify_graph(graph))
    return manager.report
