"""Resource-sharing graph transforms.

Two layers, both extending the cost-model-only analysis of
:mod:`repro.hls.sharing` into actual IR rewrites:

* :func:`mux_push` (the ``share`` pass) rewrites ``mux(c, f(a, b), f(d, e))``
  into ``f(mux(c, a, d), mux(c, b, e))`` for expensive operator kinds —
  the two mutually-exclusive units collapse into one physical unit fed by
  input muxes.  This is sound for any pure ``f`` and depth-neutral (a mux
  before the unit replaces the mux after it).
* :func:`pool_cross_isax` pools same-shaped expensive units across the
  *instruction* graphs of one compile (instructions issue one at a time on
  the host cores, paper Section 7), assigning each instance a stable
  ``shared_unit`` attribute: instances in different instructions with the
  same unit id time-share one physical unit.  Downstream consumers
  (:func:`repro.hls.sharing.shared_unit_assignments`, the area model, the
  metrics JSON) read the annotation; the IR verifier ignores unknown
  attributes, and hardware generation carries them into the module.

No imports from ``repro.hls`` at module level — ``hls.longnail`` imports
this package, and ``hls.sharing`` imports ``hls.longnail``.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple

from repro.ir.core import Graph, Operation

#: Operator kinds expensive enough that steering muxes are profitable.
#: Wiring/bitwise ops are cheaper than the muxes sharing them would need.
SHARE_KINDS = (
    "comb.mul", "comb.divu", "comb.divs", "comb.modu", "comb.mods",
    "comb.rom", "lil.rom",
)


def _is_shareable(op: Operation) -> bool:
    return (op.name in SHARE_KINDS and not op.opdef.has_side_effects
            and not op.opdef.is_terminator and not op.regions
            and len(op.results) == 1)


def _attrs_key(op: Operation) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, repr(v)) for k, v in op.attributes.items()
                        if k != "shared_unit"))


# ---------------------------------------------------------------------------
# Intra-graph: push muxes through mutually exclusive expensive ops
# ---------------------------------------------------------------------------

def _only_use_is(value_op: Operation, user: Operation) -> bool:
    uses = value_op.result.uses
    return len(uses) >= 1 and all(use_op is user for use_op, _ in uses)


def mux_push(graph: Graph) -> Tuple[int, int]:
    """Rewrite ``mux(c, f(..), f(..))`` to ``f(mux(c, ..), ..)`` when both
    arms are single-use instances of the same expensive operator shape.

    Returns ``(removed, rewritten)``: both arm units and the outer mux are
    erased, one shared unit plus per-operand steering muxes are created.
    """
    removed = 0
    rewritten = 0
    changed = True
    while changed:
        changed = False
        for op in list(graph.operations):
            if op.parent is None or op.name != "comb.mux":
                continue
            cond, t_val, f_val = op.operands
            t_op, f_op = t_val.owner, f_val.owner
            if t_op is None or f_op is None or t_op is f_op:
                continue
            if not (_is_shareable(t_op) and _is_shareable(f_op)):
                continue
            if t_op.name != f_op.name:
                continue
            if _attrs_key(t_op) != _attrs_key(f_op):
                continue
            if len(t_op.operands) != len(f_op.operands):
                continue
            if any(a.width != b.width
                   for a, b in zip(t_op.operands, f_op.operands)):
                continue
            if not (_only_use_is(t_op, op) and _only_use_is(f_op, op)):
                continue
            if cond.owner is t_op or cond.owner is f_op:
                continue
            shared_operands = []
            for a, b in zip(t_op.operands, f_op.operands):
                if a is b:
                    shared_operands.append(a)
                else:
                    steer = Operation("comb.mux", [cond, a, b],
                                      [(a.width, None)])
                    graph.block.insert_before(op, steer)
                    shared_operands.append(steer.result)
            shared = Operation(
                t_op.name, shared_operands,
                [(op.result.width, op.result.signed)],
                dict(t_op.attributes))
            graph.block.insert_before(op, shared)
            op.result.replace_all_uses_with(shared.result)
            op.erase()
            t_op.erase()
            f_op.erase()
            removed += 2
            rewritten += 1
            changed = True
    return removed, rewritten


# ---------------------------------------------------------------------------
# Cross-ISAX: pool same-shaped units across instruction graphs
# ---------------------------------------------------------------------------

def _shape_key(op: Operation) -> Tuple[Any, ...]:
    """Same grouping idea as ``repro.hls.sharing._shape_of`` plus the
    attribute payload (two ROMs only share if their tables match)."""
    widths = tuple(o.width for o in op.operands)
    op_widths = op.attr("op_widths")
    if op_widths:
        widths = tuple(op_widths)
    return (op.name, widths, op.result.width, _attrs_key(op))


def _unit_id(key: Tuple[Any, ...], slot: int) -> str:
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:8]
    return f"{key[0]}#{digest}#{slot}"


def pool_cross_isax(named_graphs: List[Tuple[str, str, Graph]]) -> Dict[str, Any]:
    """Annotate expensive ops shared across instruction graphs.

    ``named_graphs`` is ``(name, kind, graph)`` triples; only
    ``kind == "instruction"`` graphs participate (always-blocks run every
    cycle and cannot time-share).  For each operator shape the pool needs
    ``max(count per graph)`` physical units while the spatial design
    instantiates ``sum(count per graph)``; every instance is tagged with a
    deterministic ``shared_unit`` id so instances with the same id (in
    different, mutually exclusive instructions) map to one unit.
    """
    per_graph: Dict[str, Dict[Tuple[Any, ...], List[Operation]]] = {}
    for name, kind, graph in named_graphs:
        if kind != "instruction":
            continue
        shapes: Dict[Tuple[Any, ...], List[Operation]] = {}
        for op in graph.operations:
            if _is_shareable(op):
                shapes.setdefault(_shape_key(op), []).append(op)
        per_graph[name] = shapes

    all_keys = sorted({key for shapes in per_graph.values() for key in shapes},
                      key=repr)
    groups = []
    instances_total = 0
    units_total = 0
    for key in all_keys:
        counts = {name: len(shapes.get(key, []))
                  for name, shapes in per_graph.items() if shapes.get(key)}
        instances = sum(counts.values())
        units = max(counts.values())
        if len(counts) >= 2:
            for name, shapes in per_graph.items():
                for slot, op in enumerate(shapes.get(key, [])):
                    op.attributes["shared_unit"] = _unit_id(key, slot)
        groups.append({
            "kind": key[0],
            "widths": list(key[1]),
            "result_width": key[2],
            "instances": instances,
            "units": units,
            "graphs": sorted(counts),
        })
        instances_total += instances
        units_total += units
    return {
        "groups": groups,
        "instances": instances_total,
        "units": units_total,
        "units_saved": instances_total - units_total,
    }
