"""Optimized-vs-unoptimized equivalence by architectural trace comparison.

Two artifacts compiled from the same source at different -O levels must be
architecturally indistinguishable.  Port *names* are not comparable across
levels (they carry schedule-stage suffixes and the schedules legitimately
differ), so the trace normalizes RTL outputs to architectural roles — GPR
writeback, PC redirect, memory write/read request, custom-register traffic
— via the same prefix matching the cosim harness uses, and gates every
data/address field on its valid bit (a lane that is not written is a
don't-care and is recorded as ``-``).

Stimuli are drawn from a seed-keyed RNG that replicates
``verify_artifact``'s randomization discipline, so both artifacts see the
exact same architectural states and operand values; the resulting trace
strings are required to be byte-identical.

This module imports the simulator and HLS layers — keep it out of
``repro.opt.__init__`` (``hls.longnail`` imports ``repro.opt.pipeline``).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.hls.longnail import IsaxArtifact
from repro.sim.coredsl_interp import ArchState
from repro.sim.cosim import (
    CosimResult,
    _find_output,
    cosim_always,
    cosim_instruction,
)


def _gated(outputs: Dict[str, int], data_prefix: str,
           valid_prefix: str) -> str:
    valid = _find_output(outputs, valid_prefix)
    data = _find_output(outputs, data_prefix)
    if not valid or data is None:
        return "-"
    return f"{data:x}"


def _trace_fields(outputs: Dict[str, int], regs: List[str]) -> List[str]:
    fields = []
    fields.append("rd=" + _gated(outputs, "wrrd_data", "wrrd_valid"))
    fields.append("pc=" + _gated(outputs, "wrpc_data", "wrpc_valid"))
    if _find_output(outputs, "mem_wvalid"):
        waddr = _find_output(outputs, "mem_waddr")
        wdata = _find_output(outputs, "mem_wdata")
        addr_text = "-" if waddr is None else f"{waddr:x}"
        data_text = "-" if wdata is None else f"{wdata:x}"
        fields.append(f"memw={addr_text}:{data_text}")
    else:
        fields.append("memw=-")
    raddr = _find_output(outputs, "mem_raddr")
    fields.append("memr=" + ("-" if raddr is None else f"{raddr:x}"))
    for reg in regs:
        fields.append(f"{reg}="
                      + _gated(outputs, f"wr{reg}_data", f"wr{reg}_valid"))
        read_addr = _find_output(outputs, f"rd{reg}_addr")
        if read_addr is not None:
            fields.append(f"{reg}.r={read_addr:x}")
    return fields


def _randomized_state(artifact: IsaxArtifact,
                      rng: random.Random) -> ArchState:
    state = ArchState(artifact.isa)
    for index in range(1, 32):
        state.write_x(index, rng.getrandbits(32))
    state.pc = rng.getrandbits(32) & ~3
    for reg in state.custom:
        for element in range(len(state.custom[reg])):
            state.write_custom(reg, rng.getrandbits(32), element)
    for _ in range(64):
        state.write_mem_byte(rng.getrandbits(32), rng.getrandbits(8))
    return state


def architectural_trace(artifact: IsaxArtifact, trials: int = 4,
                        seed: int = 0, sim_engine: str = "auto") -> str:
    """One line per (functionality, trial): role-normalized RTL effects.

    The stimulus sequence depends only on the ISA, ``seed`` and ``trials``
    — never on the artifact's schedule or port names — so traces from
    different -O levels of the same source are directly comparable.
    """
    lines = []
    for name in sorted(artifact.functionalities):
        functionality = artifact.functionalities[name]
        rng = random.Random(f"{seed}:{name}")
        for trial in range(trials):
            state = _randomized_state(artifact, rng)
            result: CosimResult
            if functionality.kind == "instruction":
                encoding = artifact.isa.instructions[name].encoding
                fields = {
                    fname: rng.getrandbits(field.width)
                    for fname, field in encoding.fields.items()
                }
                for reg_field in ("rs1", "rs2", "rd"):
                    if reg_field in fields:
                        fields[reg_field] = rng.randrange(32)
                result = cosim_instruction(artifact, name, state, fields,
                                           sim_engine=sim_engine)
            else:
                result = cosim_always(artifact, name, state,
                                      sim_engine=sim_engine)
            regs = sorted(state.custom)
            parts = [f"{name} t{trial}", f"ok={int(result.matches)}"]
            parts.extend(_trace_fields(result.rtl_outputs, regs))
            lines.append(" ".join(parts))
    return "\n".join(lines)


def compare_artifacts(baseline: IsaxArtifact, optimized: IsaxArtifact,
                      trials: int = 4, seed: int = 0,
                      sim_engine: str = "auto") -> Optional[str]:
    """None when the traces are byte-identical, else the first difference."""
    base_trace = architectural_trace(baseline, trials, seed, sim_engine)
    opt_trace = architectural_trace(optimized, trials, seed, sim_engine)
    if base_trace == opt_trace:
        return None
    for base_line, opt_line in zip(base_trace.splitlines(),
                                   opt_trace.splitlines()):
        if base_line != opt_line:
            return f"baseline: {base_line!r} != optimized: {opt_line!r}"
    return (f"trace length differs: baseline "
            f"{len(base_trace.splitlines())} lines, optimized "
            f"{len(opt_trace.splitlines())} lines")
