"""Range-driven narrowing: fold what the abstract interpreter proves.

The ``range-narrow`` pass queries the shared interval + known-bits engine
(:mod:`repro.analysis.absint`) and rewrites operations whose results or
operands are pinned by the inferred facts:

* any pure single-result ``comb`` op whose result is a proven singleton
  becomes a constant — this subsumes compares whose operand intervals are
  disjoint, shifts that provably flush to zero, and extracts above a
  value's possible range;
* ``comb.and`` drops an operand that is proven all-ones on every bit the
  other operand can possibly set (masks the lowering emits around
  already-narrow values);
* ``comb.or``/``comb.xor`` drop an operand proven zero;
* ``comb.modu x, d`` is the identity when ``hi(x) < lo(d)``;
* ``comb.mux`` with a proven condition collapses to the taken arm;
* path-sensitive correlation (the range engine's flow-insensitive facts
  refined by one branch level, as in LLVM's correlated-value
  propagation): inside a mux arm the condition is a known constant, so
  arm operands that are muxes on the same condition — or on its
  ``comb.not``, or on an icmp over the same operands that the outer
  condition implies or contradicts — resolve to the corresponding arm;
* shifts by a proven-zero amount are the identity;
* any non-constant operand of a pure ``comb`` op with a singleton fact is
  rewired to a fresh constant, exposing the regular folders
  (``propagate``, ``strength``, constant-shift wiring) on the next round.

All facts are computed once per invocation, before any mutation.  That is
sound because every rewrite here preserves the concrete value of every
pre-existing :class:`~repro.ir.core.Value` — facts about them stay true —
and the only operations created are constants, which need no facts.  The
pass manager re-runs the pass (with a fresh analysis) while rounds stay
dirty, so chains of enabled folds still reach a fixpoint.

Facts describe the *unsigned bit pattern* of each value, which is exactly
what ``comb`` semantics consume; ``hwarith`` operations read operand
``signed`` flags, so the pass never rewrites them and identity
replacements additionally require matching signedness flags.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.absint import AbsVal, RangeFacts, analyze_graph
from repro.ir.core import Graph, Operation, Value
from repro.ir.passes import _constant_value, _make_constant
from repro.opt.passes import _is_pure, _mask, _replace, _rewire

#: Operations whose second operand is a shift amount; a proven-zero amount
#: makes them the identity on the first operand.
_SHIFT_OPS = ("comb.shl", "comb.shru", "comb.shrs")

#: icmp predicate mirrored under operand swap (a pred b == b mirror(pred) a).
_ICMP_MIRROR = {
    "eq": "eq", "ne": "ne",
    "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
    "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
}

#: icmp predicate under logical negation (!(a pred b) == a invert(pred) b).
_ICMP_INVERT = {
    "eq": "ne", "ne": "eq",
    "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
    "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
}


def _same_sign(a: Value, b: Value) -> bool:
    return bool(a.signed) == bool(b.signed)


def _replace_identity(op: Operation, value: Value) -> bool:
    """Replace ``op`` with an existing equal-valued operand, provided the
    substitution is transparent to signedness-sensitive users."""
    if value.width != op.result.width or not _same_sign(value, op.result):
        return False
    _replace(op, value)
    return True


def _fold_singleton_result(graph: Graph, op: Operation,
                           fact: AbsVal) -> bool:
    """Result proven to a single concrete value -> constant."""
    if not fact.is_const or op.result.signed:
        return False
    _replace(op, _make_constant(graph, op, fact.value, op.result.width))
    return True


def _drop_and_mask(op: Operation, facts: RangeFacts) -> bool:
    """``and(a, b) -> a`` when ``b`` is proven one on every bit ``a`` can
    possibly set (``b`` contributes nothing to the conjunction)."""
    width = op.result.width
    for keep_index in (0, 1):
        kept, other = op.operands[keep_index], op.operands[1 - keep_index]
        possibly_set = ~facts.get(kept).zeros & _mask(width)
        if possibly_set & ~facts.get(other).ones & _mask(width):
            continue
        if _replace_identity(op, kept):
            return True
    return False


def _drop_zero_operand(op: Operation, facts: RangeFacts) -> bool:
    """``or/xor(a, b) -> a`` when ``b`` is proven zero."""
    for keep_index in (0, 1):
        kept, other = op.operands[keep_index], op.operands[1 - keep_index]
        other_fact = facts.get(other)
        if not (other_fact.is_const and other_fact.value == 0):
            continue
        if _replace_identity(op, kept):
            return True
    return False


def _drop_redundant_modu(op: Operation, facts: RangeFacts) -> bool:
    """``modu(x, d) -> x`` when ``x`` is proven below every possible
    divisor (a zero divisor also returns ``x``, so ``lo(d) == 0`` with
    ``hi(x) == 0`` still folds through the singleton rule, not here)."""
    dividend, divisor = op.operands
    if facts.get(divisor).lo == 0:
        return False
    if facts.get(dividend).hi >= facts.get(divisor).lo:
        return False
    return _replace_identity(op, dividend)


def _fold_known_mux(op: Operation, facts: RangeFacts) -> bool:
    cond_fact = facts.get(op.operands[0])
    if not cond_fact.is_const:
        return False
    taken = op.operands[1] if cond_fact.value else op.operands[2]
    return _replace_identity(op, taken)


#: Given ``a p b`` known true, the predicates q for which ``a q b`` is
#: proven true / proven false.  eq/ne facts are sign-agnostic; orderings
#: only imply orderings of the same signedness.
_IMPLIES_TRUE = {
    "eq": ("eq", "ule", "uge", "sle", "sge"),
    "ne": ("ne",),
    "ult": ("ult", "ule", "ne"), "ule": ("ule",),
    "ugt": ("ugt", "uge", "ne"), "uge": ("uge",),
    "slt": ("slt", "sle", "ne"), "sle": ("sle",),
    "sgt": ("sgt", "sge", "ne"), "sge": ("sge",),
}
_IMPLIES_FALSE = {
    "eq": ("ne", "ult", "ugt", "slt", "sgt"),
    "ne": ("eq",),
    "ult": ("uge", "ugt", "eq"), "ule": ("ugt",),
    "ugt": ("ule", "ult", "eq"), "uge": ("ult",),
    "slt": ("sge", "sgt", "eq"), "sle": ("sgt",),
    "sgt": ("sle", "slt", "eq"), "sge": ("slt",),
}


def _cond_value_under(value: Value, cond: Value,
                      assumed: int) -> Optional[int]:
    """What the 1-bit ``value`` must be, given that ``cond == assumed``.

    Recognizes the condition itself, its ``comb.not`` (in either
    direction), and icmps over the same operand pair whose predicate the
    assumed fact implies or contradicts."""
    if value is cond:
        return assumed
    owner, cond_owner = value.owner, cond.owner
    if owner is not None and owner.name == "comb.not" \
            and owner.operands[0] is cond:
        return 1 - assumed
    if cond_owner is not None and cond_owner.name == "comb.not" \
            and cond_owner.operands[0] is value:
        return 1 - assumed
    if (owner is not None and cond_owner is not None
            and owner.name == "comb.icmp"
            and cond_owner.name == "comb.icmp"):
        a, b = cond_owner.operands
        x, y = owner.operands
        q = owner.attr("predicate")
        if x is b and y is a:
            q = _ICMP_MIRROR[q]
        elif not (x is a and y is b):
            return None
        p = cond_owner.attr("predicate")
        fact = p if assumed else _ICMP_INVERT[p]
        if q in _IMPLIES_TRUE[fact]:
            return 1
        if q in _IMPLIES_FALSE[fact]:
            return 0
    return None


def _correlate_mux_arms(graph: Graph, op: Operation) -> bool:
    """Path-sensitive arm refinement: inside arm ``index`` the condition
    is the constant ``assumed``, so an arm that is itself a mux whose
    condition is determined under that assumption resolves to the
    corresponding inner arm (iterated, so same-condition mux chains
    collapse in one visit)."""
    cond = op.operands[0]
    changed = False
    for index, assumed in ((1, 1), (2, 0)):
        while True:
            arm = op.operands[index]
            owner = arm.owner
            if owner is None or owner is op or owner.name != "comb.mux":
                break
            taken = _cond_value_under(owner.operands[0], cond, assumed)
            if taken is None:
                break
            _rewire(op, index, owner.operands[1 if taken else 2])
            changed = True
        arm = op.operands[index]
        if arm is cond:
            # A 1-bit arm that *is* the condition equals ``assumed``.
            _rewire(op, index, _make_constant(graph, op, assumed, 1))
            changed = True
    return changed


def _drop_zero_shift(op: Operation, facts: RangeFacts) -> bool:
    amount_fact = facts.get(op.operands[1])
    if not (amount_fact.is_const and amount_fact.value == 0):
        return False
    return _replace_identity(op, op.operands[0])


def _pin_singleton_operands(graph: Graph, op: Operation,
                            facts: RangeFacts) -> bool:
    """Rewire non-constant operands with singleton facts to fresh
    constants.  The rewrite itself is wiring-neutral; its value is that
    the regular folders (propagate, strength, constant-shift expansion)
    see a literal constant on the next round."""
    changed = False
    for index, operand in enumerate(list(op.operands)):
        if operand.signed or _constant_value(operand) is not None:
            continue
        fact = facts.get(operand)
        if not fact.is_const:
            continue
        _rewire(op, index, _make_constant(graph, op, fact.value,
                                          operand.width))
        changed = True
    return changed


def range_narrow_pass(graph: Graph) -> Tuple[int, int]:
    """Fold operations the abstract-interpretation engine proves constant
    or redundant.  Returns ``(removed, rewritten)`` like every pass."""
    facts = analyze_graph(graph)
    before = len(graph.operations)
    rewritten = 0
    for op in list(graph.operations):
        if op.parent is None or not _is_pure(op):
            continue
        if len(op.results) != 1 or not op.name.startswith("comb."):
            continue
        if op.name == "comb.constant":
            continue
        if _fold_singleton_result(graph, op, facts.get(op.result)):
            rewritten += 1
            continue
        fired: Optional[bool] = None
        if op.name == "comb.and":
            fired = _drop_and_mask(op, facts)
        elif op.name in ("comb.or", "comb.xor"):
            fired = _drop_zero_operand(op, facts)
        elif op.name == "comb.modu":
            fired = _drop_redundant_modu(op, facts)
        elif op.name == "comb.mux":
            fired = _fold_known_mux(op, facts) \
                or _correlate_mux_arms(graph, op)
        elif op.name in _SHIFT_OPS:
            fired = _drop_zero_shift(op, facts)
        if fired:
            rewritten += 1
            continue
        if _pin_singleton_operands(graph, op, facts):
            rewritten += 1
    removed = max(0, before - len(graph.operations))
    return removed, rewritten
