"""CDFG optimizer: pass manager, -O pipelines, and per-pass metrics.

``repro.opt.equiv`` (optimized-vs-unoptimized trace equivalence) is
deliberately not imported here: it pulls in the simulator and the HLS
pipeline, which itself imports this package.
"""

from repro.opt.narrow import range_narrow_pass
from repro.opt.passes import (
    canonicalize_pass,
    cse_pass,
    dce_pass,
    propagate_pass,
    share_pass,
    strength_pass,
)
from repro.opt.pipeline import (
    LEVEL_PIPELINES,
    OptimizerReport,
    OptOptions,
    PASS_ORDER,
    PassManager,
    PassStats,
    optimize_graphs,
)
from repro.opt.share import mux_push, pool_cross_isax

__all__ = [
    "LEVEL_PIPELINES",
    "OptOptions",
    "OptimizerReport",
    "PASS_ORDER",
    "PassManager",
    "PassStats",
    "canonicalize_pass",
    "cse_pass",
    "dce_pass",
    "mux_push",
    "optimize_graphs",
    "pool_cross_isax",
    "propagate_pass",
    "range_narrow_pass",
    "share_pass",
    "strength_pass",
]
