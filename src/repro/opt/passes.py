"""Individual optimizer passes over flat CDFGs.

Every pass is a function ``(graph) -> (removed, rewritten)`` where
``removed`` counts operations erased net of replacements and ``rewritten``
counts operations modified in place or replaced by cheaper equivalents.
Passes only ever touch pure (side-effect-free, non-terminator, region-free)
operations, so interface ops — architectural reads/writes — are never
moved, duplicated, or deleted: the architectural trace of a graph is
invariant under every pass here (property-tested in
``tests/opt/test_property_equiv.py`` and enforced end-to-end by the
``optequiv`` fuzz oracle).

The pass order and -O level presets live in :mod:`repro.opt.pipeline`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.core import Graph, Operation, Value
from repro.ir.passes import (
    _constant_value,
    _make_constant,
    _rewrite_constant_shift,
    _simplify_algebraic,
    dedupe_constants,
)
from repro.opt.share import mux_push

#: Commutative comb operations whose operands are sorted into a canonical
#: order (constants last) so CSE can see through operand permutations.
COMMUTATIVE_OPS = ("comb.add", "comb.mul", "comb.and", "comb.or", "comb.xor")

#: icmp predicate mirrored under operand swap (a pred b == b mirror(pred) a).
_ICMP_MIRROR = {
    "eq": "eq", "ne": "ne",
    "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
    "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
}

#: icmp predicate under logical negation (!(a pred b) == a invert(pred) b).
_ICMP_INVERT = {
    "eq": "ne", "ne": "eq",
    "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
    "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
}

#: icmp x pred x for the reflexive predicates.
_ICMP_REFLEXIVE = {
    "eq": 1, "ule": 1, "uge": 1, "sle": 1, "sge": 1,
    "ne": 0, "ult": 0, "ugt": 0, "slt": 0, "sgt": 0,
}


def _is_pure(op: Operation) -> bool:
    return (not op.opdef.has_side_effects and not op.opdef.is_terminator
            and not op.regions)


def _erase_dead_tree(root: Operation) -> None:
    """Erase ``root`` if dead, then any pure operand subtree that the
    erasure orphaned.  Eager cleanup matters beyond tidiness: dead feeder
    trees would otherwise linger until the round's DCE — and in the
    meantime block every single-use-gated fold, forcing an extra full
    pipeline round to pick up what the first one already exposed."""
    stack = [root]
    while stack:
        current = stack.pop()
        if current.parent is None or current.has_uses \
                or not _is_pure(current):
            continue
        operands = list(current.operands)
        current.erase()
        for operand in operands:
            owner = operand.owner
            if owner is not None and owner.parent is not None:
                stack.append(owner)


def _replace(op: Operation, value: Value) -> None:
    op.result.replace_all_uses_with(value)
    _erase_dead_tree(op)


def _rewire(op: Operation, index: int, value: Value) -> None:
    """``set_operand`` plus eager cleanup of the disconnected subtree."""
    old = op.operands[index]
    op.set_operand(index, value)
    owner = old.owner
    if owner is not None and owner.parent is not None:
        _erase_dead_tree(owner)


def _mask(width: int) -> int:
    return (1 << width) - 1


# ---------------------------------------------------------------------------
# canonicalize: operand ordering, algebraic identities, wiring folds
# ---------------------------------------------------------------------------

def _order_commutative(graph: Graph) -> int:
    """Sort operands of commutative ops: non-constants by block position,
    constants last ordered by value.  Deterministic and idempotent."""
    position = {op: i for i, op in enumerate(graph.operations)}

    def key(value: Value) -> Tuple[int, int]:
        const = _constant_value(value)
        if const is not None:
            return (1, const)
        owner = value.owner
        return (0, position.get(owner, -1) if owner is not None else -1)

    swapped = 0
    for op in graph.operations:
        if op.name not in COMMUTATIVE_OPS or len(op.operands) != 2:
            continue
        lhs, rhs = op.operands
        if key(lhs) > key(rhs):
            op.set_operand(0, rhs)
            op.set_operand(1, lhs)
            swapped += 1
    return swapped


def _simplify_self_inverse(graph: Graph, op: Operation) -> bool:
    """x ^ x -> 0, x - x -> 0, x & 0 -> 0, x * 0 -> 0 (need a fresh
    constant, so they cannot live in ``_simplify_algebraic``)."""
    name = op.name
    zero = False
    if name in ("comb.xor", "comb.sub") and op.operands[0] is op.operands[1]:
        zero = True
    if name in ("comb.and", "comb.mul"):
        if 0 in (_constant_value(op.operands[0]),
                 _constant_value(op.operands[1])):
            zero = True
    if not zero:
        return False
    _replace(op, _make_constant(graph, op, 0, op.result.width))
    return True


def _fold_extract(graph: Graph, op: Operation) -> bool:
    """extract-of-extract, extract-of-concat, extract-of-replicate."""
    src = op.operands[0].owner
    if src is None:
        return False
    low = op.attr("low", 0)
    width = op.result.width
    if src.name == "comb.extract":
        _rewire(op, 0, src.operands[0])
        op.attributes["low"] = low + src.attr("low", 0)
        return True
    if src.name == "comb.concat":
        offset = 0
        for operand in reversed(src.operands):
            if offset <= low and low + width <= offset + operand.width:
                if low == offset and width == operand.width:
                    _replace(op, operand)
                else:
                    _rewire(op, 0, operand)
                    op.attributes["low"] = low - offset
                return True
            offset += operand.width
        return False
    if src.name == "comb.replicate":
        inner = src.operands[0]
        start = low % inner.width
        if start == 0 and width % inner.width == 0:
            # Copy-aligned slice of a replication is a narrower replication.
            if width == inner.width:
                _replace(op, inner)
            else:
                rep = Operation("comb.replicate", [inner], [(width, None)])
                graph.block.insert_before(op, rep)
                _replace(op, rep.result)
            return True
        if start + width <= inner.width:
            if width == inner.width:
                _replace(op, inner)
            else:
                _rewire(op, 0, inner)
                op.attributes["low"] = start
            return True
    return False


def _slice_feasible(value: Value, rel_low: int, piece_width: int) -> bool:
    """True when ``_slice_value`` can produce this sub-slice without
    leaving an unfoldable extract behind."""
    if rel_low == 0 and piece_width == value.width:
        return True
    if _constant_value(value) is not None:
        return True
    owner = value.owner
    if owner is None or len(owner.result.uses) != 1:
        return False
    if owner.name == "comb.replicate":
        inner_width = owner.operands[0].width
        return (rel_low % inner_width == 0
                and piece_width % inner_width == 0)
    return owner.name == "comb.extract"


def _slice_value(graph: Graph, anchor: Operation, value: Value,
                 rel_low: int, piece_width: int) -> Value:
    """Materialize ``value[rel_low +: piece_width]`` in folded form
    (callers check :func:`_slice_feasible` first)."""
    if rel_low == 0 and piece_width == value.width:
        return value
    const = _constant_value(value)
    if const is not None:
        return _make_constant(graph, anchor,
                              (const >> rel_low) & _mask(piece_width),
                              piece_width)
    owner = value.owner
    assert owner is not None
    if owner.name == "comb.replicate":
        inner = owner.operands[0]
        if piece_width == inner.width:
            return inner
        rep = Operation("comb.replicate", [inner], [(piece_width, None)])
        graph.block.insert_before(anchor, rep)
        return rep.result
    sliced = Operation("comb.extract", [owner.operands[0]],
                       [(piece_width, None)],
                       {"low": owner.attr("low", 0) + rel_low})
    graph.block.insert_before(anchor, sliced)
    return sliced.result


def _split_extract_of_concat(graph: Graph, op: Operation) -> bool:
    """Extract spanning several concat operands: split into per-operand
    slices — but only when every slice folds (full operand, constant,
    copy-aligned replicate, or a merged extract) and the concat dies, so
    the rewrite shrinks the graph."""
    src = op.operands[0].owner
    if (src is None or src.name != "comb.concat"
            or len(src.result.uses) != 1):
        return False
    low = op.attr("low", 0)
    width = op.result.width
    pieces = []
    offset = 0
    for operand in reversed(src.operands):
        piece_low = max(low, offset)
        piece_high = min(low + width, offset + operand.width)
        if piece_high > piece_low:
            pieces.append((operand, piece_low - offset,
                           piece_high - piece_low))
        offset += operand.width
    if len(pieces) < 2:
        return False
    if not all(_slice_feasible(v, rel, w) for v, rel, w in pieces):
        return False
    values = [_slice_value(graph, op, v, rel, w) for v, rel, w in pieces]
    values.reverse()  # back to MSB-first
    joined = Operation("comb.concat", values, [(width, None)])
    graph.block.insert_before(op, joined)
    _replace(op, joined.result)
    return True


def _fold_disjoint_bits(graph: Graph, op: Operation) -> bool:
    """or/xor/add of two concats whose set bits cannot overlap (one is
    zero-padded low, the other zero-padded high) is pure wiring: the
    rotate idiom ``(x << k) | (x >> (w-k))`` collapses to one concat."""
    if op.name not in ("comb.or", "comb.xor", "comb.add"):
        return False
    width = op.result.width
    for hi_index in (0, 1):
        hi, lo = op.operands[hi_index], op.operands[1 - hi_index]
        hi_op, lo_op = hi.owner, lo.owner
        if (hi_op is None or lo_op is None or hi_op is lo_op
                or hi_op.name != "comb.concat"
                or lo_op.name != "comb.concat"):
            continue
        tail, head = hi_op.operands[-1], lo_op.operands[0]
        if _constant_value(tail) != 0 or _constant_value(head) != 0:
            continue
        low_zeros, high_zeros = tail.width, head.width
        if low_zeros + high_zeros < width:
            continue  # set bits may overlap
        parts = list(hi_op.operands[:-1])
        middle = low_zeros + high_zeros - width
        if middle > 0:
            parts.append(_make_constant(graph, op, 0, middle))
        parts.extend(lo_op.operands[1:])
        if not parts:
            continue
        joined = Operation("comb.concat", parts, [(width, None)])
        graph.block.insert_before(op, joined)
        _replace(op, joined.result)
        return True
    return False


def _fold_concat(graph: Graph, op: Operation) -> bool:
    """Flatten nested concats, merge adjacent constants, and merge
    adjacent extracts of contiguous slices of one value (MSB-first)."""
    if any(v.owner is not None and v.owner.name == "comb.concat"
           for v in op.operands):
        flat: List[Value] = []
        for value in op.operands:
            owner = value.owner
            if owner is not None and owner.name == "comb.concat":
                flat.extend(owner.operands)
            else:
                flat.append(value)
        replacement = Operation("comb.concat", flat,
                                [(op.result.width, None)])
        graph.block.insert_before(op, replacement)
        _replace(op, replacement.result)
        return True

    def merge_pair(hi: Value, lo: Value, anchor: Operation) -> Optional[Value]:
        hi_const, lo_const = _constant_value(hi), _constant_value(lo)
        if hi_const is not None and lo_const is not None:
            merged = (hi_const << lo.width) | lo_const
            return _make_constant(graph, anchor, merged, hi.width + lo.width)
        hi_op, lo_op = hi.owner, lo.owner
        if (hi_op is not None and lo_op is not None
                and hi_op.name == "comb.extract"
                and lo_op.name == "comb.extract"
                and hi_op.operands[0] is lo_op.operands[0]
                and lo_op.attr("low", 0) + lo.width == hi_op.attr("low", 0)):
            joined = Operation(
                "comb.extract", [lo_op.operands[0]],
                [(hi.width + lo.width, None)], {"low": lo_op.attr("low", 0)})
            graph.block.insert_before(anchor, joined)
            return joined.result
        return None

    for i in range(len(op.operands) - 1):
        merged_value = merge_pair(op.operands[i], op.operands[i + 1], op)
        if merged_value is None:
            continue
        rest = op.operands[:i] + [merged_value] + op.operands[i + 2:]
        if len(rest) == 1:
            _replace(op, rest[0])
        else:
            replacement = Operation("comb.concat", rest,
                                    [(op.result.width, None)])
            graph.block.insert_before(op, replacement)
            _replace(op, replacement.result)
        return True
    return False


#: Ops a truncating extract narrows at any bit offset (bitwise: every
#: result bit depends only on the same-position operand bits).
_NARROW_ANY_LOW = ("comb.and", "comb.or", "comb.xor", "comb.not")
#: Ops a truncating extract narrows only at offset 0 (modular arithmetic:
#: low result bits depend only on low operand bits).  Shifts are excluded —
#: truncating a shift *amount* changes its value.
_NARROW_LOW_ZERO = ("comb.add", "comb.sub", "comb.mul")


def _narrow_through_extract(graph: Graph, op: Operation) -> bool:
    """Width-normalization: ``extract(f(a, b))`` -> ``f(extract(a),
    extract(b))`` so the widen-compute-truncate chains the hwarith lowering
    emits collapse to arithmetic at the consumed width.

    Applied only when the wide op has no other users and at least one
    operand's extract folds away immediately (a constant or wiring op), so
    the rewrite never grows the graph once the folds run.
    """
    src = op.operands[0].owner
    if src is None or len(src.results) != 1:
        return False
    if src.opdef.has_side_effects or src.regions:
        return False
    uses = src.result.uses
    if len(uses) != 1 or next(iter(uses))[0] is not op:
        return False
    low = op.attr("low", 0)
    width = op.result.width
    if src.name == "comb.mux":
        data_operands = src.operands[1:]
    elif src.name in _NARROW_ANY_LOW:
        data_operands = src.operands
    elif src.name in _NARROW_LOW_ZERO and low == 0:
        data_operands = src.operands
    else:
        return False

    def foldable(value: Value) -> bool:
        if _constant_value(value) is not None:
            return True
        owner = value.owner
        return owner is not None and owner.name in (
            "comb.concat", "comb.extract", "comb.replicate")

    if not any(foldable(v) for v in data_operands):
        return False
    new_operands: List[Value] = []
    for index, value in enumerate(src.operands):
        if src.name == "comb.mux" and index == 0:
            new_operands.append(value)
            continue
        sliced = Operation("comb.extract", [value], [(width, None)],
                           {"low": low})
        graph.block.insert_before(op, sliced)
        new_operands.append(sliced.result)
    narrow = Operation(src.name, new_operands, [(width, None)])
    graph.block.insert_before(op, narrow)
    _replace(op, narrow.result)
    return True


def _fold_mux_not(graph: Graph, op: Operation) -> bool:
    """mux(c,1,0) -> c; mux(c,0,1) -> !c; mux(!c,a,b) -> mux(c,b,a);
    !!x -> x; x ^ all-ones -> !x."""
    if op.name == "comb.mux":
        cond, t, f = op.operands
        if op.result.width == 1:
            t_const, f_const = _constant_value(t), _constant_value(f)
            if (t_const, f_const) == (1, 0):
                _replace(op, cond)
                return True
            if (t_const, f_const) == (0, 1):
                inverted = Operation("comb.not", [cond], [(1, None)])
                graph.block.insert_before(op, inverted)
                _replace(op, inverted.result)
                return True
        cond_op = cond.owner
        if cond_op is not None and cond_op.name == "comb.not":
            _rewire(op, 0, cond_op.operands[0])
            op.set_operand(1, f)
            op.set_operand(2, t)
            return True
        return False
    if op.name == "comb.not":
        inner = op.operands[0].owner
        if inner is not None and inner.name == "comb.not":
            _replace(op, inner.operands[0])
            return True
        return False
    if op.name == "comb.xor":
        for idx in (0, 1):
            if _constant_value(op.operands[idx]) == _mask(op.result.width):
                other = op.operands[1 - idx]
                inverted = Operation("comb.not", [other],
                                     [(op.result.width, None)])
                graph.block.insert_before(op, inverted)
                _replace(op, inverted.result)
                return True
    return False


def _apply_algebraic(graph: Graph, op: Operation) -> Optional[str]:
    simplified = _simplify_algebraic(op)
    if simplified is None:
        return None
    _replace(op, simplified)
    return "removed"


def _apply_self_inverse(graph: Graph, op: Operation) -> Optional[str]:
    return "removed" if _simplify_self_inverse(graph, op) else None


def _as_rewrite(
        helper: Callable[[Graph, Operation], bool],
) -> Callable[[Graph, Operation], Optional[str]]:
    def rule(graph: Graph, op: Operation) -> Optional[str]:
        return "rewritten" if helper(graph, op) else None
    return rule


#: Per-op-name canonicalization rules, tried in order.  Dispatching by
#: name keeps the hot path linear: an op only pays for the helpers that
#: can possibly apply to it, and the bulk of a lowered graph (constants,
#: wiring extracts/concats, interface ops) skips almost everything.
_CANON_RULES: Dict[str, Tuple] = {
    "comb.add": (_apply_algebraic, _as_rewrite(_fold_disjoint_bits)),
    "comb.sub": (_apply_algebraic, _apply_self_inverse),
    "comb.or": (_apply_algebraic, _as_rewrite(_fold_disjoint_bits)),
    "comb.xor": (_apply_algebraic, _apply_self_inverse,
                 _as_rewrite(_fold_disjoint_bits),
                 _as_rewrite(_fold_mux_not)),
    "comb.mul": (_apply_algebraic, _apply_self_inverse),
    "comb.and": (_apply_algebraic, _apply_self_inverse),
    "comb.shl": (_apply_algebraic, _as_rewrite(_rewrite_constant_shift)),
    "comb.shru": (_apply_algebraic, _as_rewrite(_rewrite_constant_shift)),
    "comb.shrs": (_as_rewrite(_rewrite_constant_shift),),
    "comb.mux": (_apply_algebraic, _as_rewrite(_fold_mux_not)),
    "comb.not": (_as_rewrite(_fold_mux_not),),
    "comb.extract": (_apply_algebraic, _as_rewrite(_fold_extract),
                     _as_rewrite(_split_extract_of_concat),
                     _as_rewrite(_narrow_through_extract)),
    "comb.concat": (_apply_algebraic, _as_rewrite(_fold_concat)),
}


def _try_canonicalize(graph: Graph, op: Operation) -> Optional[str]:
    """Attempt one canonicalization rewrite on ``op``; returns "removed",
    "rewritten", or None when the op is already in normal form."""
    rules = _CANON_RULES.get(op.name)
    if rules is None or op.parent is None or not _is_pure(op):
        return None
    if len(op.results) != 1:
        return None
    for rule in rules:
        kind = rule(graph, op)
        if kind is not None:
            return kind
    return None


def canonicalize_pass(graph: Graph) -> Tuple[int, int]:
    """Commutative-operand ordering plus algebraic and wiring folds.

    Worklist-driven: every rule-bearing op is visited once, and a
    successful rewrite re-enqueues only its neighborhood (users of the
    rewritten result and remaining users of its former operands, whose
    use counts changed) — not the whole graph.  The local re-enqueue is
    deliberately incomplete (eager dead-tree erasure drops use counts
    deep inside dead feeders, and rules do not enqueue the ops they
    create), so the driver reseeds and drains until a whole iteration
    is quiet: the pass returns at its own fixpoint, which the pass
    manager's dirty tracking relies on.  The fixpoint matches a
    sweep-until-quiet driver, reached in O(changes) local visits plus
    one quiet confirmation drain instead of O(changes x graph) sweeps.
    """
    before = len(graph.operations)
    rewritten = 0
    while True:
        swaps = _order_commutative(graph)
        iter_removed, iter_rewritten = _drain_canonicalize(graph)
        # Every fired rule modified or replaced an op; ``removed`` is the
        # net size delta (rules erase whole dead feeder trees eagerly,
        # and some removals mint a replacement constant, so per-rule
        # counts would be dishonest in both directions).
        rewritten += swaps + iter_removed + iter_rewritten
        if swaps == 0 and iter_removed == 0 and iter_rewritten == 0:
            return max(0, before - len(graph.operations)), rewritten


def _drain_canonicalize(graph: Graph) -> Tuple[int, int]:
    """One seed-and-drain iteration of the canonicalize worklist."""
    removed = 0
    rewritten = 0
    rules_for = _CANON_RULES.get
    pending = deque(op for op in graph.operations if op.name in _CANON_RULES)
    queued = set(pending)
    while pending:
        op = pending.popleft()
        queued.discard(op)
        rules = rules_for(op.name)
        if rules is None or op.parent is None or not _is_pure(op) \
                or len(op.results) != 1:
            continue
        # Snapshot the neighborhood before rewriting: a replacement moves
        # the result's uses and an erasure drops operand uses, and both
        # kinds of neighbor may fold differently afterwards.
        users_before = [use_op for use_op, _ in op.result.uses]
        operands_before = list(op.operands)
        kind = None
        for rule in rules:
            kind = rule(graph, op)
            if kind is not None:
                break
        if kind is None:
            continue
        if kind == "removed":
            removed += 1
        else:
            rewritten += 1
        touched = users_before
        for value in operands_before:
            touched.extend(use_op for use_op, _ in value.uses)
        if op.parent is not None:
            touched.append(op)
        for target in touched:
            if target.parent is not None and target not in queued \
                    and target.name in _CANON_RULES:
                queued.add(target)
                pending.append(target)
    return removed, rewritten


# ---------------------------------------------------------------------------
# propagate: constant folding through registered folders + constant dedup
# ---------------------------------------------------------------------------

def propagate_pass(graph: Graph) -> Tuple[int, int]:
    """Fold pure ops whose operands are all constants, then merge identical
    constants (the copy-propagation half: every use of an equal constant
    flows to one defining op)."""
    before = len(graph.operations)
    rewritten = 0
    # Block order is topological (defs precede uses; rewrites insert
    # before their anchor), so one in-order sweep folds whole chains:
    # a folded op is a constant by the time its users are visited.
    for op in list(graph.operations):
        if op.name == "comb.constant" or not _is_pure(op):
            continue
        if len(op.results) != 1:
            continue
        folder = op.opdef.folder
        if folder is None:
            continue
        operand_values = [_constant_value(v) for v in op.operands]
        result = folder(op, operand_values)
        if result is None:
            continue
        _replace(op, _make_constant(graph, op, result, op.result.width))
        rewritten += 1
    dedupe_constants(graph)
    # Erased net of replacements: folds eagerly drop their now-dead
    # feeder constants, so the graph-size delta is the honest count.
    removed = max(0, before - len(graph.operations))
    return removed, rewritten


# ---------------------------------------------------------------------------
# cse: global value numbering over the (single-block) graph
# ---------------------------------------------------------------------------

def _value_number_key(op: Operation) -> Tuple[object, ...]:
    attributes = op.attributes
    if attributes:
        try:
            attr_key: object = tuple(sorted(attributes.items()))
            hash(attr_key)
        except TypeError:
            # Unhashable attribute payloads (e.g. ROM value lists) fall
            # back to the repr form; the common int/str attrs stay cheap.
            attr_key = tuple(sorted(
                (k, repr(v)) for k, v in attributes.items()))
    else:
        attr_key = ()
    return (
        op.name,
        tuple(id(v) for v in op.operands),
        attr_key,
        tuple((r.width, r.signed) for r in op.results),
    )


def cse_pass(graph: Graph) -> Tuple[int, int]:
    """Merge structurally identical pure single-result operations.  Block
    order is def-before-use (IV001), so the first occurrence dominates."""
    # One in-order sweep reaches the fixpoint: operands precede their
    # users (IV001), so by the time an op is visited every merge among
    # its operands has already redirected them — value-number chains
    # collapse without a confirmation sweep.
    removed = 0
    seen: Dict[Tuple[object, ...], Operation] = {}
    for op in list(graph.operations):
        if not _is_pure(op) or len(op.results) != 1:
            continue
        key = _value_number_key(op)
        existing = seen.get(key)
        if existing is None:
            seen[key] = op
        else:
            _replace(op, existing.result)
            removed += 1
    return removed, 0


# ---------------------------------------------------------------------------
# strength: expensive ops -> cheap ops, compare canonicalization
# ---------------------------------------------------------------------------

def _reduce_mul(graph: Graph, op: Operation) -> bool:
    """mul by 2^k -> shift wiring; mul by 2^k - 1 -> (x << k) - x.  Both
    are signedness-agnostic under masked two's-complement arithmetic."""
    width = op.result.width
    for idx in (1, 0):
        const = _constant_value(op.operands[idx])
        if const is None or const in (0, 1):
            continue
        value = op.operands[1 - idx]
        if (const & (const - 1)) == 0:
            amount = const.bit_length() - 1
            replacement = _shift_wiring(graph, op, value, amount)
            _replace(op, replacement)
            return True
        if ((const + 1) & const) == 0 and const.bit_length() >= 2:
            # const == 2^k - 1 (binary repunit): x*(2^k-1) == (x<<k) - x.
            amount = const.bit_length()
            shl_value = _shift_wiring(graph, op, value, amount)
            sub = Operation("comb.sub", [shl_value, value], [(width, None)])
            graph.block.insert_before(op, sub)
            _replace(op, sub.result)
            return True
    return False


def _shift_wiring(graph: Graph, anchor: Operation, value: Value,
                  amount: int) -> Value:
    """Build ``value << amount`` as extract/concat wiring (no shifter)."""
    width = value.width
    if amount == 0:
        return value
    if amount >= width:
        return _make_constant(graph, anchor, 0, width)
    keep = width - amount
    low = Operation("comb.extract", [value], [(keep, None)], {"low": 0})
    graph.block.insert_before(anchor, low)
    pad = _make_constant(graph, anchor, 0, amount)
    concat = Operation("comb.concat", [low.result, pad], [(width, None)])
    graph.block.insert_before(anchor, concat)
    return concat.result


def _shrink_divmod(graph: Graph, op: Operation) -> bool:
    """Unsigned div/mod by powers of two -> wiring/mask; any div/mod by 1.
    Signed power-of-two division rounds toward zero, not minus infinity,
    so it is deliberately NOT rewritten to an arithmetic shift."""
    const = _constant_value(op.operands[1])
    if const is None or const == 0:
        # Division by zero has trap-like core-defined semantics; leave it.
        return False
    width = op.result.width
    if const == 1:
        if op.name in ("comb.divu", "comb.divs"):
            _replace(op, op.operands[0])
            return True
        if op.name in ("comb.modu", "comb.mods"):
            _replace(op, _make_constant(graph, op, 0, width))
            return True
        return False
    if (const & (const - 1)) != 0:
        return False
    amount = const.bit_length() - 1
    if op.name == "comb.divu":
        # x >> amount as wiring: zero-extend the top width-amount bits.
        keep = width - amount
        if keep <= 0:
            _replace(op, _make_constant(graph, op, 0, width))
            return True
        high = Operation("comb.extract", [op.operands[0]], [(keep, None)],
                         {"low": amount})
        graph.block.insert_before(op, high)
        pad = _make_constant(graph, op, 0, amount)
        concat = Operation("comb.concat", [pad, high.result], [(width, None)])
        graph.block.insert_before(op, concat)
        _replace(op, concat.result)
        return True
    if op.name == "comb.modu":
        mask_const = _make_constant(graph, op, const - 1, width)
        masked = Operation("comb.and", [op.operands[0], mask_const],
                           [(width, None)])
        graph.block.insert_before(op, masked)
        _replace(op, masked.result)
        return True
    return False


def _canonicalize_icmp(graph: Graph, op: Operation) -> bool:
    pred = op.attr("predicate")
    lhs, rhs = op.operands
    if lhs is rhs:
        _replace(op, _make_constant(graph, op, _ICMP_REFLEXIVE[pred], 1))
        return True
    if _constant_value(lhs) is not None and _constant_value(rhs) is None:
        op.set_operand(0, rhs)
        op.set_operand(1, lhs)
        op.attributes["predicate"] = _ICMP_MIRROR[pred]
        return True
    rhs_const = _constant_value(rhs)
    if rhs_const is None:
        return False
    width = lhs.width
    if rhs_const == 0:
        if pred == "ult":
            _replace(op, _make_constant(graph, op, 0, 1))
            return True
        if pred == "uge":
            _replace(op, _make_constant(graph, op, 1, 1))
            return True
        if pred in ("ule", "ugt"):
            op.attributes["predicate"] = "eq" if pred == "ule" else "ne"
            return True
    if rhs_const == _mask(width):
        if pred == "ugt":
            _replace(op, _make_constant(graph, op, 0, 1))
            return True
        if pred == "ule":
            _replace(op, _make_constant(graph, op, 1, 1))
            return True
        if pred in ("uge", "ult"):
            op.attributes["predicate"] = "eq" if pred == "uge" else "ne"
            return True
    return False


def _invert_not_of_icmp(graph: Graph, op: Operation) -> bool:
    """!(a pred b) -> a invert(pred) b, when the compare has no other use."""
    inner = op.operands[0].owner
    if (inner is None or inner.name != "comb.icmp"
            or len(inner.result.uses) != 1):
        return False
    inverted = Operation(
        "comb.icmp", list(inner.operands), [(1, None)],
        {"predicate": _ICMP_INVERT[inner.attr("predicate")]})
    graph.block.insert_before(op, inverted)
    _replace(op, inverted.result)
    return True


def strength_pass(graph: Graph) -> Tuple[int, int]:
    """Strength reduction and compare canonicalization."""
    # Single in-order sweep: every rule rewrites the visited op in terms
    # of its (earlier) operands, and the only cross-op enabling chain —
    # icmp predicate canonicalization feeding ``not``-inversion — runs
    # def-before-use, so no rewrite exposes work behind the sweep cursor.
    removed = 0
    rewritten = 0
    for op in list(graph.operations):
        if op.parent is None or not _is_pure(op):
            continue
        if op.name == "comb.mul" and _reduce_mul(graph, op):
            rewritten += 1
            continue
        if (op.name in ("comb.divu", "comb.divs", "comb.modu",
                        "comb.mods")
                and _shrink_divmod(graph, op)):
            rewritten += 1
            continue
        if op.name == "comb.icmp" and _canonicalize_icmp(graph, op):
            rewritten += 1
            continue
        if op.name == "comb.not" and _invert_not_of_icmp(graph, op):
            rewritten += 1
    return removed, rewritten


# ---------------------------------------------------------------------------
# share / dce
# ---------------------------------------------------------------------------

def share_pass(graph: Graph) -> Tuple[int, int]:
    """Intra-graph resource sharing: push muxes through expensive ops so
    mutually exclusive users time-share one unit (see repro.opt.share)."""
    return mux_push(graph)


def dce_pass(graph: Graph) -> Tuple[int, int]:
    return graph.remove_dead_code(), 0
