"""Command-line interface for the Longnail reproduction.

Usage (``python -m repro ...`` or the ``repro-longnail`` entry point):

    repro-longnail compile my_isax.core_desc --core VexRiscv -o build/
    repro-longnail batch --workers 4 -o build/grid
    repro-longnail serve --port 8080 --workers 4
    repro-longnail datasheet ORCA
    repro-longnail isaxes [name]
    repro-longnail table1 | table3 | table4
    repro-longnail simulate prog.s --isax zol --isax autoinc --core VexRiscv

``compile`` runs the full flow — CoreDSL in, SystemVerilog and the SCAIE-V
configuration file out — exactly like the paper's Figure 9 tool invocation.
``batch`` fans a whole (ISAX x core) grid out over the
:mod:`repro.service` orchestrator with artifact caching and per-phase
timing metrics.  ``serve`` runs the same pipeline as a long-lived HTTP
service (:mod:`repro.server`) with request coalescing, priority queues
and streaming observability; it drains gracefully on SIGTERM/SIGINT.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from typing import List, Optional

from repro.hls.longnail import compile_isax
from repro.isaxes import ALL_ISAXES
from repro.opt.pipeline import PASS_ORDER, OptOptions
from repro.scaiev.cores import CORES, EXPERIMENTAL_CORES, core_datasheet
from repro.scheduling.problem import ScheduleError
from repro.sim.compile import SIM_ENGINES
from repro.utils.diagnostics import CoreDSLError

#: Every targetable host core: the four Table 4 MCUs plus the Section 7
#: application-class outlook core.
ALL_CORES = CORES + EXPERIMENTAL_CORES

#: Oracle kinds `fuzz --oracle` accepts ("all" expands to every kind).
ORACLE_CHOICES = ("compile", "schedule", "irverify", "cosim", "simengine",
                  "batchsim", "rangesound", "determinism", "optequiv",
                  "discover", "all")


def _add_opt_arguments(parser: argparse.ArgumentParser) -> None:
    """The optimizer-pipeline flags shared by compile/batch/lint."""
    parser.add_argument("-O", "--opt-level", type=int, choices=(0, 1, 2),
                        default=0, dest="opt_level", metavar="N",
                        help="optimizer level: 0 off, 1 clean-up "
                             "(canonicalize/propagate/CSE/DCE), 2 adds "
                             "strength reduction and resource sharing")
    parser.add_argument("--opt-pass", action="append", default=[],
                        choices=PASS_ORDER, metavar="PASS",
                        dest="opt_pass",
                        help="enable an optimizer pass on top of -ON "
                             "(repeatable; passes: "
                             + ", ".join(PASS_ORDER) + ")")
    parser.add_argument("--no-opt-pass", action="append", default=[],
                        choices=PASS_ORDER, metavar="PASS",
                        dest="no_opt_pass",
                        help="disable an optimizer pass (repeatable)")


def _opt_flags(args: argparse.Namespace) -> tuple:
    """CLI pass overrides -> the '+name'/'-name' flag tuple."""
    return tuple(list(args.opt_pass)
                 + ["-" + name for name in args.no_opt_pass])


def _print_optimizer_summary(report) -> None:
    if report is None:
        return
    print(f"optimizer: -O{report.level} over {report.graphs} graph(s), "
          f"{report.nodes_before} -> {report.nodes_after} ops "
          f"(-{report.node_reduction_pct:.1f}%), "
          f"{report.ops_removed} removed / {report.ops_rewritten} rewritten "
          f"in {report.seconds:.3f}s")


def _read_source(path_str: str) -> str:
    path = pathlib.Path(path_str)
    if not path.is_file():
        raise CoreDSLError(f"input file not found: {path}")
    try:
        return path.read_text(encoding="utf-8")
    except OSError as err:
        raise CoreDSLError(f"cannot read {path}: {err}") from err


def _cmd_compile(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    try:
        datasheet = core_datasheet(args.core)
    except KeyError as err:
        raise CoreDSLError(str(err.args[0]) if err.args else str(err)) from err
    artifact = compile_isax(
        source, core=datasheet, top=args.top, engine=args.engine,
        cycle_time_ns=args.cycle_time,
        opt=OptOptions.from_flags(args.opt_level, _opt_flags(args)),
    )
    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    sv_path = out_dir / f"{artifact.name}.sv"
    cfg_path = out_dir / f"{artifact.name}.scaiev.yaml"
    sv_path.write_text(artifact.verilog, encoding="utf-8")
    cfg_path.write_text(artifact.config_yaml, encoding="utf-8")

    for diag in artifact.diagnostics:
        print(diag.render(), file=sys.stderr)
    print(f"ISAX '{artifact.name}' compiled for {artifact.core_name} "
          f"({artifact.datasheet.cycle_time_ns:.2f} ns cycle)")
    _print_optimizer_summary(artifact.optimizer)
    for name, functionality in artifact.functionalities.items():
        print(f"  {functionality.kind:<12} {name:<16} "
              f"mode={functionality.mode.value:<16} "
              f"span={functionality.schedule.makespan}")
    print(f"wrote {sv_path}")
    print(f"wrote {cfg_path}")
    return 0


def _default_cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-longnail"


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.service import (
        ArtifactCache,
        BatchExecutor,
        job_grid,
        load_manifest,
    )

    if args.manifest:
        jobs = load_manifest(_read_source(args.manifest))
    else:
        isaxes = args.isax or sorted(ALL_ISAXES)
        cores = args.core or list(ALL_CORES)
        scales = args.cycle_scale or [None]
        jobs = job_grid(isaxes, cores, cycle_scales=scales,
                        engine=args.engine, opt_level=args.opt_level,
                        opt_passes=_opt_flags(args))

    cache = None
    if not args.no_cache:
        cache = ArtifactCache(pathlib.Path(args.cache_dir).expanduser())
    executor = BatchExecutor(
        workers=args.workers, cache=cache, timeout_s=args.timeout,
        retries=args.retries, backoff_base_s=args.backoff,
    )
    outcomes, metrics = executor.run_compile_jobs(jobs)

    out_dir = pathlib.Path(args.output) if args.output else None
    for job, outcome in zip(jobs, outcomes):
        if outcome.ok:
            origin = "cache" if outcome.cached else "compiled"
            spans = ",".join(str(f["makespan"])
                             for f in outcome.result["functionalities"])
            print(f"  ok     {job.job_id:<28} {origin:<9} "
                  f"{outcome.seconds:>8.3f}s  spans={spans}")
            if out_dir is not None:
                core_dir = out_dir / outcome.result["core"]
                core_dir.mkdir(parents=True, exist_ok=True)
                (core_dir / f"{job.isax}.sv").write_text(
                    outcome.result["verilog"], encoding="utf-8")
                (core_dir / f"{job.isax}.scaiev.yaml").write_text(
                    outcome.result["config_yaml"], encoding="utf-8")
        else:
            reason = (outcome.error or "unknown error").splitlines()[0]
            print(f"  FAILED {job.job_id:<28} "
                  f"attempts={outcome.attempts}  {reason}")

    if args.metrics:
        metrics_path = pathlib.Path(args.metrics)
    elif out_dir is not None:
        metrics_path = out_dir / "batch_metrics.json"
    else:
        metrics_path = pathlib.Path("batch_metrics.json")
    metrics.dump(metrics_path)

    totals = metrics.phase_totals()
    print(f"{metrics.ok}/{len(jobs)} jobs ok, {metrics.cached} from cache, "
          f"{metrics.failed} failed ({args.workers} workers)")
    print("phase totals: " + "  ".join(f"{k}={v:.3f}s"
                                       for k, v in totals.items()))
    sched = metrics.scheduler_totals()
    if sched["graphs"]:
        engines = "+".join(sorted(sched["engines"]))
        print(f"scheduler: {sched['graphs']} graphs via {engines}, "
              f"{sched['components']} components, "
              f"schedule cache {sched['schedule_cache_hits']} hits / "
              f"{sched['schedule_cache_misses']} misses "
              f"({sched['schedule_cache_hit_rate']:.0%}), "
              f"solve {sched['solve_seconds']:.3f}s")
    opt_totals = metrics.optimizer_totals()
    if opt_totals["jobs"]:
        print(f"optimizer: {opt_totals['graphs']} graphs, "
              f"{opt_totals['nodes_before']} -> {opt_totals['nodes_after']} "
              f"ops (-{opt_totals['node_reduction_pct']:.1f}%), "
              f"{opt_totals['ops_removed']} removed / "
              f"{opt_totals['ops_rewritten']} rewritten "
              f"in {opt_totals['seconds']:.3f}s")
    lint_totals = metrics.lint_totals()
    if any(lint_totals.values()):
        print("lint: " + "  ".join(f"{sev}={n}"
                                   for sev, n in lint_totals.items() if n))
    if cache is not None:
        stats = cache.stats
        print(f"cache: {stats.hits} hits / {stats.misses} misses "
              f"({stats.hit_rate:.0%}), dir {cache.root}")
    print(f"wrote {metrics_path}")
    return 0 if metrics.failed == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.server import CompileServer, CompileServerApp
    from repro.service import ShardedArtifactCache

    cache = None
    if not args.no_cache:
        cache = ShardedArtifactCache(
            pathlib.Path(args.cache_dir).expanduser(),
            shards=args.cache_shards,
            per_shard_entries=args.cache_shard_entries,
        )
    core = CompileServer(
        workers=args.workers,
        backend=args.backend,
        max_queue_depth=args.queue_depth,
        retries=args.retries,
        backoff_base_s=args.backoff,
        timeout_s=args.timeout,
        disk_cache=cache,
        memory_entries=args.memory_entries,
    )
    app = CompileServerApp(core)

    async def _serve() -> None:
        host, port = await app.start(args.host, args.port)
        print(f"compile server listening on http://{host}:{port} "
              f"({args.workers} {core.backend} workers, "
              f"queue depth {args.queue_depth})")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:     # non-UNIX event loops
                pass
        await stop.wait()
        print("draining: no new jobs accepted, waiting for "
              f"{core.open_jobs} open job(s) ...")
        await app.close(drain=True)
        counters = core.counters
        print(f"drained after {core.uptime_s:.1f}s: "
              f"{counters.completed} ok, {counters.failed} failed, "
              f"{counters.coalesced} coalesced, "
              f"{counters.cache_hits_memory + counters.cache_hits_disk} "
              f"cache hits")

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        IRVerifyError,
        lint_cross_isa,
        run_lints,
        verify_artifact_ir,
    )
    from repro.frontend.elaboration import elaborate
    from repro.utils.diagnostics import (
        RENDERERS,
        count_by_severity,
        sort_diagnostics,
    )

    names = list(args.isax)
    if args.all_isaxes:
        names = sorted(set(names) | set(ALL_ISAXES))

    targets: List[tuple] = []           # (label, source)
    for path in args.targets:
        targets.append((path, _read_source(path)))
    for name in names:
        targets.append((f"{name}.core_desc", ALL_ISAXES[name]))
    if not targets:
        print("error: nothing to lint; pass files, --isax or --all-isaxes",
              file=sys.stderr)
        return 2

    enable = args.enable or None
    disable = args.disable or None
    diagnostics = []
    isas = []
    for label, source in targets:
        isa = elaborate(source, top=args.top, filename=label)
        isas.append(isa)
        try:
            diagnostics.extend(
                run_lints(isa, enable=enable, disable=disable))
        except ValueError as err:       # unknown rule code
            print(f"error: {err}", file=sys.stderr)
            return 2
    diagnostics.extend(lint_cross_isa(isas))

    # Optional Tier B: compile for the requested cores and run the IR
    # verifier over every produced graph, schedule and module.
    opt_options = OptOptions.from_flags(args.opt_level, _opt_flags(args))
    for core in args.core:
        datasheet = core_datasheet(core)
        for (label, _source), isa in zip(targets, isas):
            try:
                artifact = compile_isax(isa, datasheet, lint=False,
                                        verify_ir=False, opt=opt_options)
            except (CoreDSLError, ScheduleError) as err:
                from repro.utils.diagnostics import Diagnostic, Severity
                diagnostics.append(Diagnostic(
                    "IV000", Severity.ERROR,
                    f"{label} does not compile for {core}: {err}",
                    rule="compile"))
                continue
            try:
                for diag in verify_artifact_ir(artifact):
                    diagnostics.append(diag.with_note(
                        f"while verifying '{isa.name}' for {core}"))
            except IRVerifyError as err:
                diagnostics.extend(err.diagnostics)

    diagnostics = sort_diagnostics(diagnostics)
    print(RENDERERS[args.format](diagnostics))
    counts = count_by_severity(diagnostics)
    if counts["error"]:
        return 1
    if args.werror and counts["warning"]:
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import (
        FuzzBudget,
        FuzzConfig,
        run_campaign,
        run_oracles,
    )

    if args.replay:
        source = _read_source(args.replay)
        cores = tuple(args.core) if args.core else None
        report = run_oracles(source, cores=cores, trials=args.trials,
                             cosim_seed=args.cosim_seed,
                             vcd_dir=args.out,
                             sim_engine=args.sim_engine,
                             oracles=tuple(args.oracle))
        print(report)
        for failure in report.failures:
            print(f"  {failure}")
        return 0 if report.ok else 1

    config = FuzzConfig(
        seeds=args.seeds,
        seed_start=args.seed_start,
        budget=FuzzBudget.scaled(args.budget) if args.budget else None,
        cores=tuple(args.core),
        trials=args.trials,
        cosim_seed=args.cosim_seed,
        sim_engine=args.sim_engine,
        workers=args.workers,
        out_dir=args.out,
        reduce=not args.no_reduce,
        oracles=tuple(args.oracle),
    )
    result = run_campaign(config, log=print)
    print(result)
    for outcome in result.outcomes:
        if outcome.status in ("invalid", "error"):
            print(f"  seed {outcome.seed} {outcome.status}: "
                  f"{outcome.detail.splitlines()[0]}")
    print(f"wrote {result.stats_path}")
    return 0 if result.ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.sim.cosim import verify_artifact

    if args.target in ALL_ISAXES:
        source = ALL_ISAXES[args.target]
    else:
        source = _read_source(args.target)
    artifact = compile_isax(source, core=args.core)
    report = verify_artifact(artifact, trials=args.trials,
                             seed=args.cosim_seed, vcd_dir=args.vcd_dir,
                             sim_engine=args.sim_engine)
    print(report)
    for result in report.failures:
        print(f"  {result}")
    for path in report.vcd_paths:
        print(f"wrote {path}")
    return 0 if report.passed else 1


def _cmd_datasheet(args: argparse.Namespace) -> int:
    print(core_datasheet(args.core).to_yaml(), end="")
    return 0


def _cmd_isaxes(args: argparse.Namespace) -> int:
    if args.name:
        print(ALL_ISAXES[args.name])
        return 0
    for name in ALL_ISAXES:
        print(name)
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.eval.tables import render_table1

    print(render_table1())
    return 0


def _cmd_table3(_args: argparse.Namespace) -> int:
    from repro.eval.tables import render_table3

    print(render_table3())
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.eval.asic import run_table4
    from repro.eval.tables import render_table4

    table = run_table4(cores=args.cores)
    print(render_table4(table, include_paper=not args.no_paper,
                        cores=args.cores))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.riscv.assembler import assemble
    from repro.sim.riscv.core_model import CoreTimingModel

    artifacts = [compile_isax(ALL_ISAXES[name], args.core)
                 for name in args.isax]
    program = pathlib.Path(args.file).read_text(encoding="utf-8")
    model = CoreTimingModel(core_datasheet(args.core), artifacts=artifacts)
    model.load_program(assemble(program, isaxes=[a.isa for a in artifacts]))
    report = model.run(max_instructions=args.max_instructions)
    print(f"core:        {args.core}"
          + (f" + {'+'.join(args.isax)}" if args.isax else ""))
    print(f"cycles:      {report.cycles}")
    print(f"instret:     {report.instret}")
    print(f"CPI:         {report.cpi:.2f}")
    print(f"stalls:      {report.stall_cycles}")
    for index in range(1, 32):
        value = report.state.read_x(index)
        if value:
            print(f"  x{index:<3} = {value:#010x}")
    for name, values in report.state.custom.items():
        shown = values[0] if len(values) == 1 else values
        print(f"  {name} = {shown if isinstance(shown, int) else shown}")
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    from repro.discover import (DiscoveryConfig, discover, render_report,
                                write_report)
    from repro.discover.kernel import kernel_names

    if args.list_kernels:
        for name in kernel_names():
            print(name)
        return 0

    params = {}
    for item in args.param:
        name, separator, value = item.partition("=")
        if not separator:
            print(f"error: --param needs NAME=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        params[name.strip()] = int(value, 0)

    config = DiscoveryConfig(
        kernel=args.kernel,
        params=params,
        core=args.core,
        trials=args.trials,
        seed=args.cosim_seed,
        max_mem=args.max_mem,
        promote_state=not args.no_state,
        try_fold=not args.no_fold,
        budget=args.budget,
        workers=args.workers,
        cache_dir=args.cache_dir,
        server_url=args.server,
        priority=args.priority,
    )
    report = discover(config)
    print(render_report(report))
    paths = write_report(report, pathlib.Path(args.out))
    print(f"# report: {paths['report']}")
    if "winner" in paths:
        print(f"# winner: {paths['winner']}")
    return 0 if report.winner is not None else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-longnail",
        description="Longnail/CoreDSL/SCAIE-V reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser(
        "compile", help="compile a CoreDSL file to SystemVerilog + config"
    )
    compile_p.add_argument("file", help="CoreDSL source file (.core_desc)")
    compile_p.add_argument("--core", default="VexRiscv", metavar="CORE",
                           help="host core: " + ", ".join(ALL_CORES))
    compile_p.add_argument("--top", default=None,
                           help="InstructionSet/Core to elaborate")
    compile_p.add_argument("--engine", default="auto",
                           choices=("auto", "fastpath", "milp", "asap"),
                           help="scheduler engine (auto = fastpath)")
    compile_p.add_argument("--cycle-time", type=float, default=None,
                           help="target cycle time in ns (default: the "
                                "core's f_max)")
    compile_p.add_argument("-o", "--output", default=".",
                           help="output directory")
    _add_opt_arguments(compile_p)
    compile_p.set_defaults(func=_cmd_compile)

    batch_p = sub.add_parser(
        "batch", help="compile an (ISAX x core) grid through the batch "
                      "service with caching and per-phase metrics"
    )
    batch_p.add_argument("--isax", action="append", default=[],
                         choices=sorted(ALL_ISAXES), metavar="ISAX",
                         help="ISAX to include (repeatable; default: all "
                              + str(len(ALL_ISAXES)) + ")")
    batch_p.add_argument("--core", action="append", default=[],
                         choices=ALL_CORES, metavar="CORE",
                         help="host core to include (repeatable; default: "
                              "all " + str(len(ALL_CORES)) + ")")
    batch_p.add_argument("--manifest", default=None,
                         help="YAML manifest describing the grid/job list "
                              "(overrides --isax/--core)")
    batch_p.add_argument("--cycle-scale", action="append", type=float,
                         default=[], metavar="S",
                         help="scale each core's cycle time by S "
                              "(repeatable; default: native f_max)")
    batch_p.add_argument("--engine", default="auto",
                         choices=("auto", "fastpath", "milp", "asap"))
    batch_p.add_argument("--workers", type=int, default=2,
                         help="worker processes (<=1: in-process serial)")
    batch_p.add_argument("--timeout", type=float, default=None,
                         help="per-job timeout in seconds")
    batch_p.add_argument("--retries", type=int, default=1,
                         help="retries per failed job (default 1)")
    batch_p.add_argument("--backoff", type=float, default=0.05,
                         metavar="S",
                         help="base retry backoff in seconds, doubled per "
                              "round with deterministic jitter (default "
                              "0.05; 0 disables)")
    batch_p.add_argument("--cache-dir", default=str(_default_cache_dir()),
                         help="artifact cache directory")
    batch_p.add_argument("--no-cache", action="store_true",
                         help="disable the artifact cache")
    batch_p.add_argument("-o", "--output", default=None,
                         help="write <core>/<isax>.sv + .scaiev.yaml here")
    batch_p.add_argument("--metrics", default=None,
                         help="per-phase timing JSON path (default: "
                              "<output>/batch_metrics.json)")
    _add_opt_arguments(batch_p)
    batch_p.set_defaults(func=_cmd_batch)

    serve_p = sub.add_parser(
        "serve", help="run the long-lived compile server (HTTP/JSON API "
                      "with request coalescing, priority queues, "
                      "back-pressure and streaming job events)"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8080,
                         help="TCP port (0 picks a free one; default 8080)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="concurrent executions (default 2)")
    serve_p.add_argument("--backend", default="auto",
                         choices=("auto", "thread", "process"),
                         help="execution pool (auto: process when "
                              "--workers > 1)")
    serve_p.add_argument("--queue-depth", type=int, default=256,
                         help="bounded queue depth; beyond it submissions "
                              "are rejected with HTTP 429 (default 256)")
    serve_p.add_argument("--retries", type=int, default=1,
                         help="retries per failed job (default 1)")
    serve_p.add_argument("--backoff", type=float, default=0.05,
                         metavar="S",
                         help="base retry backoff seconds (default 0.05)")
    serve_p.add_argument("--timeout", type=float, default=None,
                         help="per-job execution timeout in seconds")
    serve_p.add_argument("--cache-dir", default=str(_default_cache_dir()),
                         help="sharded artifact cache directory")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk artifact cache")
    serve_p.add_argument("--cache-shards", type=int, default=8,
                         help="number of disk cache shards (default 8)")
    serve_p.add_argument("--cache-shard-entries", type=int, default=None,
                         metavar="N",
                         help="eviction budget per shard (default "
                              "unbounded)")
    serve_p.add_argument("--memory-entries", type=int, default=2048,
                         help="in-memory warm-tier entries (default 2048; "
                              "0 disables)")
    serve_p.set_defaults(func=_cmd_serve)

    lint_p = sub.add_parser(
        "lint", help="run the CoreDSL lint rules (and, with --core, the "
                     "IR verifier) over sources or benchmark ISAXes"
    )
    lint_p.add_argument("targets", nargs="*", metavar="FILE",
                        help="CoreDSL source files (.core_desc)")
    lint_p.add_argument("--isax", action="append", default=[],
                        choices=sorted(ALL_ISAXES), metavar="ISAX",
                        help="lint a benchmark ISAX (repeatable)")
    lint_p.add_argument("--all-isaxes", action="store_true",
                        help="lint all " + str(len(ALL_ISAXES))
                             + " benchmark ISAXes")
    lint_p.add_argument("--core", action="append", default=[],
                        choices=ALL_CORES, metavar="CORE",
                        help="also compile for CORE and run the IR "
                             "verifier (repeatable)")
    lint_p.add_argument("--top", default=None,
                        help="InstructionSet/Core to elaborate")
    lint_p.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="output format (default: text)")
    lint_p.add_argument("--werror", action="store_true",
                        help="exit non-zero on warnings, not just errors")
    lint_p.add_argument("--enable", action="append", default=[],
                        metavar="CODE",
                        help="run only these rule codes (repeatable)")
    lint_p.add_argument("--disable", action="append", default=[],
                        metavar="CODE",
                        help="skip these rule codes (repeatable)")
    _add_opt_arguments(lint_p)
    lint_p.set_defaults(func=_cmd_lint)

    fuzz_p = sub.add_parser(
        "fuzz", help="generative differential verification: random "
                     "well-typed CoreDSL programs through the oracle stack"
    )
    fuzz_p.add_argument("--seeds", type=int, default=50,
                        help="number of random programs (default 50)")
    fuzz_p.add_argument("--seed-start", type=int, default=0,
                        help="first seed (campaigns are reproducible by "
                             "seed range)")
    fuzz_p.add_argument("--budget", type=int, default=0, metavar="N",
                        help="program size budget: statements per behavior "
                             "(0 = the default budget)")
    fuzz_p.add_argument("--core", action="append", default=[],
                        choices=ALL_CORES, metavar="CORE",
                        help="core to differentially test (repeatable; "
                             "default: the four Table 4 cores)")
    fuzz_p.add_argument("--workers", type=int, default=1,
                        help="worker processes (<=1: in-process serial)")
    fuzz_p.add_argument("--trials", type=int, default=8,
                        help="cosim trials per program and core (default 8)")
    fuzz_p.add_argument("--cosim-seed", type=int, default=0,
                        help="RNG seed for co-simulation stimulus")
    fuzz_p.add_argument("--sim-engine", default="auto",
                        choices=SIM_ENGINES,
                        help="RTL simulation engine for the cosim oracle "
                             "(auto = compiled with interpreter fallback; "
                             "batched = numpy lane-per-trial)")
    fuzz_p.add_argument("-o", "--out", default="fuzz-out",
                        help="corpus/stats directory (default fuzz-out)")
    fuzz_p.add_argument("--no-reduce", action="store_true",
                        help="skip delta-debugging of failing programs")
    fuzz_p.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run the oracle stack on a saved "
                             "reproducer instead of fuzzing")
    fuzz_p.add_argument("--oracle", action="append", default=[],
                        choices=ORACLE_CHOICES, metavar="KIND",
                        help="oracle to run (repeatable; default: the six "
                             "classic oracles; 'optequiv' adds -O2 "
                             "optimized-vs-unoptimized trace equivalence; "
                             "'all' enables everything)")
    fuzz_p.set_defaults(func=_cmd_fuzz)

    verify_p = sub.add_parser(
        "verify", help="co-simulate one ISAX: CoreDSL interpreter vs "
                       "generated RTL on random stimulus"
    )
    verify_p.add_argument("target",
                          help="benchmark ISAX name or .core_desc file")
    verify_p.add_argument("--core", default="VexRiscv", metavar="CORE",
                          help="host core: " + ", ".join(ALL_CORES))
    verify_p.add_argument("--trials", type=int, default=25)
    verify_p.add_argument("--cosim-seed", type=int, default=0,
                          help="RNG seed for the stimulus (printed in the "
                               "report line for reproducibility)")
    verify_p.add_argument("--vcd-dir", default=None,
                          help="dump a VCD waveform per failing trial here")
    verify_p.add_argument("--sim-engine", default="auto",
                          choices=SIM_ENGINES,
                          help="RTL simulation engine (auto = compiled "
                               "with interpreter fallback; batched = "
                               "numpy lane-per-trial)")
    verify_p.set_defaults(func=_cmd_verify)

    datasheet_p = sub.add_parser(
        "datasheet", help="print a core's virtual datasheet (YAML)"
    )
    datasheet_p.add_argument("core", choices=CORES)
    datasheet_p.set_defaults(func=_cmd_datasheet)

    isaxes_p = sub.add_parser(
        "isaxes", help="list the Table 3 benchmark ISAXes / print a source"
    )
    isaxes_p.add_argument("name", nargs="?", choices=sorted(ALL_ISAXES))
    isaxes_p.set_defaults(func=_cmd_isaxes)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        func=_cmd_table1)
    sub.add_parser("table3", help="print Table 3").set_defaults(
        func=_cmd_table3)
    table4_p = sub.add_parser("table4", help="regenerate Table 4")
    table4_p.add_argument("--cores", nargs="+", default=list(CORES),
                          choices=CORES)
    table4_p.add_argument("--no-paper", action="store_true",
                          help="omit the paper's reference numbers")
    table4_p.set_defaults(func=_cmd_table4)

    simulate_p = sub.add_parser(
        "simulate", help="assemble and run a program on a core timing model"
    )
    simulate_p.add_argument("file", help="assembly source file")
    simulate_p.add_argument("--core", default="VexRiscv", choices=CORES)
    simulate_p.add_argument("--isax", action="append", default=[],
                            choices=sorted(ALL_ISAXES),
                            help="integrate a benchmark ISAX (repeatable)")
    simulate_p.add_argument("--max-instructions", type=int,
                            default=1_000_000)
    simulate_p.set_defaults(func=_cmd_simulate)

    discover_p = sub.add_parser(
        "discover", help="mine candidate custom instructions from a loop "
                         "kernel and price them with the real toolchain"
    )
    discover_p.add_argument("--kernel", default="array_sum",
                            help="registered kernel fixture (see "
                                 "--list-kernels; default array_sum)")
    discover_p.add_argument("--list-kernels", action="store_true",
                            help="list registered kernels and exit")
    discover_p.add_argument("--param", action="append", default=[],
                            metavar="NAME=VALUE",
                            help="kernel parameter, e.g. n=64 "
                                 "(repeatable)")
    discover_p.add_argument("--core", default="VexRiscv",
                            choices=ALL_CORES, metavar="CORE",
                            help="host core (default VexRiscv)")
    discover_p.add_argument("--budget", type=int, default=24,
                            help="max candidate variants to price "
                                 "(default 24)")
    discover_p.add_argument("--trials", type=int, default=5,
                            help="cosim trials per candidate (default 5)")
    discover_p.add_argument("--cosim-seed", type=int, default=0,
                            help="RNG seed for the cosim gate")
    discover_p.add_argument("--max-mem", type=int, default=1,
                            help="memory ops per candidate (SCAIE-V "
                                 "allows one RdMem; default 1)")
    discover_p.add_argument("--no-fold", action="store_true",
                            help="skip the zero-overhead-loop variants")
    discover_p.add_argument("--no-state", action="store_true",
                            help="disable custom-state promotion of "
                                 "loop carries")
    discover_p.add_argument("--workers", type=int, default=1,
                            help="pricing worker processes (<=1: "
                                 "in-process serial)")
    discover_p.add_argument("--cache-dir",
                            default=str(_default_cache_dir()),
                            help="artifact cache for priced candidates")
    discover_p.add_argument("--server", default=None, metavar="URL",
                            help="price candidates through a running "
                                 "compile server instead")
    discover_p.add_argument("--priority", default="batch",
                            choices=("interactive", "batch", "background"),
                            help="server queue priority (with --server)")
    discover_p.add_argument("-o", "--out", default="build/discover",
                            help="report + winning .core_desc directory "
                                 "(default build/discover)")
    discover_p.set_defaults(func=_cmd_discover)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (CoreDSLError, ScheduleError, FileNotFoundError, KeyError) as err:
        message = err.args[0] if isinstance(err, KeyError) and err.args \
            else err
        print(f"error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
