"""Command-line interface for the Longnail reproduction.

Usage (``python -m repro ...`` or the ``repro-longnail`` entry point):

    repro-longnail compile my_isax.core_desc --core VexRiscv -o build/
    repro-longnail datasheet ORCA
    repro-longnail isaxes [name]
    repro-longnail table1 | table3 | table4
    repro-longnail simulate prog.s --isax zol --isax autoinc --core VexRiscv

``compile`` runs the full flow — CoreDSL in, SystemVerilog and the SCAIE-V
configuration file out — exactly like the paper's Figure 9 tool invocation.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.hls.longnail import compile_isax
from repro.isaxes import ALL_ISAXES
from repro.scaiev.cores import CORES, core_datasheet
from repro.utils.diagnostics import CoreDSLError


def _cmd_compile(args: argparse.Namespace) -> int:
    source = pathlib.Path(args.file).read_text(encoding="utf-8")
    artifact = compile_isax(
        source, core=args.core, top=args.top, engine=args.engine,
        cycle_time_ns=args.cycle_time,
    )
    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    sv_path = out_dir / f"{artifact.name}.sv"
    cfg_path = out_dir / f"{artifact.name}.scaiev.yaml"
    sv_path.write_text(artifact.verilog, encoding="utf-8")
    cfg_path.write_text(artifact.config_yaml, encoding="utf-8")

    print(f"ISAX '{artifact.name}' compiled for {artifact.core_name} "
          f"({artifact.datasheet.cycle_time_ns:.2f} ns cycle)")
    for name, functionality in artifact.functionalities.items():
        print(f"  {functionality.kind:<12} {name:<16} "
              f"mode={functionality.mode.value:<16} "
              f"span={functionality.schedule.makespan}")
    print(f"wrote {sv_path}")
    print(f"wrote {cfg_path}")
    return 0


def _cmd_datasheet(args: argparse.Namespace) -> int:
    print(core_datasheet(args.core).to_yaml(), end="")
    return 0


def _cmd_isaxes(args: argparse.Namespace) -> int:
    if args.name:
        print(ALL_ISAXES[args.name])
        return 0
    for name in ALL_ISAXES:
        print(name)
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.eval.tables import render_table1

    print(render_table1())
    return 0


def _cmd_table3(_args: argparse.Namespace) -> int:
    from repro.eval.tables import render_table3

    print(render_table3())
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.eval.asic import run_table4
    from repro.eval.tables import render_table4

    table = run_table4(cores=args.cores)
    print(render_table4(table, include_paper=not args.no_paper,
                        cores=args.cores))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.riscv.assembler import assemble
    from repro.sim.riscv.core_model import CoreTimingModel

    artifacts = [compile_isax(ALL_ISAXES[name], args.core)
                 for name in args.isax]
    program = pathlib.Path(args.file).read_text(encoding="utf-8")
    model = CoreTimingModel(core_datasheet(args.core), artifacts=artifacts)
    model.load_program(assemble(program, isaxes=[a.isa for a in artifacts]))
    report = model.run(max_instructions=args.max_instructions)
    print(f"core:        {args.core}"
          + (f" + {'+'.join(args.isax)}" if args.isax else ""))
    print(f"cycles:      {report.cycles}")
    print(f"instret:     {report.instret}")
    print(f"CPI:         {report.cpi:.2f}")
    print(f"stalls:      {report.stall_cycles}")
    for index in range(1, 32):
        value = report.state.read_x(index)
        if value:
            print(f"  x{index:<3} = {value:#010x}")
    for name, values in report.state.custom.items():
        shown = values[0] if len(values) == 1 else values
        print(f"  {name} = {shown if isinstance(shown, int) else shown}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-longnail",
        description="Longnail/CoreDSL/SCAIE-V reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser(
        "compile", help="compile a CoreDSL file to SystemVerilog + config"
    )
    compile_p.add_argument("file", help="CoreDSL source file (.core_desc)")
    compile_p.add_argument("--core", default="VexRiscv", choices=CORES)
    compile_p.add_argument("--top", default=None,
                           help="InstructionSet/Core to elaborate")
    compile_p.add_argument("--engine", default="auto",
                           choices=("auto", "milp", "asap"),
                           help="scheduler engine")
    compile_p.add_argument("--cycle-time", type=float, default=None,
                           help="target cycle time in ns (default: the "
                                "core's f_max)")
    compile_p.add_argument("-o", "--output", default=".",
                           help="output directory")
    compile_p.set_defaults(func=_cmd_compile)

    datasheet_p = sub.add_parser(
        "datasheet", help="print a core's virtual datasheet (YAML)"
    )
    datasheet_p.add_argument("core", choices=CORES)
    datasheet_p.set_defaults(func=_cmd_datasheet)

    isaxes_p = sub.add_parser(
        "isaxes", help="list the Table 3 benchmark ISAXes / print a source"
    )
    isaxes_p.add_argument("name", nargs="?", choices=sorted(ALL_ISAXES))
    isaxes_p.set_defaults(func=_cmd_isaxes)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        func=_cmd_table1)
    sub.add_parser("table3", help="print Table 3").set_defaults(
        func=_cmd_table3)
    table4_p = sub.add_parser("table4", help="regenerate Table 4")
    table4_p.add_argument("--cores", nargs="+", default=list(CORES),
                          choices=CORES)
    table4_p.add_argument("--no-paper", action="store_true",
                          help="omit the paper's reference numbers")
    table4_p.set_defaults(func=_cmd_table4)

    simulate_p = sub.add_parser(
        "simulate", help="assemble and run a program on a core timing model"
    )
    simulate_p.add_argument("file", help="assembly source file")
    simulate_p.add_argument("--core", default="VexRiscv", choices=CORES)
    simulate_p.add_argument("--isax", action="append", default=[],
                            choices=sorted(ALL_ISAXES),
                            help="integrate a benchmark ISAX (repeatable)")
    simulate_p.add_argument("--max-instructions", type=int,
                            default=1_000_000)
    simulate_p.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (CoreDSLError, FileNotFoundError, KeyError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
