"""HTTP/JSON front-end for the compile server (stdlib asyncio streams).

A deliberately small HTTP/1.1 implementation — request-line + headers +
``Content-Length`` bodies in, JSON documents out, chunked transfer for the
NDJSON event stream — so the server has **zero dependencies beyond the
standard library** and one process serves thousands of concurrent
keep-alive connections on a single event loop.

API surface (see ``docs/compile_server.md`` for the full reference):

========  =========================  ==========================================
method    path                       semantics
========  =========================  ==========================================
POST      /v1/compile                submit one ISAX compile (coalesced,
                                     cached, prioritised); ``wait=1`` blocks
POST      /v1/tasks                  submit a generic allow-listed runner task
                                     (the DSE sweep uses this)
POST      /v1/discover               mine + price candidate ISAXes from a
                                     registered kernel (one search task)
GET       /v1/jobs/{id}              job status (``result=1`` inlines it)
GET       /v1/jobs/{id}/events       NDJSON trace stream until terminal
GET       /v1/metrics                batch-metrics JSON + ``server`` section
GET       /v1/healthz                liveness / drain state
POST      /v1/drain                  begin graceful drain (``wait=1`` blocks)
========  =========================  ==========================================

Back-pressure maps to status codes: a full queue answers **429** with a
``retry_after_s`` hint, a draining server answers **503**.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import re
import urllib.parse
from typing import Any, Dict, Optional, Tuple

from repro.server.core import (
    COMPILE_RUNNER,
    CompileServer,
    ServerRejection,
    TaskSpec,
    UnknownJobError,
)
from repro.opt.pipeline import PASS_ORDER
from repro.service.jobs import CompileJob
from repro.sim.compile import SIM_ENGINES
from repro.utils.diagnostics import CoreDSLError

#: Runner references clients may name on POST /v1/tasks.  Everything else
#: is refused with 403 — the server executes code *it* ships, not code the
#: request names.
DEFAULT_ALLOWED_RUNNERS = frozenset({
    COMPILE_RUNNER,
    "repro.eval.dse:_evaluate_candidate",
    "repro.discover.pricing:run_pricing_payload",
    "repro.discover.pricing:run_discover_payload",
})

_MAX_BODY_BYTES = 16 * 1024 * 1024

#: Client-supplied cache keys must look like content digests.  Every key
#: the shipped clients send is a sha256 hexdigest; anything looser would
#: flow into the on-disk cache's path construction.
_KEY_RE = re.compile(r"[0-9a-f]{16,128}")


class HttpError(Exception):
    """Maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": message}
        self.payload.update(extra)


@dataclasses.dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            doc = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as err:
            raise HttpError(400, f"request body is not valid JSON: {err}")
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a JSON object")
        return doc

    def flag(self, name: str, body: Optional[dict] = None) -> bool:
        if name in self.query:
            return self.query[name] not in ("0", "false", "")
        if body is not None:
            return bool(body.get(name))
        return False


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line or line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY_BYTES:
        raise HttpError(400, f"unacceptable content-length {length}")
    body = await reader.readexactly(length) if length else b""
    parsed = urllib.parse.urlsplit(target)
    query = {key: values[-1] for key, values
             in urllib.parse.parse_qs(parsed.query).items()}
    return Request(method=method.upper(), path=parsed.path, query=query,
                   headers=headers, body=body)


def _response_bytes(status: int, doc: Any,
                    extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    body = json.dumps(doc, sort_keys=False).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


class CompileServerApp:
    """Routes HTTP requests into a :class:`CompileServer` core."""

    def __init__(self, core: CompileServer,
                 allowed_runners: frozenset = DEFAULT_ALLOWED_RUNNERS) -> None:
        self.core = core
        self.allowed_runners = allowed_runners
        self._server: Optional[asyncio.AbstractServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        await self.core.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self, drain: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.core.close(drain=drain)

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except HttpError as err:
                    writer.write(_response_bytes(err.status, err.payload))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                await writer.drain()
                wants_close = request.headers.get("connection", "") \
                    .lower() == "close"
                if not keep_alive or wants_close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns False when the connection must close
        (only after a streamed response that was cut short)."""
        try:
            method, path = request.method, request.path
            if path == "/v1/healthz" and method == "GET":
                writer.write(_response_bytes(200, self.core.healthz()))
            elif path == "/v1/metrics" and method == "GET":
                writer.write(_response_bytes(200, self.core.metrics()))
            elif path == "/v1/compile" and method == "POST":
                await self._route_compile(request, writer)
            elif path == "/v1/tasks" and method == "POST":
                await self._route_task(request, writer)
            elif path == "/v1/discover" and method == "POST":
                await self._route_discover(request, writer)
            elif path == "/v1/drain" and method == "POST":
                await self._route_drain(request, writer)
            elif path.startswith("/v1/jobs/") and method == "GET":
                return await self._route_jobs(request, writer)
            elif path in ("/v1/healthz", "/v1/metrics", "/v1/compile",
                          "/v1/tasks", "/v1/discover", "/v1/drain") \
                    or path.startswith("/v1/jobs/"):
                raise HttpError(405, f"{method} not allowed on {path}")
            else:
                raise HttpError(404, f"no route for {path}")
        except HttpError as err:
            writer.write(_response_bytes(err.status, err.payload))
        except ServerRejection as err:
            payload: Dict[str, Any] = {"error": str(err)}
            retry_after = getattr(err, "retry_after_s", None)
            headers = None
            if retry_after is not None:
                payload["retry_after_s"] = retry_after
                headers = {"Retry-After": f"{retry_after:g}"}
            writer.write(_response_bytes(err.status, payload, headers))
        except Exception as err:          # noqa: BLE001 — last-ditch 500
            writer.write(_response_bytes(
                500, {"error": f"{type(err).__name__}: {err}"}))
        return True

    # -- routes --------------------------------------------------------------
    async def _submit_and_respond(self, request: Request, body: dict,
                                  spec: TaskSpec,
                                  writer: asyncio.StreamWriter) -> None:
        priority = body.get("priority", "batch")
        try:
            record = await self.core.submit(spec, priority=priority)
        except ValueError as err:
            raise HttpError(400, str(err))
        # An explicit "result" wins; otherwise waited answers include the
        # artifacts (the natural synchronous-RPC reading) and 202s don't.
        if "result" in request.query or "result" in body:
            include_result = request.flag("result", body)
        else:
            include_result = request.flag("wait", body)
        if request.flag("wait", body):
            await record.wait()
            writer.write(_response_bytes(
                200, record.to_dict(include_result=include_result)))
        else:
            status = 200 if record.done else 202
            writer.write(_response_bytes(
                status, record.to_dict(include_result=include_result)))

    async def _route_compile(self, request: Request,
                             writer: asyncio.StreamWriter) -> None:
        body = request.json()
        source = body.get("source")
        isax = body.get("isax")
        if source is None:
            if not isax:
                raise HttpError(400, "need 'source' or a built-in 'isax'")
            from repro.isaxes import ALL_ISAXES
            if isax not in ALL_ISAXES:
                raise HttpError(
                    400, f"unknown ISAX {isax!r}; available: "
                    + ", ".join(sorted(ALL_ISAXES)))
            source = ALL_ISAXES[isax]
        cycle_time = body.get("cycle_time_ns")
        if cycle_time is not None:
            try:
                cycle_time = float(cycle_time)
            except (TypeError, ValueError):
                raise HttpError(
                    400, f"'cycle_time_ns' must be a number, "
                    f"got {cycle_time!r}")
        opt_level = body.get("opt_level", 0)
        if isinstance(opt_level, bool) or not isinstance(opt_level, int) \
                or opt_level not in (0, 1, 2):
            raise HttpError(
                400, f"'opt_level' must be 0, 1 or 2, got {opt_level!r}")
        opt_passes = body.get("opt_passes") or []
        if not isinstance(opt_passes, list) \
                or not all(isinstance(p, str) for p in opt_passes):
            raise HttpError(400, "'opt_passes' must be a list of pass names")
        if not all(p.lstrip("-") in PASS_ORDER for p in opt_passes):
            raise HttpError(
                400, "'opt_passes' entries must be optimizer pass names "
                "(optionally '-'-prefixed to disable): "
                + ", ".join(PASS_ORDER))
        job = CompileJob(
            isax=isax or "inline",
            source=source,
            core=body.get("core", "" if body.get("datasheet_yaml")
                          else "VexRiscv"),
            engine=body.get("engine", "auto"),
            cycle_time_ns=cycle_time,
            top=body.get("top"),
            datasheet_yaml=body.get("datasheet_yaml"),
            opt_level=opt_level,
            opt_passes=tuple(opt_passes),
        )
        try:
            key = job.cache_key()       # also validates the core name
        except (CoreDSLError, KeyError) as err:
            message = err.args[0] if err.args else str(err)
            raise HttpError(400, str(message))
        spec = TaskSpec(runner=COMPILE_RUNNER, payload=job.to_payload(),
                        key=key, label=job.job_id)
        await self._submit_and_respond(request, body, spec, writer)

    async def _route_task(self, request: Request,
                          writer: asyncio.StreamWriter) -> None:
        body = request.json()
        runner = body.get("runner")
        if not runner:
            raise HttpError(400, "need a 'runner' reference")
        if runner not in self.allowed_runners:
            raise HttpError(403, f"runner {runner!r} is not allow-listed")
        payload = body.get("payload")
        if not isinstance(payload, dict):
            raise HttpError(400, "'payload' must be a JSON object")
        engine = payload.get("sim_engine")
        if engine is not None and engine not in SIM_ENGINES:
            # Reject unknown engines at the door: a typo'd engine should
            # die as a 400, not as a failed (and cached) job.
            raise HttpError(
                400, f"unknown sim_engine {engine!r}; expected one of "
                + ", ".join(SIM_ENGINES))
        key = body.get("key")
        if key is not None and (not isinstance(key, str)
                                or not _KEY_RE.fullmatch(key)):
            raise HttpError(
                400, "'key' must be a lowercase hex content digest "
                "(16-128 chars) or omitted")
        spec = TaskSpec(runner=runner, payload=payload,
                        key=key, label=body.get("label", ""))
        await self._submit_and_respond(request, body, spec, writer)

    async def _route_discover(self, request: Request,
                              writer: asyncio.StreamWriter) -> None:
        """One whole ISAX discovery search as a single server task.

        The body is a :class:`repro.discover.search.DiscoveryConfig`
        payload (only ``kernel`` is required).  Validation happens here so
        a malformed search dies with a 400 instead of a failed job, and
        the canonical payload doubles as the cache key — identical
        searches coalesce and warm re-runs are cache hits.
        """
        from repro.discover.pricing import DISCOVER_SEARCH_RUNNER
        from repro.discover.search import DiscoveryConfig
        from repro.service.jobs import digest

        body = request.json()
        try:
            config = DiscoveryConfig.from_payload(body)
        except (TypeError, ValueError) as err:
            raise HttpError(400, str(err))
        payload = config.to_payload()
        key = digest("discover-search", json.dumps(payload, sort_keys=True))
        spec = TaskSpec(runner=DISCOVER_SEARCH_RUNNER, payload=payload,
                        key=key,
                        label=f"discover:{config.kernel}@{config.core}")
        await self._submit_and_respond(request, body, spec, writer)

    async def _route_drain(self, request: Request,
                           writer: asyncio.StreamWriter) -> None:
        if request.flag("wait"):
            await self.core.drain()
        else:
            self.core.begin_drain()
        writer.write(_response_bytes(200, self.core.healthz()))

    async def _route_jobs(self, request: Request,
                          writer: asyncio.StreamWriter) -> bool:
        parts = request.path.split("/")      # '', 'v1', 'jobs', id[, events]
        try:
            record = self.core.job(parts[3])
        except UnknownJobError:
            raise HttpError(404, f"unknown job {parts[3]!r}")
        if len(parts) == 4:
            writer.write(_response_bytes(
                200, record.to_dict(
                    include_result=request.flag("result"))))
            return True
        if len(parts) == 5 and parts[4] == "events":
            return await self._stream_events(record, writer)
        raise HttpError(404, f"no route for {request.path}")

    async def _stream_events(self, record: Any,
                             writer: asyncio.StreamWriter) -> bool:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        cursor = 0
        try:
            while True:
                while cursor < len(record.events):
                    line = json.dumps(record.events[cursor],
                                      sort_keys=False).encode("utf-8") + b"\n"
                    writer.write(f"{len(line):x}\r\n".encode("latin-1")
                                 + line + b"\r\n")
                    cursor += 1
                await writer.drain()
                if record.done and cursor >= len(record.events):
                    break
                await record.wait_event(cursor)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False


__all__ = [
    "CompileServerApp",
    "DEFAULT_ALLOWED_RUNNERS",
    "HttpError",
    "Request",
]
