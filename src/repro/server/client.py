"""Async client for the compile server (stdlib asyncio streams only).

Mirror image of :mod:`repro.server.http`: every call opens one HTTP/1.1
connection (``Connection: close``), so thousands of client coroutines can
talk to one server concurrently without shared connection state — the
load-generator benchmark drives exactly this path.  2xx answers return the
decoded JSON document; anything else raises
:class:`CompileServerError` carrying the HTTP status and error payload
(``err.status == 429`` with ``err.retry_after_s`` is the back-pressure
signal callers should spread out on).

Usage::

    client = CompileServerClient("http://127.0.0.1:8080")
    job = await client.compile(isax="dotprod", core="VexRiscv",
                               priority="interactive")
    print(job["state"], job["result"]["verilog"][:40])
    async for event in client.events(job["job_id"]):
        print(event)
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from typing import Any, AsyncIterator, Dict, Optional, Sequence, Tuple


class CompileServerError(Exception):
    """Non-2xx answer from the server."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error", f"HTTP {status}"))
        self.status = status
        self.payload = payload

    @property
    def retry_after_s(self) -> Optional[float]:
        value = self.payload.get("retry_after_s")
        return float(value) if value is not None else None


class CompileServerClient:
    """Thin async wrapper over the server's JSON API."""

    def __init__(self, url: str, timeout_s: float = 120.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.timeout_s = timeout_s

    # -- raw HTTP ------------------------------------------------------------
    async def _open(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.open_connection(self.host, self.port)

    def _head(self, method: str, path: str, body: bytes) -> bytes:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Connection: close",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader
                         ) -> Tuple[int, Dict[str, str]]:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _request(self, method: str, path: str,
                       body: Optional[dict] = None) -> dict:
        payload = json.dumps(body).encode("utf-8") if body is not None \
            else b""
        reader, writer = await self._open()
        try:
            writer.write(self._head(method, path, payload) + payload)
            await writer.drain()
            status, headers = await asyncio.wait_for(
                self._read_head(reader), timeout=self.timeout_s)
            length = headers.get("content-length")
            if length is not None:
                raw = await asyncio.wait_for(
                    reader.readexactly(int(length)), timeout=self.timeout_s)
            else:
                raw = await asyncio.wait_for(
                    reader.read(), timeout=self.timeout_s)
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if status >= 300:
            raise CompileServerError(
                status, doc if isinstance(doc, dict) else {"error": str(doc)})
        return doc

    # -- API -----------------------------------------------------------------
    async def healthz(self) -> dict:
        return await self._request("GET", "/v1/healthz")

    async def metrics(self) -> dict:
        return await self._request("GET", "/v1/metrics")

    async def drain(self, wait: bool = False) -> dict:
        path = "/v1/drain" + ("?wait=1" if wait else "")
        return await self._request("POST", path)

    async def compile(self, *, isax: Optional[str] = None,
                      source: Optional[str] = None,
                      core: str = "VexRiscv",
                      engine: str = "auto",
                      cycle_time_ns: Optional[float] = None,
                      top: Optional[str] = None,
                      datasheet_yaml: Optional[str] = None,
                      priority: str = "batch",
                      opt_level: int = 0,
                      opt_passes: Optional[Sequence[str]] = None,
                      wait: bool = True,
                      include_result: bool = True) -> dict:
        body: Dict[str, Any] = {"priority": priority, "wait": wait,
                                "result": include_result}
        if opt_level:
            body["opt_level"] = opt_level
        if opt_passes:
            body["opt_passes"] = list(opt_passes)
        if isax is not None:
            body["isax"] = isax
        if source is not None:
            body["source"] = source
        if datasheet_yaml is not None:
            body["datasheet_yaml"] = datasheet_yaml
        else:
            body["core"] = core
        if engine != "auto":
            body["engine"] = engine
        if cycle_time_ns is not None:
            body["cycle_time_ns"] = cycle_time_ns
        if top is not None:
            body["top"] = top
        return await self._request("POST", "/v1/compile", body)

    async def submit_task(self, runner: str, payload: dict,
                          key: Optional[str] = None, label: str = "",
                          priority: str = "batch", wait: bool = True,
                          include_result: bool = True) -> dict:
        body = {
            "runner": runner, "payload": payload, "key": key,
            "label": label, "priority": priority, "wait": wait,
            "result": include_result,
        }
        return await self._request("POST", "/v1/tasks", body)

    async def discover(self, kernel: str, priority: str = "batch",
                       wait: bool = True, include_result: bool = True,
                       **config: object) -> dict:
        """Run one ISAX discovery search on the server.

        ``config`` takes any :class:`repro.discover.search.DiscoveryConfig`
        field (``params``, ``core``, ``budget``, ``trials``, ...)."""
        body: dict = {"kernel": kernel, "priority": priority,
                      "wait": wait, "result": include_result}
        body.update(config)
        return await self._request("POST", "/v1/discover", body)

    async def job(self, job_id: str, include_result: bool = False) -> dict:
        path = f"/v1/jobs/{job_id}" + ("?result=1" if include_result else "")
        return await self._request("GET", path)

    async def events(self, job_id: str) -> AsyncIterator[dict]:
        """Stream the job's NDJSON trace until it reaches a terminal
        state.  Yields one dict per event."""
        reader, writer = await self._open()
        try:
            writer.write(self._head("GET", f"/v1/jobs/{job_id}/events", b""))
            await writer.drain()
            status, headers = await asyncio.wait_for(
                self._read_head(reader), timeout=self.timeout_s)
            if status >= 300:
                raw = b""
                length = headers.get("content-length")
                if length:
                    raw = await reader.readexactly(int(length))
                doc = json.loads(raw.decode("utf-8")) if raw else {}
                raise CompileServerError(status, doc)
            buffer = b""
            async for chunk in self._iter_chunks(reader):
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _iter_chunks(reader: asyncio.StreamReader
                           ) -> AsyncIterator[bytes]:
        while True:
            size_line = await reader.readline()
            size = int(size_line.strip() or b"0", 16)
            if size == 0:
                await reader.readline()          # trailing CRLF
                return
            chunk = await reader.readexactly(size)
            await reader.readexactly(2)          # chunk CRLF
            yield chunk

    async def wait_ready(self, timeout_s: float = 15.0,
                         interval_s: float = 0.1) -> dict:
        """Poll ``/v1/healthz`` until the server answers (or raise)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        last_error: Optional[Exception] = None
        while loop.time() < deadline:
            try:
                return await self.healthz()
            except (ConnectionError, OSError, asyncio.TimeoutError) as err:
                last_error = err
                await asyncio.sleep(interval_s)
        raise ConnectionError(
            f"server at {self.host}:{self.port} not ready after "
            f"{timeout_s:g}s: {last_error}")


__all__ = ["CompileServerClient", "CompileServerError"]
