"""Long-lived async compile server (scaling the batch service to traffic).

The batch CLI amortises one grid; this package amortises *everything* — a
persistent asyncio process that keeps the schedule cache, the memoized
datasheets and a sharded artifact cache warm across requests, and fronts
them with an HTTP/JSON API:

* :mod:`repro.server.core` — scheduling core: priority queue with bounded
  depth and 429-style back-pressure, content-digest request coalescing,
  warm memory+disk cache tiers, retry with deterministic backoff, graceful
  drain, per-request tracing,
* :mod:`repro.server.http` — stdlib HTTP/1.1 front-end
  (``POST /v1/compile``, ``POST /v1/tasks``, ``GET /v1/jobs/{id}`` +
  NDJSON ``/events`` stream, ``/v1/metrics``, ``/v1/healthz``,
  ``POST /v1/drain``),
* :mod:`repro.server.client` — async client used by the DSE sweep and the
  load-generator benchmark.

CLI entry point: ``repro-longnail serve``.  Docs:
``docs/compile_server.md``.
"""

from repro.server.client import CompileServerClient, CompileServerError
from repro.server.core import (
    PRIORITIES,
    CompileServer,
    DrainingError,
    JobRecord,
    QueueFullError,
    ServerCounters,
    ServerRejection,
    UnknownJobError,
)
from repro.server.http import (
    DEFAULT_ALLOWED_RUNNERS,
    CompileServerApp,
    HttpError,
)

__all__ = [
    "CompileServer",
    "CompileServerApp",
    "CompileServerClient",
    "CompileServerError",
    "DEFAULT_ALLOWED_RUNNERS",
    "DrainingError",
    "HttpError",
    "JobRecord",
    "PRIORITIES",
    "QueueFullError",
    "ServerCounters",
    "ServerRejection",
    "UnknownJobError",
]
