"""Scheduling core of the long-lived compile server.

This is the transport-agnostic layer between the HTTP front-end
(:mod:`repro.server.http`) and the batch machinery in
:mod:`repro.service`: a single asyncio event loop owns every queue and
counter, worker coroutines fan job execution out to a persistent thread or
process pool, and results flow back through the same content-addressed
caches the ``batch`` CLI uses — so a warm server answers in memory-lookup
time and its artifacts are byte-identical to a cold CLI run.

The pieces, in request order:

* **warm cache tier** — an in-process LRU of recent records in front of an
  optional on-disk cache (typically
  :class:`repro.service.cache.ShardedArtifactCache`); a hit completes the
  job at submit time without touching the queue,
* **request coalescing** — a submission whose content digest matches an
  in-flight job attaches to it as a *follower* and shares its single
  execution (N identical concurrent requests -> 1 compile, N results),
* **priority queue with back-pressure** — three levels
  (``interactive`` > ``batch`` > ``background``), FIFO within a level,
  bounded depth; a full queue rejects with :class:`QueueFullError`
  (HTTP 429 upstream) instead of buffering unboundedly,
* **retry with deterministic backoff** — failed executions retry after
  :func:`repro.service.executor.retry_backoff_s`,
* **graceful drain** — :meth:`CompileServer.drain` stops intake
  (:class:`DrainingError`, HTTP 503 upstream) and waits for every accepted
  job to reach a terminal state; SIGTERM in the CLI triggers it,
* **tracing** — every job carries an event log (submitted / coalesced /
  started / retry / finished with queue-wait and phase timings) that the
  HTTP layer streams as NDJSON, and server-wide counters fold into the
  :class:`repro.service.metrics.BatchMetrics` JSON under ``"server"``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.service.executor import (
    COMPILE_RUNNER,
    TaskSpec,
    _pool_call,
    retry_backoff_s,
)
from repro.service.metrics import BatchMetrics, JobMetrics

#: Priority levels in scheduling order (lower rank runs first).
PRIORITIES: Dict[str, int] = {"interactive": 0, "batch": 1, "background": 2}

#: Terminal job states.
TERMINAL_STATES = ("ok", "failed")


class ServerRejection(Exception):
    """Base class for submissions the server refuses to accept."""

    status = 503


class QueueFullError(ServerRejection):
    """Bounded queue is at capacity — explicit back-pressure (HTTP 429)."""

    status = 429

    def __init__(self, depth: int, retry_after_s: float) -> None:
        super().__init__(
            f"queue full ({depth} jobs queued); retry in {retry_after_s:g}s"
        )
        self.depth = depth
        self.retry_after_s = retry_after_s


class DrainingError(ServerRejection):
    """Server is draining and no longer accepts work (HTTP 503)."""

    status = 503

    def __init__(self) -> None:
        super().__init__("server is draining; no new jobs accepted")


class UnknownJobError(KeyError):
    """No record for the requested job id (expired or never existed)."""

    def __init__(self, job_id: str) -> None:
        super().__init__(job_id)
        self.job_id = job_id


@dataclasses.dataclass
class ServerCounters:
    """Monotonic accounting for one server lifetime."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    executions: int = 0            # backend runner invocations (incl. retries)
    coalesced: int = 0             # followers attached to an in-flight job
    cache_hits_memory: int = 0
    cache_hits_disk: int = 0
    cache_misses: int = 0
    rejected_queue_full: int = 0
    rejected_draining: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class JobRecord:
    """One accepted request: state, timings, trace events, result."""

    def __init__(self, job_id: str, spec: TaskSpec, priority: str) -> None:
        self.job_id = job_id
        self.spec = spec
        self.priority = priority
        self.state = "queued"
        self.cached: Optional[str] = None       # None | "memory" | "disk"
        self.coalesced_into: Optional[str] = None
        self.followers: List["JobRecord"] = []
        self.attempts = 0
        self.backoff_seconds = 0.0
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        # The only wall-clock read in the record: every trace timestamp
        # is this anchor plus a monotonic delta, so the event stream and
        # the latency fields share one clock and can never run backwards
        # under wall-clock steps (NTP slew, manual adjustment).
        self.submitted_at = time.time()
        self.queue_wait_s: Optional[float] = None
        self.run_s: Optional[float] = None
        self.total_s: Optional[float] = None
        self.events: List[dict] = []
        self._submit_mono = time.monotonic()
        self._start_mono: Optional[float] = None
        self._waiters: List["asyncio.Future[None]"] = []

    # -- lifecycle -----------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def add_event(self, event: str, **fields: Any) -> None:
        ts = self.submitted_at + (time.monotonic() - self._submit_mono)
        entry = {"ts": round(ts, 6), "event": event}
        entry.update(fields)
        self.events.append(entry)
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def mark_started(self) -> None:
        self.state = "running"
        self._start_mono = time.monotonic()
        self.queue_wait_s = self._start_mono - self._submit_mono
        self.add_event("started", queue_wait_s=round(self.queue_wait_s, 6))

    def finalize(self, state: str, result: Optional[dict] = None,
                 error: Optional[str] = None) -> None:
        self.state = state
        self.result = result
        self.error = error
        now = time.monotonic()
        self.total_s = now - self._submit_mono
        if self._start_mono is not None:
            self.run_s = now - self._start_mono
        fields: Dict[str, Any] = {
            "state": state, "total_s": round(self.total_s, 6),
        }
        if isinstance(result, dict) and "phases" in result:
            fields["phases"] = result["phases"]
        if error:
            fields["error"] = error.splitlines()[0]
        self.add_event("finished", **fields)

    async def wait(self) -> "JobRecord":
        """Block until the job reaches a terminal state."""
        while not self.done:
            await self.wait_event(len(self.events))
        return self

    async def wait_event(self, cursor: int) -> int:
        """Block until there are more than ``cursor`` events (or terminal).

        Returns the new event count; used by the NDJSON streamer."""
        if len(self.events) > cursor or self.done:
            return len(self.events)
        waiter: "asyncio.Future[None]" = \
            asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        await waiter
        return len(self.events)

    # -- presentation --------------------------------------------------------
    def to_dict(self, include_result: bool = False) -> dict:
        doc: Dict[str, Any] = {
            "job_id": self.job_id,
            "label": self.spec.label,
            "priority": self.priority,
            "state": self.state,
            "cached": self.cached,
            "coalesced": self.coalesced_into is not None,
            "coalesced_into": self.coalesced_into,
            "attempts": self.attempts,
            "backoff_seconds": round(self.backoff_seconds, 6),
            "submitted_at": round(self.submitted_at, 6),
            "queue_wait_s": (round(self.queue_wait_s, 6)
                             if self.queue_wait_s is not None else None),
            "run_s": (round(self.run_s, 6)
                      if self.run_s is not None else None),
            "total_s": (round(self.total_s, 6)
                        if self.total_s is not None else None),
            "error": self.error,
        }
        if include_result:
            doc["result"] = self.result
        return doc


def _percentiles(samples: List[float]) -> dict:
    """Nearest-rank percentile summary over latency samples (milliseconds)."""
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)
    pick = lambda q: ordered[min(len(ordered) - 1,    # noqa: E731
                                 int(q * len(ordered)))]
    return {
        "count": len(ordered),
        "p50_ms": round(pick(0.50) * 1000.0, 3),
        "p90_ms": round(pick(0.90) * 1000.0, 3),
        "p99_ms": round(pick(0.99) * 1000.0, 3),
        "max_ms": round(ordered[-1] * 1000.0, 3),
    }


class CompileServer:
    """The long-lived scheduling core.  Create, ``await start()``, submit
    :class:`repro.service.executor.TaskSpec` work, ``await close()``.

    ``backend`` picks the execution pool: ``"thread"`` (default; shares the
    interpreter, zero pickling cost — right for tests and modest loads) or
    ``"process"`` (true parallelism across cores for heavy traffic).
    ``"auto"`` chooses ``process`` when ``workers > 1``.
    """

    def __init__(self,
                 workers: int = 2,
                 backend: str = "thread",
                 max_queue_depth: int = 256,
                 retries: int = 1,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 30.0,
                 timeout_s: Optional[float] = None,
                 disk_cache: Optional[Any] = None,
                 memory_entries: int = 2048,
                 job_history: int = 4096,
                 metrics_window: int = 1024) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if backend == "auto":
            backend = "process" if workers > 1 else "thread"
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.workers = workers
        self.backend = backend
        self.max_queue_depth = max_queue_depth
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.timeout_s = timeout_s
        self.disk_cache = disk_cache
        self.memory_entries = memory_entries
        self.job_history = job_history
        self.counters = ServerCounters()

        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._jobs: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._inflight: Dict[str, str] = {}      # content digest -> job id
        self._queue: "asyncio.PriorityQueue[Tuple[int, int, str]]" = \
            asyncio.PriorityQueue()
        self._seq = 0
        self._job_seq = 0
        self._open = 0                           # accepted, not yet terminal
        self._idle_waiters: List["asyncio.Future[None]"] = []
        self._worker_tasks: List["asyncio.Task[None]"] = []
        self._pool: Optional[concurrent.futures.Executor] = None
        self._draining = False
        self._started = False
        self._start_mono = time.monotonic()
        self._latency: Deque[Tuple[str, float, float, bool]] = \
            deque(maxlen=8192)                   # (priority, total, wait, warm)
        self._recent_metrics: Deque[JobMetrics] = deque(maxlen=metrics_window)

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "CompileServer":
        if self._started:
            return self
        if self.backend == "process":
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers)
        else:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="compile-server")
        self._worker_tasks = [
            asyncio.get_running_loop().create_task(self._worker())
            for _ in range(self.workers)
        ]
        self._started = True
        self._start_mono = time.monotonic()
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._start_mono

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def open_jobs(self) -> int:
        return self._open

    def begin_drain(self) -> None:
        """Stop accepting work without waiting (see :meth:`drain`)."""
        self._draining = True

    async def drain(self) -> None:
        """Stop accepting work and wait until every accepted job is done."""
        self._draining = True
        while self._open:
            waiter: "asyncio.Future[None]" = \
                asyncio.get_running_loop().create_future()
            self._idle_waiters.append(waiter)
            await waiter

    async def close(self, drain: bool = True) -> None:
        """Shut down: optionally drain first, then stop workers and pool."""
        if drain and self._started:
            await self.drain()
        self._draining = True
        for _ in self._worker_tasks:
            # Sentinel rank -1 sorts ahead of every real job; by now the
            # queue is empty (drained) or abandoned (hard stop).
            self._queue.put_nowait((-1, self._next_seq(), ""))
        for task in self._worker_tasks:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):   # noqa: BLE001
                pass
        self._worker_tasks = []
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self._started = False

    # -- submission ----------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _new_record(self, spec: TaskSpec, priority: str) -> JobRecord:
        self._job_seq += 1
        record = JobRecord(f"j{self._job_seq:08d}", spec, priority)
        self._jobs[record.job_id] = record
        # Bound the history: drop oldest *terminal* records beyond budget.
        while len(self._jobs) > self.job_history:
            for job_id, old in self._jobs.items():
                if old.done:
                    del self._jobs[job_id]
                    break
            else:
                break
        return record

    async def submit(self, spec: TaskSpec,
                     priority: str = "batch") -> JobRecord:
        """Accept one task; returns its :class:`JobRecord` immediately.

        May raise :class:`DrainingError` or :class:`QueueFullError` — the
        *only* two refusals; an accepted job always reaches a terminal
        state, observable via :meth:`JobRecord.wait`.
        """
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; expected one of "
                + ", ".join(PRIORITIES))
        if self._draining:
            self.counters.rejected_draining += 1
            raise DrainingError()
        if not self._started:
            raise RuntimeError("server not started; call start() first")
        self.counters.submitted += 1
        record = self._new_record(spec, priority)
        record.add_event("submitted", priority=priority, label=spec.label)

        if spec.key:
            # Warm tier: memory, then disk.
            hit = self._memory_get(spec.key)
            if hit is not None:
                self.counters.cache_hits_memory += 1
                record.cached = "memory"
                record.finalize("ok", result=hit)
                self.counters.completed += 1
                self._note_latency(record)
                self._note_metrics(record)
                return record
            if self.disk_cache is not None:
                try:
                    disk_hit = self.disk_cache.get(spec.key)
                except ValueError:
                    # The cache refuses to address this key (malformed
                    # digest).  Reject the submission and leave no
                    # phantom queued record behind.
                    del self._jobs[record.job_id]
                    raise
                if disk_hit is not None:
                    self.counters.cache_hits_disk += 1
                    self._memory_put(spec.key, disk_hit)
                    record.cached = "disk"
                    record.finalize("ok", result=disk_hit)
                    self.counters.completed += 1
                    self._note_latency(record)
                    self._note_metrics(record)
                    return record
            self.counters.cache_misses += 1
            # Coalesce onto an identical in-flight job.
            primary_id = self._inflight.get(spec.key)
            if primary_id is not None:
                primary = self._jobs[primary_id]
                record.coalesced_into = primary_id
                primary.followers.append(record)
                self.counters.coalesced += 1
                self._open += 1
                record.add_event("coalesced", primary=primary_id)
                return record

        depth = self._queue.qsize()
        if depth >= self.max_queue_depth:
            self.counters.rejected_queue_full += 1
            # A rejected request leaves no job behind.
            del self._jobs[record.job_id]
            retry_after = round(
                max(0.1, 0.05 * depth / max(1, self.workers)), 3)
            raise QueueFullError(depth, retry_after)

        if spec.key:
            self._inflight[spec.key] = record.job_id
        self._open += 1
        self._queue.put_nowait(
            (PRIORITIES[priority], self._next_seq(), record.job_id))
        record.add_event("queued", depth=depth + 1)
        return record

    def job(self, job_id: str) -> JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    # -- execution -----------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            rank, _seq, job_id = await self._queue.get()
            try:
                if rank < 0:        # shutdown sentinel
                    return
                record = self._jobs.get(job_id)
                if record is None:
                    continue
                try:
                    await self._execute(record)
                except Exception as err:    # noqa: BLE001
                    # _execute reports job failures through finalize();
                    # anything escaping it would otherwise kill this
                    # worker and leave the job (and drain()) hanging.
                    self._fail_crashed(record, err)
            finally:
                self._queue.task_done()

    def _fail_crashed(self, record: JobRecord, err: BaseException) -> None:
        """Safety net for an exception escaping :meth:`_execute`: finalize
        the job and its followers so every waiter unblocks, the in-flight
        slot frees, and the worker stays alive."""
        message = f"internal error: {type(err).__name__}: {err}"
        if record.spec.key:
            self._inflight.pop(record.spec.key, None)
        followers, record.followers = record.followers, []
        for rec in (record, *followers):
            if not rec.done:
                rec.finalize("failed", error=message)
                self._settle(rec)

    async def _call_backend(self, spec: TaskSpec) -> dict:
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._pool, _pool_call, spec.runner, spec.payload)
        if self.timeout_s is not None:
            wrapped = await asyncio.wait_for(future, timeout=self.timeout_s)
        else:
            wrapped = await future
        return wrapped["value"]

    async def _execute(self, record: JobRecord) -> None:
        spec = record.spec
        record.mark_started()
        value: Optional[dict] = None
        error: Optional[str] = None
        while True:
            record.attempts += 1
            self.counters.executions += 1
            try:
                value = await self._call_backend(spec)
                error = None
                break
            except asyncio.TimeoutError:
                error = f"timed out after {self.timeout_s:g}s"
            except Exception as err:      # noqa: BLE001 — reported per job
                error = f"{type(err).__name__}: {err}"
            if record.attempts > self.retries:
                break
            delay = retry_backoff_s(
                spec.key or spec.label or spec.runner, record.attempts,
                self.backoff_base_s, self.backoff_cap_s)
            record.backoff_seconds += delay
            record.add_event("retry", attempt=record.attempts,
                             backoff_s=round(delay, 4),
                             error=error.splitlines()[0])
            await asyncio.sleep(delay)

        if error is None and value is not None and spec.key:
            self._memory_put(spec.key, value)
            if self.disk_cache is not None:
                try:
                    await asyncio.get_running_loop().run_in_executor(
                        None, self.disk_cache.put, spec.key, value)
                except Exception as err:    # noqa: BLE001
                    # A cache-write failure (disk full, permissions) must
                    # not fail a job that already computed its result.
                    record.add_event(
                        "cache_write_failed",
                        error=f"{type(err).__name__}: {err}")
        if spec.key:
            self._inflight.pop(spec.key, None)

        state = "ok" if error is None else "failed"
        record.finalize(state, result=value, error=error)
        self._settle(record)
        for follower in record.followers:
            follower.attempts = record.attempts
            follower.finalize(state, result=value, error=error)
            self._settle(follower)
        record.followers = []

    def _settle(self, record: JobRecord) -> None:
        """Book-keeping for one record reaching a terminal state."""
        if record.state == "ok":
            self.counters.completed += 1
        else:
            self.counters.failed += 1
        self._note_latency(record)
        self._note_metrics(record)
        self._open -= 1
        if self._open == 0:
            waiters, self._idle_waiters = self._idle_waiters, []
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_result(None)

    # -- warm memory tier ----------------------------------------------------
    def _memory_get(self, key: str) -> Optional[dict]:
        if self.memory_entries <= 0:
            return None
        record = self._memory.get(key)
        if record is not None:
            self._memory.move_to_end(key)
        return record

    def _memory_put(self, key: str, record: dict) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- metrics -------------------------------------------------------------
    def _note_latency(self, record: JobRecord) -> None:
        self._latency.append((
            record.priority,
            record.total_s or 0.0,
            record.queue_wait_s or 0.0,
            record.cached is not None,
        ))

    def _note_metrics(self, record: JobRecord) -> None:
        """Fold a finished executed job into the rolling BatchMetrics
        window (compile jobs carry per-phase timings; others show up with
        empty phases)."""
        payload = record.spec.payload if isinstance(record.spec.payload,
                                                    dict) else {}
        result = record.result if isinstance(record.result, dict) else {}
        self._recent_metrics.append(JobMetrics(
            job_id=record.job_id,
            isax=str(payload.get("isax", "")),
            core=str(payload.get("core", "")) or str(result.get("core", "")),
            status=record.state,
            cached=record.cached is not None,
            attempts=record.attempts,
            seconds=record.total_s or 0.0,
            phases=result.get("phases", {}),
            ilp=result.get("ilp", []),
            lint=result.get("lint_counts", {}),
            optimizer=result.get("optimizer", {}),
            error=record.error,
        ))

    def metrics(self) -> dict:
        """One JSON document: the familiar batch-metrics layout over the
        rolling job window, plus the ``"server"`` section with queue,
        coalescing, cache-tier and latency accounting."""
        warm = [t for p, t, w, c in self._latency if c]
        executed = [t for p, t, w, c in self._latency if not c]
        waits = [w for p, t, w, c in self._latency if not c]
        by_priority = {
            name: _percentiles(
                [t for p, t, w, c in self._latency if p == name])
            for name in PRIORITIES
        }
        server = {
            "uptime_s": round(self.uptime_s, 3),
            "workers": self.workers,
            "backend": self.backend,
            "queue": {
                "depth": self.queue_depth,
                "max_depth": self.max_queue_depth,
                "open_jobs": self._open,
                "draining": self._draining,
            },
            "counters": self.counters.to_dict(),
            "memory_cache": {
                "entries": len(self._memory),
                "max_entries": self.memory_entries,
            },
            "latency": {
                "warm": _percentiles(warm),
                "executed": _percentiles(executed),
                "queue_wait": _percentiles(waits),
                "by_priority": by_priority,
            },
        }
        cache_stats = None
        if self.disk_cache is not None:
            to_dict = getattr(self.disk_cache, "to_dict", None)
            cache_stats = (to_dict() if callable(to_dict)
                           else self.disk_cache.stats.to_dict())
        batch = BatchMetrics(
            jobs=list(self._recent_metrics),
            cache_stats=cache_stats,
            workers=self.workers,
            server=server,
        )
        return batch.to_dict()

    def healthz(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(self.uptime_s, 3),
            "queue_depth": self.queue_depth,
            "open_jobs": self._open,
            "workers": self.workers,
            "backend": self.backend,
        }


__all__ = [
    "COMPILE_RUNNER",
    "CompileServer",
    "DrainingError",
    "JobRecord",
    "PRIORITIES",
    "QueueFullError",
    "ServerCounters",
    "ServerRejection",
    "TaskSpec",
    "UnknownJobError",
]
