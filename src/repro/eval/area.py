"""Netlist area accounting (the synthesis half of the ASIC model)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.dialects.hw import HWModule
from repro.eval.tech import TechLibrary
from repro.scaiev.integrate import GlueItem, IntegrationResult


def module_area(module: HWModule, tech: Optional[TechLibrary] = None) -> float:
    """Cell area (µm²) of one generated ISAX module, including routing."""
    tech = tech or TechLibrary()
    total = sum(tech.area_um2(op) for op in module.body.operations)
    return total * tech.routing_factor


def glue_area(items: Iterable[GlueItem],
              tech: Optional[TechLibrary] = None) -> float:
    """Area (µm²) of the SCAIE-V-generated interface logic."""
    tech = tech or TechLibrary()
    total = 0.0
    for item in items:
        per_bit = tech.glue_area_per_bit.get(item.kind, tech.gate_area)
        total += per_bit * item.bits
    return total * tech.routing_factor


def area_breakdown(integration: IntegrationResult,
                   tech: Optional[TechLibrary] = None) -> Dict[str, float]:
    """Per-component area of one integrated core extension."""
    tech = tech or TechLibrary()
    breakdown: Dict[str, float] = {}
    for name, module in integration.modules.items():
        breakdown[f"module:{name}"] = module_area(module, tech)
    breakdown["glue"] = glue_area(integration.glue, tech)
    return breakdown


def total_extension_area(integration: IntegrationResult,
                         tech: Optional[TechLibrary] = None) -> float:
    return sum(area_breakdown(integration, tech).values())
