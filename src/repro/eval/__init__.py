"""ASIC evaluation substrate (substitute for the paper's commercial 22 nm
reference flow, Section 5.3).

* :mod:`repro.eval.tech` — a 22 nm-class technology library: per-operator
  propagation delays and cell areas, plus per-core calibration anchors,
* :mod:`repro.eval.area` — netlist area accounting for generated modules and
  SCAIE-V glue logic,
* :mod:`repro.eval.timing` — static timing analysis of scheduled modules and
  the integration-level frequency effects (ORCA's forwarding path,
  Section 5.4),
* :mod:`repro.eval.asic` — the full "synthesis + P&R" estimate producing
  area/frequency overheads per core x ISAX combination,
* :mod:`repro.eval.tables` — renders Table 4 and friends.
"""

from repro.eval.tech import TechLibrary
from repro.eval.area import module_area, glue_area
from repro.eval.timing import module_critical_path, extended_core_frequency
from repro.eval.asic import AsicResult, evaluate_combination, run_table4

__all__ = [
    "TechLibrary",
    "module_area",
    "glue_area",
    "module_critical_path",
    "extended_core_frequency",
    "AsicResult",
    "evaluate_combination",
    "run_table4",
]
