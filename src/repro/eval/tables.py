"""Rendering of the evaluation tables (paper Tables 1, 3, 4).

Also records the paper's published Table 4 numbers so benchmarks and
EXPERIMENTS.md can print paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.eval.asic import AsicResult
from repro.scaiev.cores import CORES
from repro.scaiev.interfaces import standard_interfaces

#: Table 4 as published: {row: {core: (area %, freq %)}}.
PAPER_TABLE4: Dict[str, Dict[str, tuple]] = {
    "autoinc": {"ORCA": (20, -6), "Piccolo": (3, -9), "PicoRV32": (23, 0),
                "VexRiscv": (12, 2)},
    "dotprod": {"ORCA": (23, -14), "Piccolo": (4, 0), "PicoRV32": (21, -2),
                "VexRiscv": (21, 2)},
    "ijmp": {"ORCA": (2, -3), "Piccolo": (7, 3), "PicoRV32": (7, 2),
             "VexRiscv": (12, 0)},
    "sbox": {"ORCA": (7, -2), "Piccolo": (0, 3), "PicoRV32": (6, 2),
             "VexRiscv": (8, -1)},
    "sparkle": {"ORCA": (85, -24), "Piccolo": (2, -1), "PicoRV32": (46, 0),
                "VexRiscv": (45, -2)},
    "sqrt_tightly": {"ORCA": (80, -32), "Piccolo": (22, -15),
                     "PicoRV32": (100, -5), "VexRiscv": (43, -8)},
    "sqrt_decoupled": {"ORCA": (56, -5), "Piccolo": (10, 3),
                       "PicoRV32": (111, -7), "VexRiscv": (47, 6)},
    "sqrt_decoupled (no hazard handling)": {
        "ORCA": (46, -6), "Piccolo": (10, 3), "PicoRV32": (96, -2),
        "VexRiscv": (40, 4)},
    "zol": {"ORCA": (7, -2), "Piccolo": (13, 4), "PicoRV32": (10, -1),
            "VexRiscv": (14, -3)},
    "autoinc+zol": {"ORCA": (29, -6), "Piccolo": (3, 2), "PicoRV32": (32, -1),
                    "VexRiscv": (16, 5)},
}

#: Base-core rows of Table 4: (area µm², f_max MHz).
PAPER_BASELINES = {
    "ORCA": (6612, 996),
    "Piccolo": (26098, 420),
    "PicoRV32": (4745, 1278),
    "VexRiscv": (9052, 701),
}


def render_table1() -> str:
    """The SCAIE-V sub-interface catalogue (Table 1)."""
    lines = [f"{'Sub-interface':<16} {'Operands':<34} {'Results':<12} "
             f"Description"]
    lines.append("-" * 110)
    for name, iface in standard_interfaces().items():
        operands = ", ".join(f"i{w} {n}" for n, w in iface.operands) or "-"
        results = ", ".join(f"i{w}" for _n, w in iface.results) or "-"
        suffix = "_s" if iface.per_stage else ""
        lines.append(
            f"{name + suffix:<16} {operands:<34} {results:<12} "
            f"{iface.description}"
        )
    return "\n".join(lines)


def render_table4(table: Dict[str, Dict[str, AsicResult]],
                  include_paper: bool = True,
                  cores: Sequence[str] = CORES) -> str:
    """Render measured (and optionally paper) area/frequency overheads."""
    width = 26 if include_paper else 18
    lines = []
    header = f"{'ISAX':<38}" + "".join(f"{core:>{width}}" for core in cores)
    lines.append(header)
    base_cells = []
    for core in cores:
        area, freq = PAPER_BASELINES[core]
        base_cells.append(f"{area:,} um2 @ {freq} MHz")
    lines.append(f"{'Base core (excl. caches)':<38}"
                 + "".join(f"{cell:>{width}}" for cell in base_cells))
    lines.append("-" * len(header))
    for label, row in table.items():
        cells = []
        for core in cores:
            result = row[core]
            cell = (f"+{result.area_overhead_pct:.0f}% "
                    f"{result.freq_delta_pct:+.0f}%")
            if include_paper and label in PAPER_TABLE4:
                paper_area, paper_freq = PAPER_TABLE4[label][core]
                cell += f" (paper +{paper_area}% {paper_freq:+d}%)"
            cells.append(cell)
        lines.append(f"{label:<38}" + "".join(f"{c:>{width}}" for c in cells))
    return "\n".join(lines)


def render_table3() -> str:
    """The benchmark-ISAX inventory (Table 3)."""
    rows = [
        ("autoinc", "Auto-incrementing load/store instructions and setup",
         "Custom register and main memory access"),
        ("dotprod", "4x8bit dot product (Figure 1)",
         "Loop and bit ranges concisely describing SIMD behavior"),
        ("ijmp", "Read next PC from memory", "PC and main memory access"),
        ("sbox", "Lookup from AES S-Box", "Constant custom register"),
        ("sparkle", "Lightweight post-quantum cryptography",
         "R-type instructions, bit manipulations, helper functions"),
        ("sqrt_tightly", "CORDIC-based fix-point square root",
         "Loop unrolling, tightly-coupled interfaces"),
        ("sqrt_decoupled", "CORDIC-based fix-point square root",
         "spawn-block, decoupled interfaces"),
        ("zol", "Zero-overhead loop inspired by PULP extensions",
         "PC and custom register access in always-block"),
    ]
    lines = [f"{'ISAX':<16} {'Description':<52} Demonstrates"]
    lines.append("-" * 120)
    for name, description, demonstrates in rows:
        lines.append(f"{name:<16} {description:<52} {demonstrates}")
    return "\n".join(lines)
