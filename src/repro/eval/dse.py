"""Automated design-space exploration (paper Section 7, outlook).

"Since area minimization and performance metrics, such as instruction
latency, are often conflicting optimization goals, automated design space
exploration will be implemented to provide multiple trade-off points."

This module implements that exploration over two axes Longnail controls:

* the **target cycle time** handed to the scheduler (slower clocks pack more
  logic per stage: fewer pipeline registers, longer per-instruction latency
  in ns),
* the **initiation interval** of resource sharing (from the Section 7
  sharing analysis: fewer operator instances, the ISAX accepts a new
  operand set only every II cycles).

Every candidate is compiled through the real flow and measured with the
technology library; :func:`pareto_frontier` filters the non-dominated
(area, latency) points a user would choose from.

The sweep runs through the batch service
(:class:`repro.service.executor.BatchExecutor`): one task per cycle-time
candidate, fanned out over worker processes and served from the
content-addressed artifact cache on repeat sweeps.  The default executor
is in-process and uncached, so `explore()` behaves exactly as before for
casual callers.

With ``server_url`` (or ``python -m repro.eval.dse --server URL``) the
sweep instead becomes a *client* of the long-lived compile server
(:mod:`repro.server`): every candidate is a ``POST /v1/tasks`` submission
sharing the server's warm caches and coalescing with identical concurrent
sweeps — the "everything becomes a client" direction of the ROADMAP.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

from repro.eval.area import module_area
from repro.eval.tech import TechLibrary
from repro.hls.longnail import compile_isax
from repro.hls.sharing import analyze_functionality
from repro.scaiev.cores import core_datasheet
from repro.scaiev.datasheet import VirtualDatasheet
from repro.service.executor import BatchExecutor, TaskSpec
from repro.service.jobs import digest

#: Runner reference for one DSE cycle-time candidate.
DSE_RUNNER = "repro.eval.dse:_evaluate_candidate"

#: Part of every DSE cache key; bump when DesignPoint or the evaluation
#: changes shape.
_DSE_CACHE_VERSION = "dse-2"


@dataclasses.dataclass
class DesignPoint:
    """One evaluated implementation of one ISAX instruction."""

    instruction: str
    cycle_time_ns: float
    initiation_interval: int
    pipeline_stages: int
    area_um2: float
    latency_ns: float

    @property
    def throughput_per_us(self) -> float:
        """Accepted operand sets per microsecond."""
        return 1000.0 / (self.cycle_time_ns * self.initiation_interval)

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (area, latency): no worse in both, better in
        at least one."""
        no_worse = (self.area_um2 <= other.area_um2
                    and self.latency_ns <= other.latency_ns)
        better = (self.area_um2 < other.area_um2
                  or self.latency_ns < other.latency_ns)
        return no_worse and better


def _measure_candidate(
        source: str, datasheet: VirtualDatasheet, cycle: float,
        initiation_intervals: Sequence[int], instruction: Optional[str],
        tech: TechLibrary, engine: str = "auto") -> List[DesignPoint]:
    """Compile + measure one cycle-time candidate (all IIs)."""
    artifact = compile_isax(source, datasheet, cycle_time_ns=cycle,
                            engine=engine, delay_model=tech.delay_model())
    names = [n for n, f in artifact.functionalities.items()
             if f.kind == "instruction"]
    name = instruction or names[0]
    functionality = artifact.artifact(name)
    spatial_area = module_area(functionality.module, tech)
    report = analyze_functionality(
        functionality, tech, max_ii=max(initiation_intervals)
    )
    stages = functionality.schedule.makespan
    points: List[DesignPoint] = []
    for ii in initiation_intervals:
        shared_point = report.point(ii)
        datapath_delta = (report.spatial_point.total_area_um2
                          - shared_point.total_area_um2)
        area = max(0.0, spatial_area - datapath_delta)
        points.append(DesignPoint(
            instruction=name,
            cycle_time_ns=cycle,
            initiation_interval=ii,
            pipeline_stages=stages,
            area_um2=area,
            latency_ns=stages * cycle,
        ))
    return points


def _evaluate_candidate(payload: dict) -> dict:
    """Executor runner: one cycle-time candidate, JSON-able in and out so
    the result can fan out to worker processes and live in the artifact
    cache."""
    points = _measure_candidate(
        payload["source"],
        VirtualDatasheet.from_yaml(payload["datasheet"]),
        payload["cycle_time_ns"],
        [int(ii) for ii in payload["initiation_intervals"]],
        payload.get("instruction"),
        TechLibrary(),
        engine=payload.get("engine", "auto"),
    )
    return {"points": [dataclasses.asdict(point) for point in points]}


def explore(source: str,
            core: Union[str, VirtualDatasheet] = "VexRiscv",
            cycle_scales: Sequence[float] = (1.0, 1.5, 2.0, 3.0, 4.0),
            initiation_intervals: Sequence[int] = (1, 2, 4),
            instruction: Optional[str] = None,
            tech: Optional[TechLibrary] = None,
            executor: Optional[BatchExecutor] = None,
            engine: str = "auto",
            server_url: Optional[str] = None,
            priority: str = "batch") -> List[DesignPoint]:
    """Sweep the design space of one ISAX instruction on one core.

    ``cycle_scales`` multiply the core's native cycle time (a scale > 1
    means the ISAX internally runs at a divided clock / relaxed constraint,
    trading latency for area).

    Pass an ``executor`` (with workers and/or an artifact cache) to fan the
    candidates out in parallel and reuse results across sweeps.  A custom
    ``tech`` library cannot be shipped to workers, so it forces in-process
    evaluation on the default executor.  ``engine`` selects the scheduler
    engine per candidate; the in-process default additionally shares the
    cross-sweep schedule cache, so candidates whose chain-breaker sets
    coincide are never re-solved.

    ``server_url`` routes every candidate through a running compile
    server instead (see :mod:`repro.server`): concurrent sweeps coalesce
    on identical candidates and repeat sweeps are served from the
    server's warm cache tier.  ``priority`` is the server queue level.
    """
    datasheet = core_datasheet(core) if isinstance(core, str) else core
    datasheet_yaml = datasheet.to_yaml()
    if tech is not None:
        # A custom library stays in-process: evaluate directly.
        points: List[DesignPoint] = []
        for scale in cycle_scales:
            points.extend(_measure_candidate(
                source, datasheet, datasheet.cycle_time_ns * scale,
                initiation_intervals, instruction, tech, engine=engine,
            ))
        return points

    specs = []
    for scale in cycle_scales:
        cycle = datasheet.cycle_time_ns * scale
        payload = {
            "source": source,
            "datasheet": datasheet_yaml,
            "cycle_time_ns": cycle,
            "initiation_intervals": [int(ii) for ii in initiation_intervals],
            "instruction": instruction,
            "engine": engine,
        }
        specs.append(TaskSpec(
            runner=DSE_RUNNER,
            payload=payload,
            key=digest(_DSE_CACHE_VERSION, source, datasheet_yaml,
                       repr(cycle), repr(tuple(initiation_intervals)),
                       repr(instruction), engine),
            label=f"dse@{cycle:g}ns",
        ))

    if server_url is not None:
        return _explore_via_server(server_url, specs, priority=priority)

    executor = executor or BatchExecutor(workers=1)
    outcomes = executor.run_specs(specs)
    points = []
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"DSE candidate {outcome.spec.label} failed: {outcome.error}"
            )
        points.extend(DesignPoint(**entry)
                      for entry in outcome.result["points"])
    return points


def _explore_via_server(url: str, specs: Sequence[TaskSpec],
                        priority: str = "batch") -> List[DesignPoint]:
    """Submit every candidate to a running compile server concurrently and
    assemble the DesignPoints from the job results (input order kept)."""
    import asyncio

    from repro.server.client import CompileServerClient

    async def _sweep() -> List[dict]:
        client = CompileServerClient(url)
        return await asyncio.gather(*[
            client.submit_task(
                runner=spec.runner, payload=spec.payload, key=spec.key,
                label=spec.label, priority=priority, wait=True,
            )
            for spec in specs
        ])

    points: List[DesignPoint] = []
    for spec, job in zip(specs, asyncio.run(_sweep())):
        if job.get("state") != "ok":
            raise RuntimeError(
                f"DSE candidate {spec.label} failed on the server: "
                f"{job.get('error')}"
            )
        points.extend(DesignPoint(**entry)
                      for entry in job["result"]["points"])
    return points


def explore_discovered(kernel: str,
                       params: Optional[dict] = None,
                       core: str = "VexRiscv",
                       budget: int = 8,
                       trials: int = 3,
                       executor: Optional[BatchExecutor] = None,
                       server_url: Optional[str] = None,
                       priority: str = "batch",
                       **explore_kwargs):
    """Mine an ISAX from a registered kernel, then sweep its design space.

    Chains the two automation stages the paper's outlook describes:
    :func:`repro.discover.search.discover` finds and prices candidate
    instructions for *kernel* (see ``repro-longnail discover``), and the
    winning CoreDSL goes straight into :func:`explore` for the cycle-time
    x II sweep.  Returns ``(discovery_report, design_points)``; both
    stages share the executor / compile server.
    """
    from repro.discover.search import DiscoveryConfig, discover

    config = DiscoveryConfig(
        kernel=kernel, params={k: int(v) for k, v in (params or {}).items()},
        core=core, budget=budget, trials=trials,
        server_url=server_url, priority=priority)
    report = discover(config, executor=executor)
    if report.winner is None or not report.winner.get("source"):
        raise ValueError(
            f"discovery found no verified candidate for kernel {kernel!r}")
    # Sweep the datapath instruction, not a setup shim: the `_step` op
    # carries the mined subgraph and hence all the area/latency trade-off.
    step = next((name for name in report.winner.get("instructions", [])
                 if name.endswith("_step")), None)
    points = explore(
        report.winner["source"], core=core, instruction=step,
        executor=executor, server_url=server_url, priority=priority,
        **explore_kwargs)
    return report, points


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by area."""
    frontier = [
        p for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: (p.area_um2, p.latency_ns))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.eval.dse``: sweep one ISAX, locally or — with
    ``--server URL`` — as a client of a running compile server."""
    import argparse

    from repro.isaxes import ALL_ISAXES

    parser = argparse.ArgumentParser(
        prog="repro.eval.dse",
        description="design-space exploration over cycle time x II",
    )
    parser.add_argument("--isax", default="dotprod",
                        choices=sorted(ALL_ISAXES),
                        help="benchmark ISAX to sweep (default dotprod)")
    parser.add_argument("--core", default="VexRiscv")
    parser.add_argument("--cycle-scale", action="append", type=float,
                        default=[], metavar="S",
                        help="cycle-time scale (repeatable; default "
                             "1.0 1.5 2.0 3.0 4.0)")
    parser.add_argument("--ii", action="append", type=int, default=[],
                        help="initiation interval (repeatable; "
                             "default 1 2 4)")
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "fastpath", "milp", "asap"))
    parser.add_argument("--server", default=None, metavar="URL",
                        help="run the sweep through a compile server "
                             "(e.g. http://127.0.0.1:8080)")
    parser.add_argument("--priority", default="batch",
                        choices=("interactive", "batch", "background"),
                        help="server queue priority (with --server)")
    parser.add_argument("--workers", type=int, default=1,
                        help="local executor workers (without --server)")
    parser.add_argument("--discover-kernel", default=None, metavar="KERNEL",
                        help="instead of a built-in ISAX, sweep the winner "
                             "mined from this kernel by `repro-longnail "
                             "discover` (overrides --isax)")
    parser.add_argument("--discover-param", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="kernel parameter for --discover-kernel "
                             "(repeatable)")
    parser.add_argument("--discover-budget", type=int, default=8,
                        help="max priced variants for --discover-kernel")
    args = parser.parse_args(argv)

    executor = None
    if args.server is None and args.workers > 1:
        executor = BatchExecutor(workers=args.workers)
    sweep_kwargs = dict(
        core=args.core,
        cycle_scales=args.cycle_scale or (1.0, 1.5, 2.0, 3.0, 4.0),
        initiation_intervals=args.ii or (1, 2, 4),
        engine=args.engine,
        executor=executor,
        server_url=args.server,
        priority=args.priority,
    )
    if args.discover_kernel is not None:
        params = {}
        for item in args.discover_param:
            name, _, value = item.partition("=")
            params[name.strip()] = int(value, 0)
        report, points = explore_discovered(
            args.discover_kernel, params=params,
            budget=args.discover_budget, **sweep_kwargs)
        subject = (f"discovered {report.winner['label']} "
                   f"(speedup {report.winner['speedup']:.2f}x)")
    else:
        points = explore(ALL_ISAXES[args.isax], **sweep_kwargs)
        subject = args.isax
    via = f"server {args.server}" if args.server else "local executor"
    print(f"# {subject} on {args.core} via {via}: "
          f"{len(points)} design points")
    print(render_design_space(points))
    return 0


def render_design_space(points: Sequence[DesignPoint],
                        frontier: Optional[Sequence[DesignPoint]] = None) -> str:
    frontier = frontier if frontier is not None else pareto_frontier(points)
    chosen = {id(p) for p in frontier}
    lines = [f"{'cycle ns':>9} {'II':>3} {'stages':>7} {'area um2':>9} "
             f"{'latency ns':>11} {'pareto':>7}"]
    for point in sorted(points, key=lambda p: (p.cycle_time_ns,
                                               p.initiation_interval)):
        lines.append(
            f"{point.cycle_time_ns:>9.2f} {point.initiation_interval:>3} "
            f"{point.pipeline_stages:>7} {point.area_um2:>9.0f} "
            f"{point.latency_ns:>11.1f} "
            f"{'*' if id(point) in chosen else '':>7}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
