"""Static timing analysis and integration-level frequency effects
(the place-and-route half of the ASIC model).

Captures the mechanisms behind the paper's Table 4 frequency columns:

* the ISAX module's internal critical path (register-to-register) directly
  limits the shared clock,
* on cores that forward results from the last stage back into the execute
  stage (ORCA, Section 5.4), any ISAX write scheduled into the last stage
  joins the forwarding path and lengthens it — the root cause of the
  dotprod/sparkle regressions the paper reports,
* interface arbitration muxes add a small payload delay,
* synthesis/P&R heuristics contribute small pseudo-random variation
  (Section 5.4 notes variations below 10% are noise); we model this with a
  deterministic hash so results are reproducible.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional

from repro.dialects.hw import HWModule
from repro.eval.area import module_area
from repro.eval.tech import TechLibrary
from repro.hls.longnail import IsaxArtifact
from repro.ir.core import Value
from repro.scaiev.datasheet import VirtualDatasheet
from repro.scaiev.integrate import IntegrationResult

#: Register clock-to-Q plus setup margin (ns).
_SEQUENTIAL_OVERHEAD = 0.08


def module_critical_path(module: HWModule,
                         tech: Optional[TechLibrary] = None) -> float:
    """Longest combinational path (ns) between sequential boundaries
    (inputs/registers -> outputs/register data pins)."""
    tech = tech or TechLibrary()
    arrival: Dict[Value, float] = {}
    critical = 0.0
    for op in module.body.topological_order():
        if op.name in ("hw.input", "seq.compreg"):
            for result in op.results:
                arrival[result] = 0.0
            if op.name == "seq.compreg":
                critical = max(critical, arrival.get(op.operands[0], 0.0))
            continue
        if op.name == "hw.output":
            critical = max(critical, arrival.get(op.operands[0], 0.0))
            continue
        start = max((arrival[o] for o in op.operands), default=0.0)
        finish = start + tech.delay_ns(op)
        for result in op.results:
            arrival[result] = finish
        critical = max(critical, finish)
    # Second pass for register data pins (they may appear before producers
    # in list order, but topological_order already handles def-before-use).
    for op in module.body.operations:
        if op.name == "seq.compreg":
            critical = max(critical, arrival.get(op.operands[0], 0.0))
    return critical + _SEQUENTIAL_OVERHEAD if critical > 0 else 0.0


def _noise_fraction(key: str, amplitude: float = 0.02) -> float:
    """Deterministic pseudo-random fraction in [-amplitude, +amplitude],
    modeling the inherent randomness of synthesis and P&R heuristics."""
    digest = hashlib.md5(key.encode()).digest()
    raw = int.from_bytes(digest[:4], "little") / 0xFFFFFFFF
    return (2.0 * raw - 1.0) * amplitude


def output_arrival_times(module: HWModule,
                         tech: Optional[TechLibrary] = None) -> Dict[str, float]:
    """In-cycle arrival time (ns) of each output port's data."""
    tech = tech or TechLibrary()
    arrival: Dict[Value, float] = {}
    outputs: Dict[str, float] = {}
    for op in module.body.topological_order():
        if op.name in ("hw.input", "seq.compreg"):
            for result in op.results:
                arrival[result] = 0.0
            continue
        if op.name == "hw.output":
            outputs[op.attr("name")] = arrival.get(op.operands[0], 0.0)
            continue
        start = max((arrival[o] for o in op.operands), default=0.0)
        finish = start + tech.delay_ns(op)
        for result in op.results:
            arrival[result] = finish
    return outputs


def forwarding_path_cycle(datasheet: VirtualDatasheet,
                          artifacts: List[IsaxArtifact],
                          tech: Optional[TechLibrary] = None) -> float:
    """Required cycle time (ns) of the forwarding path once ISAX writes in
    the core's last stage join it (Section 5.4, ORCA).

    The forwarding net feeds the issue mux and the ALU input, which consume
    a large fraction of the base cycle; an ISAX result arriving late in the
    last stage (fresh out of combinational logic rather than a register)
    therefore stretches the path: required = write-data arrival + consumer
    fraction of the base cycle.
    """
    if not datasheet.forwarding_from_last_stage:
        return 0.0
    tech = tech or TechLibrary()
    base_cycle = datasheet.cycle_time_ns
    required = 0.0
    from repro.eval.area import module_area  # deferred: avoids a cycle

    for artifact in artifacts:
        for name, functionality in artifact.functionalities.items():
            # Only GPR results travel on the forwarding network.
            entry_late = any(
                entry.interface == "WrRD"
                and entry.mode == "in_pipeline"
                and entry.stage >= datasheet.writeback_stage
                for entry in functionality.functionality.schedule
            )
            if not entry_late:
                continue
            arrivals = output_arrival_times(functionality.module, tech)
            data_arrival = max(
                (t for port, t in arrivals.items()
                 if port.startswith("wrrd_data")),
                default=0.0,
            )
            # Result mux into the forwarding net plus the wire load of the
            # ISAX block hanging off it (scales with its footprint), plus
            # any combinational tail the result arrives through.
            area = module_area(functionality.module, tech)
            penalty = (0.04 + 0.006 * math.sqrt(max(0.0, area))
                       + 0.35 * data_arrival)
            required = max(
                required,
                penalty + tech.forwarding_consumer_fraction * base_cycle,
            )
    return required


def arbitration_mux_delay(integration: IntegrationResult) -> float:
    """Payload mux delay added in front of shared write interfaces."""
    worst = 0
    for mux in integration.arbitration.muxes:
        worst = max(worst, mux.ways)
    if worst <= 1:
        return 0.0
    return 0.022 * math.log2(worst) * 2


def extended_core_frequency(
    datasheet: VirtualDatasheet,
    artifacts: List[IsaxArtifact],
    integration: IntegrationResult,
    tech: Optional[TechLibrary] = None,
    extension_area: float = 0.0,
) -> float:
    """f_max (MHz) of the extended core.

    The clock must accommodate: the base core's critical path (lengthened by
    forwarding/arbitration effects), and every ISAX module's internal path.
    """
    tech = tech or TechLibrary()
    base_cycle = datasheet.cycle_time_ns
    cycle = base_cycle
    cycle = max(cycle, forwarding_path_cycle(datasheet, artifacts, tech))
    cycle += arbitration_mux_delay(integration)
    for artifact in artifacts:
        for functionality in artifact.functionalities.values():
            path = module_critical_path(functionality.module, tech)
            cycle = max(cycle, path)
    key = datasheet.core_name + ":" + "+".join(a.name for a in artifacts)
    cycle *= 1.0 + _noise_fraction(key)
    return 1000.0 / cycle
