"""A 22 nm-class technology library.

The paper synthesizes with a commercial 22 nm flow; this module provides the
closest synthetic equivalent: per-operator propagation delays (ns) and cell
areas (µm²) in the range of published 22 nm standard-cell results (NAND2
around 0.25 µm², a flip-flop around 2 µm², a 32-bit adder in the
50-80 µm² / 0.2-0.3 ns class).  The absolute values are a model; what the
evaluation relies on is that *relative* costs (a multiplier is much bigger
than an adder, flip-flops dominate deep pipelines, ROMs are cheap logic)
behave like real synthesis.

The library also provides the scheduler's delay model (Section 4.2 notes
Longnail is intended to consume "an actual target-specific technology
library, providing real hardware delays and areas" — this is that library).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.ir.core import Operation

#: ns per logic level at the 22 nm node (fanout-4 inverter class).
_FO4 = 0.022


def _log2(width: int) -> float:
    return math.log2(max(2, width))


class TechLibrary:
    """Delay/area characterization of the operator set."""

    name = "generic-22nm"
    #: Flip-flop area per bit (µm²).
    ff_area = 2.0
    #: Basic 2-input gate area per bit (µm²).
    gate_area = 0.25

    # ------------------------------------------------------------- delays
    def delay_ns(self, op: Operation) -> float:
        """Propagation delay of one operator instance."""
        name = op.name
        width = op.results[0].width if op.results else 1
        if name in ("comb.constant", "comb.extract", "comb.concat",
                    "comb.replicate", "lil.sink"):
            return 0.0
        if name in ("comb.add", "comb.sub"):
            # Carry-lookahead-class adder: logarithmic depth.
            return _FO4 * (2 + 1.6 * _log2(width))
        if name == "comb.mul":
            operand_width = max(self._mul_widths(op))
            return _FO4 * (4 + 3.2 * _log2(operand_width))
        if name in ("comb.divu", "comb.divs", "comb.modu", "comb.mods"):
            operand_width = max(o.width for o in op.operands)
            return _FO4 * (8 + operand_width * 1.5)
        if name == "comb.icmp":
            operand_width = op.operands[0].width
            return _FO4 * (1 + 1.4 * _log2(operand_width))
        if name in ("comb.and", "comb.or", "comb.xor", "comb.not"):
            return _FO4 * 1.4
        if name == "comb.mux":
            return _FO4 * 1.8
        if name in ("comb.shl", "comb.shru", "comb.shrs"):
            return _FO4 * (1.2 * _log2(width))
        if name in ("comb.rom", "lil.rom"):
            entries = len(op.attr("values") or [])
            return _FO4 * (2 + 1.8 * _log2(max(2, entries)))
        if name.startswith("lil.") or name.startswith("hw.") or \
                name.startswith("seq."):
            # Interface and port operations: boundary mux/buffer delay.
            return _FO4 * 3
        return _FO4 * 2

    def delay_model(self) -> Callable[[Operation], float]:
        return self.delay_ns

    @staticmethod
    def _mul_widths(op: Operation):
        """Pre-extension operand widths recorded by the lowering; synthesis
        infers a w1 x w2 multiplier regardless of the result width."""
        widths = op.attr("op_widths")
        if widths:
            return widths
        return [o.width for o in op.operands]

    # --------------------------------------------------------------- areas
    def area_um2(self, op: Operation) -> float:
        """Cell area of one operator instance (µm²)."""
        name = op.name
        width = op.results[0].width if op.results else 1
        if name in ("comb.constant", "comb.extract", "comb.concat",
                    "comb.replicate", "lil.sink", "hw.input", "hw.output"):
            return 0.0
        if name in ("comb.add", "comb.sub"):
            return 1.2 * width
        if name == "comb.mul":
            w1, w2 = self._mul_widths(op)[:2]
            return 2.2 * w1 * w2
        if name in ("comb.divu", "comb.divs", "comb.modu", "comb.mods"):
            operand_width = max(o.width for o in op.operands)
            return 2.0 * operand_width * operand_width
        if name == "comb.icmp":
            return 0.55 * op.operands[0].width
        if name in ("comb.and", "comb.or", "comb.xor"):
            return self.gate_area * width
        if name == "comb.not":
            return 0.15 * width
        if name == "comb.mux":
            return 0.4 * width
        if name in ("comb.shl", "comb.shru", "comb.shrs"):
            return 0.5 * width * _log2(width)
        if name in ("comb.rom", "lil.rom"):
            entries = len(op.attr("values") or [])
            # Synthesized as logic; an AES S-box lands near 130 µm².
            return 0.06 * entries * width
        if name == "seq.compreg":
            return self.ff_area * width
        return 0.0

    # --------------------------------------------- glue logic (integration)
    #: µm² per glue bit, by GlueItem kind (see scaiev.integrate).
    glue_area_per_bit = {
        "decode": 0.3,
        "mux": 0.5,
        "storage": 2.0,
        "valid_pipe": 2.0,
        "comparator": 1.0,
        "stall": 1.0,
    }

    #: Extra wiring/buffering factor applied on top of raw cell area,
    #: approximating placement-and-routing overhead.
    routing_factor = 1.25

    #: Fraction of the base core's cycle consumed by the forwarding path's
    #: downstream logic (issue mux + ALU input); used by the Section 5.4
    #: forwarding-penalty model.
    forwarding_consumer_fraction = 0.9
