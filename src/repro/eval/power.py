"""Power/energy model for extended cores (backs the Section 5.6 claim).

The paper reports the audio-ML case study "leading to overall gains of
2.15x in wall-clock performance and 30 % power savings" on the fabricated
22 nm SoC.  We model power at the granularity the reproduction supports:

* **dynamic power** scales with active area and activity: the base core
  switches every cycle; ISAX modules switch only in the cycles their
  instructions occupy (their activity factor is the fraction of cycles an
  ISAX instruction is in flight),
* **leakage power** scales with total area, always on,
* **energy per task** = total power x execution time; with a fixed clock
  frequency, cycles stand in for time.

Absolute wattage constants are representative of 22 nm embedded cores
(~40 µW/MHz-class); every claim the benchmarks make is about *ratios*.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

#: Dynamic switching power density, µW per µm² at 100 % activity and the
#: reference frequency (order-of-magnitude 22 nm figure).
DYNAMIC_UW_PER_UM2 = 0.55
#: Leakage power density, µW per µm².
LEAKAGE_UW_PER_UM2 = 0.045
#: Background activity of the base core (clock tree + pipeline).
CORE_ACTIVITY = 0.25


@dataclasses.dataclass
class PowerEstimate:
    """Power/energy for one workload run on one core configuration."""

    area_um2: float
    isax_area_um2: float
    cycles: int
    freq_mhz: float
    isax_activity: float = 0.0    # fraction of cycles with an ISAX in flight

    @property
    def dynamic_uw(self) -> float:
        base = (self.area_um2 - self.isax_area_um2) * CORE_ACTIVITY
        isax = self.isax_area_um2 * CORE_ACTIVITY * self.isax_activity
        return (base + isax) * DYNAMIC_UW_PER_UM2 * (self.freq_mhz / 1000.0)

    @property
    def leakage_uw(self) -> float:
        return self.area_um2 * LEAKAGE_UW_PER_UM2

    @property
    def power_uw(self) -> float:
        return self.dynamic_uw + self.leakage_uw

    @property
    def runtime_us(self) -> float:
        return self.cycles / self.freq_mhz

    @property
    def energy_nj(self) -> float:
        return self.power_uw * self.runtime_us / 1000.0


def compare(baseline: PowerEstimate, extended: PowerEstimate) -> dict:
    """Baseline vs extended-core metrics for the same task."""
    return {
        "speedup": baseline.runtime_us / extended.runtime_us,
        "power_ratio": extended.power_uw / baseline.power_uw,
        "energy_ratio": extended.energy_nj / baseline.energy_nj,
        "energy_savings_pct":
            100.0 * (1.0 - extended.energy_nj / baseline.energy_nj),
    }


def estimate_workload(base_area_um2: float, isax_area_um2: float,
                      cycles: int, freq_mhz: float,
                      isax_cycles: Optional[int] = None) -> PowerEstimate:
    """Convenience constructor; ``isax_cycles`` is how many of ``cycles``
    had an ISAX instruction in flight."""
    activity = 0.0
    if isax_cycles is not None and cycles > 0:
        activity = min(1.0, isax_cycles / cycles)
    return PowerEstimate(
        area_um2=base_area_um2 + isax_area_um2,
        isax_area_um2=isax_area_um2,
        cycles=cycles,
        freq_mhz=freq_mhz,
        isax_activity=activity,
    )
