"""The full "ASIC flow" estimate: compile, integrate, synthesize, analyze.

``evaluate_combination`` plays the role of the paper's commercial 22 nm
synthesis + place-and-route run for one core x ISAX(es) configuration
(Section 5.3): it compiles each ISAX with Longnail against the core's
virtual datasheet, integrates them with SCAIE-V, and reports the area and
frequency overheads relative to the unmodified core — the quantities of
Table 4.

The timing-closure effect the paper discusses for sqrt on ORCA/Piccolo is
modeled explicitly: when an ISAX module's internal critical path exceeds the
core's cycle time, "the downstream ASIC synthesis has to put more effort to
achieve timing closure within the ISAX module, using more area in order to
satisfy the timing constraints" — we scale the module area by an effort
factor proportional to the overshoot.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Union

from repro.eval.area import glue_area, module_area
from repro.eval.tech import TechLibrary
from repro.eval.timing import extended_core_frequency, module_critical_path
from repro.hls.longnail import IsaxArtifact, compile_isax
from repro.scaiev.cores import CORES, core_datasheet
from repro.scaiev.datasheet import VirtualDatasheet
from repro.scaiev.integrate import IntegrationResult, integrate
from repro.scheduling.scheduler import uniform_delay_model

#: Maximum synthesis-effort area multiplier for timing-pressed modules.
_MAX_EFFORT = 1.8


@dataclasses.dataclass
class AsicResult:
    """One Table 4 cell pair: a core x ISAX(es) configuration."""

    core: str
    isaxes: List[str]
    base_area_um2: float
    base_freq_mhz: float
    extension_area_um2: float
    freq_mhz: float
    hazard_handling: bool = True
    integration: Optional[IntegrationResult] = None
    artifacts: List[IsaxArtifact] = dataclasses.field(default_factory=list)

    @property
    def area_overhead_pct(self) -> float:
        return 100.0 * self.extension_area_um2 / self.base_area_um2

    @property
    def freq_delta_pct(self) -> float:
        return 100.0 * (self.freq_mhz - self.base_freq_mhz) / self.base_freq_mhz

    @property
    def label(self) -> str:
        return "+".join(self.isaxes)


def evaluate_combination(
    core: Union[str, VirtualDatasheet],
    sources: Sequence[str],
    isax_names: Optional[Sequence[str]] = None,
    hazard_handling: bool = True,
    tech: Optional[TechLibrary] = None,
    schedule_delays: str = "tech",
    engine: str = "auto",
) -> AsicResult:
    """Run the full flow for one configuration and measure it.

    ``schedule_delays`` selects the delay model Longnail schedules with:
    ``"tech"`` (the technology library) or ``"uniform"`` (the paper's
    current simplification, Section 4.2) — the gap between the two is the
    Section 5.4 timing-closure story.
    """
    tech = tech or TechLibrary()
    datasheet = core_datasheet(core) if isinstance(core, str) else core
    if schedule_delays == "tech":
        delay_model = tech.delay_model()
    elif schedule_delays == "uniform":
        # The paper's simplification: one uniform delay per operation.  A
        # sixteenth of a cycle per operation packs stages optimistically, so
        # deep modules mis-estimate real timing — the Section 5.4 story.
        delay_model = uniform_delay_model(datasheet.cycle_time_ns / 16.0)
    else:
        raise ValueError(f"unknown delay-model choice {schedule_delays!r}")

    artifacts = [
        compile_isax(source, datasheet, delay_model=delay_model, engine=engine)
        for source in sources
    ]
    integration = integrate(
        datasheet,
        [(artifact.config, None) for artifact in artifacts],
        hazard_handling=hazard_handling,
    )

    cycle = datasheet.cycle_time_ns
    extension_area = glue_area(integration.glue, tech)
    for artifact in artifacts:
        for functionality in artifact.functionalities.values():
            area = module_area(functionality.module, tech)
            path = module_critical_path(functionality.module, tech)
            if path > cycle:
                # Timing pressure: synthesis spends area to close timing.
                effort = min(_MAX_EFFORT, 1.0 + 0.6 * (path / cycle - 1.0))
                area *= effort
            extension_area += area

    freq = extended_core_frequency(
        datasheet, artifacts, integration, tech, extension_area
    )
    names = list(isax_names) if isax_names else [a.name for a in artifacts]
    return AsicResult(
        core=datasheet.core_name,
        isaxes=names,
        base_area_um2=datasheet.base_area_um2,
        base_freq_mhz=datasheet.base_freq_mhz,
        extension_area_um2=extension_area,
        freq_mhz=freq,
        hazard_handling=hazard_handling,
        integration=integration,
        artifacts=artifacts,
    )


def table4_rows() -> List[Dict[str, object]]:
    """The row definitions of Table 4 (ISAX label -> sources + options)."""
    from repro.isaxes import ALL_ISAXES

    rows: List[Dict[str, object]] = []
    for name in ("autoinc", "dotprod", "ijmp", "sbox", "sparkle",
                 "sqrt_tightly", "sqrt_decoupled"):
        rows.append({"label": name, "sources": [ALL_ISAXES[name]],
                     "hazard": True})
    rows.append({
        "label": "sqrt_decoupled (no hazard handling)",
        "sources": [ALL_ISAXES["sqrt_decoupled"]],
        "hazard": False,
    })
    rows.append({"label": "zol", "sources": [ALL_ISAXES["zol"]],
                 "hazard": True})
    rows.append({
        "label": "autoinc+zol",
        "sources": [ALL_ISAXES["autoinc"], ALL_ISAXES["zol"]],
        "hazard": True,
    })
    return rows


def run_table4(cores: Sequence[str] = CORES,
               tech: Optional[TechLibrary] = None,
               engine: str = "auto") -> Dict[str, Dict[str, AsicResult]]:
    """Regenerate Table 4: {row label: {core: AsicResult}}."""
    tech = tech or TechLibrary()
    table: Dict[str, Dict[str, AsicResult]] = {}
    for row in table4_rows():
        results: Dict[str, AsicResult] = {}
        for core in cores:
            results[core] = evaluate_combination(
                core, row["sources"], hazard_handling=row["hazard"],
                tech=tech, engine=engine,
            )
        table[row["label"]] = results
    return table
