"""Static analysis: CoreDSL lint rules and the IR verifier.

Tier A (:mod:`repro.analysis.lint`) walks the typed AST of an elaborated
ISA and reports structured :class:`~repro.utils.diagnostics.Diagnostic`
records with stable ``LNxxx`` codes.  Tier B (:mod:`repro.analysis.verifier`)
checks the ``lil``/``comb``/``hw`` graphs and solved schedules that the
lowering stages produce (``IVxxx`` codes); it runs between pipeline phases
under ``REPRO_IR_VERIFY=1``, inside the fuzz oracle stack, and on demand
via ``repro-longnail lint``.

Both tiers, the ``range-narrow`` optimizer pass, and the simulators'
lane-kind bound selection are backed by one abstract-interpretation
engine (:mod:`repro.analysis.absint`): interval + known-bits dataflow
over the CDFG, memoized per module on the netlist digest.
"""

from repro.analysis.absint import (
    ABSINT_COUNTS,
    AbsVal,
    IntRange,
    RangeFacts,
    absint_cache_stats,
    analyze_graph,
    analyze_module,
    clear_facts_cache,
    netlist_digest,
    slice_source,
)
from repro.analysis.lint import (
    LINT_RULES,
    LintContext,
    LintRule,
    lint_cross_isa,
    lint_source,
    run_lints,
)
from repro.analysis.verifier import (
    IR_CHECKS,
    IRVerifyError,
    ir_verify_enabled,
    require_valid,
    verify_artifact_ir,
    verify_graph,
    verify_module,
    verify_schedule,
)

__all__ = [
    "ABSINT_COUNTS",
    "AbsVal",
    "IntRange",
    "RangeFacts",
    "absint_cache_stats",
    "analyze_graph",
    "analyze_module",
    "clear_facts_cache",
    "netlist_digest",
    "slice_source",
    "LINT_RULES",
    "LintContext",
    "LintRule",
    "lint_cross_isa",
    "lint_source",
    "run_lints",
    "IR_CHECKS",
    "IRVerifyError",
    "ir_verify_enabled",
    "require_valid",
    "verify_artifact_ir",
    "verify_graph",
    "verify_module",
    "verify_schedule",
]
