"""Static analysis: CoreDSL lint rules and the IR verifier.

Tier A (:mod:`repro.analysis.lint`) walks the typed AST of an elaborated
ISA and reports structured :class:`~repro.utils.diagnostics.Diagnostic`
records with stable ``LNxxx`` codes.  Tier B (:mod:`repro.analysis.verifier`)
checks the ``lil``/``comb``/``hw`` graphs and solved schedules that the
lowering stages produce (``IVxxx`` codes); it runs between pipeline phases
under ``REPRO_IR_VERIFY=1``, inside the fuzz oracle stack, and on demand
via ``repro-longnail lint``.
"""

from repro.analysis.lint import (
    LINT_RULES,
    LintContext,
    LintRule,
    lint_cross_isa,
    lint_source,
    run_lints,
)
from repro.analysis.verifier import (
    IR_CHECKS,
    IRVerifyError,
    ir_verify_enabled,
    require_valid,
    verify_artifact_ir,
    verify_graph,
    verify_module,
    verify_schedule,
)

__all__ = [
    "LINT_RULES",
    "LintContext",
    "LintRule",
    "lint_cross_isa",
    "lint_source",
    "run_lints",
    "IR_CHECKS",
    "IRVerifyError",
    "ir_verify_enabled",
    "require_valid",
    "verify_artifact_ir",
    "verify_graph",
    "verify_module",
    "verify_schedule",
]
