"""Abstract interpretation over the lil/comb CDFG: intervals + known bits.

One sound value-range engine for the whole stack.  Before this module,
three subsystems re-derived "how wide is this value really":

* the batched simulator's lane-kind bounds (``repro.sim.compile``),
* the optimizer's width-narrowing and branch folding (``repro.opt``),
* the linter/verifier's truncation, shift and index rules.

They now all query the same analysis.  The engine runs a worklist over
the single-block graph and computes, per SSA :class:`~repro.ir.core.Value`,
an :class:`AbsVal` combining two composable domains:

* an **unsigned interval** ``[lo, hi]`` over the value's masked bit
  pattern (``0 <= lo <= hi <= mask(width)``), and
* **known bits** — a must-zero mask and a must-one mask over the low
  ``width`` bits.

The domains cross-refine: known bits clamp the interval
(``lo >= ones``, ``hi <= ~zeros``) and the shared leading bits of
``lo``/``hi`` become known.  Transfer functions cover every ``comb`` and
``hwarith`` operation — wrap-aware add/sub/mul, division and modulo with
the RISC-V ``/0`` semantics, shifts with the ``>= width`` clamp,
``icmp`` including mixed-width signed comparisons, ``mux`` joins,
extract/concat/replicate bit plumbing (with slice forwarding through
producers), and ROM reads refined by the index range.  Operations the
engine does not model — architectural interface reads (``lil.*``),
inputs, registers — soundly produce ``top``.

Soundness contract (fuzzed by the ``rangesound`` oracle and
``tests/analysis/test_absint_soundness.py``): for every value ``v``
computed by any simulator engine, ``lo <= v <= hi``,
``v & zeros == 0`` and ``v & ones == ones``.

:func:`analyze_module` memoizes its :class:`RangeFacts` per hardware
module, keyed on the structural :func:`netlist_digest` — the same
invalidation discipline the simulator's codegen cache uses.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.dialects import comb
from repro.dialects.hw import HWModule
from repro.ir.core import Graph, IRError, Operation, Value
from repro.utils.bits import mask


# ---------------------------------------------------------------------------
# The abstract domain
# ---------------------------------------------------------------------------

class AbsVal:
    """Interval + known-bits fact for one ``width``-bit value.

    Immutable; construct through :meth:`top`, :meth:`const`,
    :meth:`from_interval` or :meth:`make` (which cross-refines and
    canonicalizes).  ``zeros``/``ones`` are bit masks confined to the low
    ``width`` bits; a bit may appear in at most one of them.
    """

    __slots__ = ("width", "lo", "hi", "zeros", "ones")

    def __init__(self, width: int, lo: int, hi: int,
                 zeros: int, ones: int):
        self.width = width
        self.lo = lo
        self.hi = hi
        self.zeros = zeros
        self.ones = ones

    # -- constructors -------------------------------------------------------
    @classmethod
    def top(cls, width: int) -> "AbsVal":
        return cls(width, 0, mask(width), 0, 0)

    @classmethod
    def const(cls, width: int, value: int) -> "AbsVal":
        w = mask(width)
        value &= w
        return cls(width, value, value, ~value & w, value)

    @classmethod
    def from_interval(cls, width: int, lo: int, hi: int) -> "AbsVal":
        return cls.make(width, lo, hi, 0, 0)

    @classmethod
    def make(cls, width: int, lo: int, hi: int,
             zeros: int = 0, ones: int = 0) -> "AbsVal":
        """Build a fact, clamping to the width and cross-refining the two
        domains.  A numerically contradictory input (empty intersection)
        degrades to ``top`` — soundness over precision."""
        w = mask(width)
        lo = max(lo, 0)
        hi = min(hi, w)
        zeros &= w
        ones &= w
        if lo > hi or zeros & ones:
            return cls.top(width)
        # Interval -> bits: bits above the highest differing bit of
        # lo/hi are equal in every value of the interval.
        diff = lo ^ hi
        known = w if diff == 0 else w & ~mask(diff.bit_length())
        ones |= lo & known
        zeros |= ~lo & known
        # Bits -> interval: every value v satisfies ones <= v <= ~zeros.
        lo = max(lo, ones)
        hi = min(hi, ~zeros & w)
        if lo > hi or zeros & ones:
            return cls.top(width)
        return cls(width, lo, hi, zeros, ones)

    # -- predicates ---------------------------------------------------------
    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def value(self) -> int:
        """The single concrete value (only meaningful when ``is_const``)."""
        return self.lo

    def contains(self, value: int) -> bool:
        """Does the concrete ``value`` satisfy this fact?"""
        return (self.lo <= value <= self.hi
                and value & self.zeros == 0
                and value & self.ones == self.ones)

    def is_top(self) -> bool:
        return (self.lo == 0 and self.hi == mask(self.width)
                and self.zeros == 0 and self.ones == 0)

    # -- lattice ------------------------------------------------------------
    def join(self, other: "AbsVal") -> "AbsVal":
        """Least upper bound (union of behaviours), e.g. at a mux."""
        return AbsVal.make(
            self.width,
            min(self.lo, other.lo), max(self.hi, other.hi),
            self.zeros & other.zeros, self.ones & other.ones)

    def meet(self, other: "AbsVal") -> "AbsVal":
        """Greatest lower bound; used to keep worklist updates monotone."""
        refined = AbsVal.make(
            self.width,
            max(self.lo, other.lo), min(self.hi, other.hi),
            self.zeros | other.zeros, self.ones | other.ones)
        # A contradictory meet (make() degraded to top) keeps the older,
        # still-sound fact instead of widening.
        if refined.is_top() and not (self.is_top() and other.is_top()):
            return self
        return refined

    def same(self, other: "AbsVal") -> bool:
        return (self.lo == other.lo and self.hi == other.hi
                and self.zeros == other.zeros and self.ones == other.ones)

    def signed_interval(self) -> Optional[Tuple[int, int]]:
        """The value's two's-complement reading as a mathematical
        interval, when the sign bit is determined: ``None`` if the
        interval straddles the sign boundary."""
        if self.width == 0:
            return (0, 0)
        half = 1 << (self.width - 1)
        if self.hi < half:
            return (self.lo, self.hi)
        if self.lo >= half:
            full = 1 << self.width
            return (self.lo - full, self.hi - full)
        return None

    def __repr__(self) -> str:
        return (f"AbsVal(w={self.width}, [{self.lo:#x}, {self.hi:#x}], "
                f"zeros={self.zeros:#x}, ones={self.ones:#x})")


# ---------------------------------------------------------------------------
# Mathematical integer ranges (the AST linter's domain)
# ---------------------------------------------------------------------------

class IntRange:
    """A closed mathematical-integer interval ``[lo, hi]``.

    The typed-AST linter works on CoreDSL expressions *before* lowering,
    where values are best modelled as plain integers (signed types reach
    below zero); this small companion domain shares the engine module so
    the lint rules and the CDFG analysis evolve together.  All operators
    are sound over-approximations; ``None`` bounds never occur — callers
    clamp to the expression's type range instead.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int):
        if lo > hi:
            raise ValueError(f"empty IntRange [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    @classmethod
    def const(cls, value: int) -> "IntRange":
        return cls(value, value)

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def add(self, other: "IntRange") -> "IntRange":
        return IntRange(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "IntRange") -> "IntRange":
        return IntRange(self.lo - other.hi, self.hi - other.lo)

    def mul(self, other: "IntRange") -> "IntRange":
        corners = [a * b for a in (self.lo, self.hi)
                   for b in (other.lo, other.hi)]
        return IntRange(min(corners), max(corners))

    def neg(self) -> "IntRange":
        return IntRange(-self.hi, -self.lo)

    def shl(self, other: "IntRange") -> Optional["IntRange"]:
        if other.lo < 0 or other.hi > 4096 or self.lo < 0:
            return None
        return IntRange(self.lo << other.lo, self.hi << other.hi)

    def shr(self, other: "IntRange") -> Optional["IntRange"]:
        if other.lo < 0 or self.lo < 0:
            return None
        return IntRange(self.lo >> min(other.hi, 4096),
                        self.hi >> min(other.lo, 4096))

    def contains_zero(self) -> bool:
        return self.lo <= 0 <= self.hi

    def always_zero(self) -> bool:
        return self.lo == 0 and self.hi == 0

    # -- proven comparisons -------------------------------------------------
    def compare(self, op: str, other: "IntRange") -> Optional[bool]:
        """``True``/``False`` when the comparison is decided for *every*
        pair of values, ``None`` otherwise."""
        if op == "<":
            if self.hi < other.lo:
                return True
            if self.lo >= other.hi:
                return False
        elif op == "<=":
            if self.hi <= other.lo:
                return True
            if self.lo > other.hi:
                return False
        elif op == ">":
            if self.lo > other.hi:
                return True
            if self.hi <= other.lo:
                return False
        elif op == ">=":
            if self.lo >= other.hi:
                return True
            if self.hi < other.lo:
                return False
        elif op == "==":
            if (self.is_const and other.is_const
                    and self.lo == other.lo):
                return True
            if self.hi < other.lo or self.lo > other.hi:
                return False
        elif op == "!=":
            inverse = self.compare("==", other)
            return None if inverse is None else not inverse
        return None

    def __repr__(self) -> str:
        return f"IntRange[{self.lo}, {self.hi}]"


# ---------------------------------------------------------------------------
# Slice forwarding (shared with the simulator codegen)
# ---------------------------------------------------------------------------

def slice_source(value: Value, low: int, width: int) -> Tuple[Value, int]:
    """Resolve ``value[low +: width]`` through bit-plumbing producers.

    Extract-of-extract composes offsets; a slice fully contained in one
    ``comb.concat`` operand (or one ``comb.replicate`` chunk) forwards to
    that operand directly.  Netlists spend most of their ops assembling
    wide words from narrow pieces and slicing them back apart — forwarding
    lets both this analysis and the batch simulator reason about the
    pieces themselves, and (via liveness on the *resolved* operands) the
    codegen never materializes the wide word at all.
    """
    while True:
        owner = value.owner
        if owner is None:
            return value, low
        name = owner.name
        if name == "comb.extract":
            low += owner.attr("low")
            value = owner.operands[0]
            continue
        if name == "comb.concat":
            # Operands are MSB-first; walk from the LSB end.
            offset = 0
            forwarded = None
            for operand in reversed(owner.operands):
                top = offset + operand.width
                if low + width <= top:
                    if low >= offset:
                        forwarded = (operand, low - offset)
                    break
                offset = top
            if forwarded is None:
                return value, low  # slice spans an operand boundary
            value, low = forwarded
            continue
        if name == "comb.replicate":
            chunk = owner.operands[0].width
            if (low % chunk) + width <= chunk:
                value = owner.operands[0]
                low %= chunk
                continue
            return value, low
        return value, low


# ---------------------------------------------------------------------------
# Transfer functions
# ---------------------------------------------------------------------------

_Lookup = Callable[[Value], AbsVal]
_Transfer = Callable[[Operation, _Lookup, int], AbsVal]
_TRANSFER: Dict[str, _Transfer] = {}


def _transfer(*names: str) -> Callable[[_Transfer], _Transfer]:
    def wrap(fn: _Transfer) -> _Transfer:
        for name in names:
            _TRANSFER[name] = fn
        return fn
    return wrap


@_transfer("comb.constant")
def _t_constant(op: Operation, val: _Lookup, width: int) -> AbsVal:
    return AbsVal.const(width, int(op.attr("value")))


@_transfer("comb.add")
def _t_add(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    w = mask(width)
    lo, hi = a.lo + b.lo, a.hi + b.hi
    if hi <= w:
        return AbsVal.make(width, lo, hi)
    if lo > w and hi <= 2 * w + 1:
        # Every sum wraps exactly once.
        return AbsVal.make(width, lo - w - 1, hi - w - 1)
    return AbsVal.top(width)


@_transfer("comb.sub")
def _t_sub(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    lo, hi = a.lo - b.hi, a.hi - b.lo
    if lo >= 0:
        return AbsVal.make(width, lo, hi)
    if hi < 0:
        full = mask(width) + 1
        return AbsVal.make(width, lo + full, hi + full)
    return AbsVal.top(width)


@_transfer("comb.mul")
def _t_mul(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    hi = a.hi * b.hi
    if hi <= mask(width):
        return AbsVal.make(width, a.lo * b.lo, hi)
    return AbsVal.top(width)


@_transfer("comb.divu")
def _t_divu(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    w = mask(width)
    if b.hi == 0:
        return AbsVal.const(width, w)        # x / 0 == all-ones
    if b.lo > 0:
        return AbsVal.make(width, a.lo // b.hi, a.hi // b.lo)
    # The divisor may or may not be zero.
    return AbsVal.make(width, min(a.lo // b.hi, w), w)


@_transfer("comb.modu")
def _t_modu(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    if b.hi == 0:
        return a                             # x % 0 == x
    if b.lo > 0:
        return AbsVal.make(width, 0, min(a.hi, b.hi - 1))
    return AbsVal.make(width, 0, a.hi)


@_transfer("comb.divs", "comb.mods")
def _t_signed_divmod(op: Operation, val: _Lookup, width: int) -> AbsVal:
    # The singleton shortcut in the engine loop folds constant operands
    # through comb.evaluate; anything else is top (sign analysis of
    # truncating division buys little on real netlists).
    return AbsVal.top(width)


@_transfer("comb.and")
def _t_and(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    return AbsVal.make(width, 0, min(a.hi, b.hi),
                       zeros=a.zeros | b.zeros, ones=a.ones & b.ones)


@_transfer("comb.or")
def _t_or(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    hi = mask(max(a.hi.bit_length(), b.hi.bit_length()))
    return AbsVal.make(width, max(a.lo, b.lo), hi,
                       zeros=a.zeros & b.zeros, ones=a.ones | b.ones)


@_transfer("comb.xor")
def _t_xor(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    hi = mask(max(a.hi.bit_length(), b.hi.bit_length()))
    return AbsVal.make(width, 0, hi,
                       zeros=(a.zeros & b.zeros) | (a.ones & b.ones),
                       ones=(a.ones & b.zeros) | (a.zeros & b.ones))


@_transfer("comb.not")
def _t_not(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a = val(op.operands[0])
    w = mask(width)
    return AbsVal.make(width, w - a.hi, w - a.lo,
                       zeros=a.ones, ones=a.zeros)


@_transfer("comb.shl")
def _t_shl(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    w = mask(width)
    if b.lo >= width:
        return AbsVal.const(width, 0)        # always flushed
    if b.is_const:
        amount = b.value
        zeros = ((a.zeros << amount) | mask(amount)) & w
        ones = (a.ones << amount) & w
        if a.hi << amount <= w:
            return AbsVal.make(width, a.lo << amount, a.hi << amount,
                               zeros=zeros, ones=ones)
        return AbsVal.make(width, 0, w, zeros=zeros, ones=ones)
    if b.hi < width and (a.hi << b.hi) <= w:
        return AbsVal.make(width, a.lo << b.lo, a.hi << b.hi,
                           zeros=mask(b.lo))
    # Shift counts >= width flush to 0, so 0 stays in the range; low
    # b.lo bits are zero either way.
    return AbsVal.make(width, 0, w, zeros=mask(min(b.lo, width)))


@_transfer("comb.shru")
def _t_shru(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    if b.lo >= width:
        return AbsVal.const(width, 0)        # always flushed
    hi = a.hi >> b.lo
    lo = (a.lo >> b.hi) if b.hi < width else 0
    if b.is_const:
        amount = b.value
        w = mask(width)
        zeros = ((a.zeros >> amount) | ~(w >> amount)) & w
        ones = (a.ones >> amount) & w
        return AbsVal.make(width, lo, hi, zeros=zeros, ones=ones)
    return AbsVal.make(width, lo, hi)


@_transfer("comb.shrs")
def _t_shrs(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    half = 1 << (width - 1) if width else 1
    if a.hi < half:
        # Sign bit provably clear: behaves like shru with the shift
        # count clamped to width-1.
        lo = a.lo >> min(b.hi, width - 1)
        hi = a.hi >> min(b.lo, width - 1)
        return AbsVal.make(width, lo, hi)
    if a.lo >= half:
        # Sign bit provably set: the fill keeps it set.
        return AbsVal.make(width, half, mask(width))
    return AbsVal.top(width)


_UNSIGNED_PREDS = {"ult": "<", "ule": "<=", "ugt": ">", "uge": ">="}
_SIGNED_PREDS = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}


def _prove_icmp(predicate: str, a: AbsVal, b: AbsVal) -> Optional[bool]:
    """Decide an icmp from the operand facts, or ``None``.

    Mirrors :func:`repro.dialects.comb.evaluate`: unsigned predicates
    compare bit patterns; signed predicates compare each operand's
    two's-complement reading *at its own width* (mixed widths occur on
    pre-verification netlists).
    """
    ra = IntRange(a.lo, a.hi)
    rb = IntRange(b.lo, b.hi)
    if predicate in ("eq", "ne"):
        # eq/ne are bit-pattern comparisons, but only meaningful across
        # equal widths (the verifier enforces this; on unverified IR a
        # width mismatch still compares masked patterns).
        decided = ra.compare("==", rb)
        if decided is None and (a.zeros & b.ones or a.ones & b.zeros):
            decided = False                  # some bit provably differs
        if decided is None:
            return None
        return decided if predicate == "eq" else not decided
    if predicate in _UNSIGNED_PREDS:
        return ra.compare(_UNSIGNED_PREDS[predicate], rb)
    if predicate in _SIGNED_PREDS:
        sa = a.signed_interval()
        sb = b.signed_interval()
        if sa is None or sb is None:
            return None
        return IntRange(*sa).compare(_SIGNED_PREDS[predicate],
                                     IntRange(*sb))
    return None


@_transfer("comb.icmp")
def _t_icmp(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a, b = val(op.operands[0]), val(op.operands[1])
    decided = _prove_icmp(op.attr("predicate"), a, b)
    if decided is None:
        return AbsVal.make(width, 0, 1)
    return AbsVal.const(width, int(decided))


@_transfer("comb.mux")
def _t_mux(op: Operation, val: _Lookup, width: int) -> AbsVal:
    cond = val(op.operands[0])
    t, f = val(op.operands[1]), val(op.operands[2])
    if cond.is_const:
        taken = t if cond.value else f
        # Arm widths equal the result width on verified IR; clamp just
        # in case the graph predates verification.
        return AbsVal.make(width, taken.lo, taken.hi,
                           zeros=taken.zeros & mask(width),
                           ones=taken.ones & mask(width))
    return AbsVal.make(width, min(t.lo, f.lo), max(t.hi, f.hi),
                       zeros=t.zeros & f.zeros & mask(width),
                       ones=t.ones & f.ones & mask(width))


@_transfer("comb.extract")
def _t_extract(op: Operation, val: _Lookup, width: int) -> AbsVal:
    src, low = slice_source(op.operands[0], op.attr("low"), width)
    a = val(src)
    w = mask(width)
    zeros = (a.zeros >> low) & w
    ones = (a.ones >> low) & w
    hi = a.hi >> low
    if hi <= w:
        return AbsVal.make(width, a.lo >> low, hi,
                           zeros=zeros, ones=ones)
    return AbsVal.make(width, 0, w, zeros=zeros, ones=ones)


@_transfer("comb.concat")
def _t_concat(op: Operation, val: _Lookup, width: int) -> AbsVal:
    lo = hi = zeros = ones = 0
    for operand in op.operands:              # MSB-first
        a = val(operand)
        shift = operand.width
        lo = (lo << shift) | a.lo
        hi = (hi << shift) | a.hi
        zeros = (zeros << shift) | a.zeros
        ones = (ones << shift) | a.ones
    return AbsVal.make(width, lo, hi, zeros=zeros, ones=ones)


@_transfer("comb.replicate")
def _t_replicate(op: Operation, val: _Lookup, width: int) -> AbsVal:
    a = val(op.operands[0])
    chunk = op.operands[0].width
    times = width // chunk if chunk else 0
    repunit = sum(1 << (chunk * i) for i in range(times))
    return AbsVal.make(width, a.lo * repunit, a.hi * repunit,
                       zeros=a.zeros * repunit, ones=a.ones * repunit)


@_transfer("comb.rom")
def _t_rom(op: Operation, val: _Lookup, width: int) -> AbsVal:
    idx = val(op.operands[0])
    w = mask(width)
    values = [int(v) & w for v in op.attr("values")]
    reachable = values[idx.lo:idx.hi + 1]
    if idx.hi >= len(values):
        reachable.append(0)                  # out-of-range reads yield 0
    if not reachable:
        return AbsVal.const(width, 0)
    zeros = ones = w
    for v in reachable:
        zeros &= ~v
        ones &= v
    return AbsVal.make(width, min(reachable), max(reachable),
                       zeros=zeros & w, ones=ones)


# -- hwarith: the signedness-aware mid-level dialect ------------------------
#
# hwarith values carry a signed flag and its ops compute in widening,
# non-wrapping result types chosen by the type checker.  The transfer
# functions below only claim what holds under *both* wrapping and
# widening readings: results are pinned when the unsigned arithmetic
# provably fits the result width and no operand can be negative.

def _unsigned_reading(value: Value, a: AbsVal) -> Optional[IntRange]:
    """The operand's mathematical value range, when provably
    non-negative under its own signedness."""
    if value.signed:
        signed = a.signed_interval()
        if signed is None or signed[0] < 0:
            return None
        return IntRange(*signed)
    return IntRange(a.lo, a.hi)


@_transfer("hwarith.constant")
def _t_hw_constant(op: Operation, val: _Lookup, width: int) -> AbsVal:
    value = int(op.attr("value"))
    if 0 <= value <= mask(width):
        return AbsVal.const(width, value)
    return AbsVal.top(width)


@_transfer("hwarith.add", "hwarith.mul")
def _t_hw_addmul(op: Operation, val: _Lookup, width: int) -> AbsVal:
    ra = _unsigned_reading(op.operands[0], val(op.operands[0]))
    rb = _unsigned_reading(op.operands[1], val(op.operands[1]))
    if ra is None or rb is None:
        return AbsVal.top(width)
    out = ra.add(rb) if op.name == "hwarith.add" else ra.mul(rb)
    if 0 <= out.lo and out.hi <= mask(width):
        return AbsVal.make(width, out.lo, out.hi)
    return AbsVal.top(width)


@_transfer("hwarith.sub")
def _t_hw_sub(op: Operation, val: _Lookup, width: int) -> AbsVal:
    ra = _unsigned_reading(op.operands[0], val(op.operands[0]))
    rb = _unsigned_reading(op.operands[1], val(op.operands[1]))
    if ra is None or rb is None:
        return AbsVal.top(width)
    out = ra.sub(rb)
    if 0 <= out.lo and out.hi <= mask(width):
        return AbsVal.make(width, out.lo, out.hi)
    return AbsVal.top(width)


@_transfer("hwarith.div", "hwarith.mod")
def _t_hw_divmod(op: Operation, val: _Lookup, width: int) -> AbsVal:
    ra = _unsigned_reading(op.operands[0], val(op.operands[0]))
    rb = _unsigned_reading(op.operands[1], val(op.operands[1]))
    if ra is None or rb is None or rb.lo <= 0:
        return AbsVal.top(width)
    if op.name == "hwarith.div":
        lo, hi = ra.lo // rb.hi, ra.hi // rb.lo
    else:
        lo, hi = 0, min(ra.hi, rb.hi - 1)
    if 0 <= lo and hi <= mask(width):
        return AbsVal.make(width, lo, hi)
    return AbsVal.top(width)


@_transfer("hwarith.cast")
def _t_hw_cast(op: Operation, val: _Lookup, width: int) -> AbsVal:
    ra = _unsigned_reading(op.operands[0], val(op.operands[0]))
    if ra is not None and ra.hi <= mask(width):
        # The value survives the re-encoding verbatim (zero-extension
        # or value-preserving truncation).
        return AbsVal.make(width, ra.lo, ra.hi)
    return AbsVal.top(width)


@_transfer("hwarith.icmp")
def _t_hw_icmp(op: Operation, val: _Lookup, width: int) -> AbsVal:
    return AbsVal.make(width, 0, 1)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class RangeFacts:
    """The analysis result for one graph: per-value :class:`AbsVal`.

    Lookups on values the engine never saw (or modelled as unknown)
    return ``top`` of the value's width, so every query is total.
    """

    __slots__ = ("_facts", "operations", "iterations")

    def __init__(self, facts: Dict[Value, AbsVal],
                 operations: int = 0, iterations: int = 0):
        self._facts = facts
        self.operations = operations
        self.iterations = iterations

    def get(self, value: Value) -> AbsVal:
        fact = self._facts.get(value)
        return fact if fact is not None else AbsVal.top(value.width)

    def interval(self, value: Value) -> Tuple[int, int]:
        fact = self.get(value)
        return fact.lo, fact.hi

    def hi(self, value: Value) -> int:
        """Upper bound on the value's (masked) magnitude — the drop-in
        replacement for the batch codegen's legacy bound analysis."""
        return self.get(value).hi

    def lo(self, value: Value) -> int:
        return self.get(value).lo

    def known_bits(self, value: Value) -> Tuple[int, int]:
        fact = self.get(value)
        return fact.zeros, fact.ones

    def is_const(self, value: Value) -> bool:
        return self.get(value).is_const


def _transfer_op(op: Operation, val: _Lookup) -> List[AbsVal]:
    """Output facts for one operation (one per result)."""
    if not op.results:
        return []
    width = op.results[0].width
    # Singleton shortcut: all-constant comb operands evaluate through
    # the reference interpreter, so corner semantics (division by zero,
    # shifts past the width, signed compares) are exact by construction.
    if (op.name.startswith("comb.") and op.operands
            and len(op.results) == 1):
        ins = [val(operand) for operand in op.operands]
        if all(fact.is_const for fact in ins):
            try:
                value = comb.evaluate(op, [fact.value for fact in ins])
            except (IRError, IndexError, KeyError, TypeError):
                value = None
            if value is not None:
                return [AbsVal.const(width, int(value))]
    transfer = _TRANSFER.get(op.name)
    if transfer is not None and len(op.results) == 1:
        try:
            return [transfer(op, val, width)]
        except (ValueError, ZeroDivisionError, IndexError, TypeError):
            return [AbsVal.top(width)]
    # Unmodelled operation (interface reads, registers, inputs): top.
    return [AbsVal.top(result.width) for result in op.results]


def analyze_graph(graph: Graph,
                  seeds: Optional[Dict[Value, AbsVal]] = None
                  ) -> RangeFacts:
    """Run the worklist engine over a single-block graph.

    ``seeds`` optionally pins facts for free values (e.g. module inputs
    with externally-known ranges); absent seeds are ``top``.  Block
    order is topological on well-formed graphs, so the first sweep
    usually converges; the worklist re-enqueues users whenever a fact
    tightens, which also covers non-topological op orders.
    """
    begin = time.perf_counter()
    ABSINT_COUNTS["graph_analyses"] += 1
    facts: Dict[Value, AbsVal] = dict(seeds) if seeds else {}

    def val(value: Value) -> AbsVal:
        fact = facts.get(value)
        return fact if fact is not None else AbsVal.top(value.width)

    operations = list(graph.operations)
    in_graph = set(operations)
    pending = deque(operations)
    queued = set(operations)
    iterations = 0
    while pending:
        op = pending.popleft()
        queued.discard(op)
        iterations += 1
        for result, fact in zip(op.results, _transfer_op(op, val)):
            old = facts.get(result)
            new = fact if old is None else old.meet(fact)
            if old is not None and new.same(old):
                continue
            facts[result] = new
            for user, _ in result.uses:
                if user in in_graph and user not in queued:
                    pending.append(user)
                    queued.add(user)
    _ANALYSIS_SECONDS[0] += time.perf_counter() - begin
    return RangeFacts(facts, operations=len(operations),
                      iterations=iterations)


# ---------------------------------------------------------------------------
# Per-module memoization (digest-guarded, like the simulator codegen)
# ---------------------------------------------------------------------------

def netlist_digest(module: HWModule) -> Tuple[str, ...]:
    """Structural fingerprint of the netlist: op kinds, connectivity,
    result widths and attributes (plus port shapes).  Cheap enough to
    recompute per consumer; any in-place edit changes it."""
    index: Dict[Value, int] = {}
    parts: List[str] = [
        ",".join(f"{p.name}:{p.direction}:{p.width}" for p in module.ports)
    ]
    for op in module.body.operations:
        operands = ",".join(
            str(index.get(operand, -1)) for operand in op.operands)
        for value in op.results:
            index[value] = len(index)
        attrs = repr(sorted(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in op.attributes.items()))
        widths = ",".join(str(r.width) for r in op.results)
        parts.append(f"{op.name}({operands})->{widths}{attrs}")
    return tuple(parts)


class _ModuleFactsEntry:
    __slots__ = ("digest", "facts")

    def __init__(self, digest: Tuple[str, ...], facts: RangeFacts):
        self.digest = digest
        self.facts = facts


_FACTS_CACHE: "weakref.WeakKeyDictionary[HWModule, _ModuleFactsEntry]" = \
    weakref.WeakKeyDictionary()
_FACTS_LOCK = threading.RLock()
#: Analysis invocation counters, exposed for tests and benchmarks.
ABSINT_COUNTS: Dict[str, int] = {
    "analyses": 0, "cache_hits": 0, "graph_analyses": 0,
}
#: Cumulative wall-clock spent inside :func:`analyze_graph` (mutated
#: under the GIL; read by ``benchmarks/bench_absint.py``'s budget gate).
_ANALYSIS_SECONDS: List[float] = [0.0]


def analysis_seconds() -> float:
    """Total wall-clock spent in the worklist engine since the last
    :func:`clear_facts_cache` (memoized hits cost nothing)."""
    return _ANALYSIS_SECONDS[0]


def analyze_module(module: HWModule) -> RangeFacts:
    """Memoized range analysis of a hardware module's body.

    Inputs and registers are ``top`` (their ranges are set by the
    environment), matching the assumptions the batch simulator's legacy
    bound analysis made.  The cache is keyed by module identity and
    guarded by :func:`netlist_digest`, so in-place netlist edits
    invalidate the entry instead of resurrecting stale facts.
    """
    digest = netlist_digest(module)
    with _FACTS_LOCK:
        entry = _FACTS_CACHE.get(module)
        if entry is not None and entry.digest == digest:
            ABSINT_COUNTS["cache_hits"] += 1
            return entry.facts
        ABSINT_COUNTS["analyses"] += 1
        facts = analyze_graph(module.body)
        _FACTS_CACHE[module] = _ModuleFactsEntry(digest, facts)
        return facts


def clear_facts_cache() -> None:
    """Drop all memoized analyses and reset the counters (tests only)."""
    with _FACTS_LOCK:
        _FACTS_CACHE.clear()
        for key in ABSINT_COUNTS:
            ABSINT_COUNTS[key] = 0
        _ANALYSIS_SECONDS[0] = 0.0


def absint_cache_stats() -> Dict[str, int]:
    """Snapshot of the analysis counters (for tests/benchmarks)."""
    with _FACTS_LOCK:
        return dict(ABSINT_COUNTS)


def supported_ops() -> Iterable[str]:
    """Op names with a dedicated transfer function (for docs/tests)."""
    return tuple(sorted(_TRANSFER))


__all__ = [
    "ABSINT_COUNTS",
    "AbsVal",
    "IntRange",
    "RangeFacts",
    "absint_cache_stats",
    "analysis_seconds",
    "analyze_graph",
    "analyze_module",
    "clear_facts_cache",
    "netlist_digest",
    "slice_source",
    "supported_ops",
]
