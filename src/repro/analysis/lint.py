"""The CoreDSL semantic linter (Tier A of the static-analysis subsystem).

Rules run over the *typed* AST of an :class:`ElaboratedISA` — every
expression already carries a ``ctype`` and, where known, a ``const_value``
— so checks are width- and signedness-aware without re-implementing the
type system.  Each rule has a stable code (``LNxxx``), a slug, a default
severity and a docstring; :data:`LINT_RULES` is the registry the CLI's
``--enable``/``--disable`` flags and the documentation generator consume.

The whole rule set shares a single AST traversal: :class:`LintContext`
flattens every behavior's statements and expressions once (and computes
state read/write sets once), so linting stays well under the documented
5% overhead budget of a cold compile (benchmarks/bench_lint_overhead.py).

========  ==========================  ========================================
code      rule                        finding
========  ==========================  ========================================
LN001     implicit-truncation         compound assignment silently truncates
LN002     shift-width                 constant shift amount >= operand width
LN003     sign-compare                relational compare mixes signedness
LN004     state-read-before-write     custom state read but never initialized
LN005     unused-state                custom state element never referenced
LN006     unused-function             function unreachable from any behavior
LN007     unused-field                encoding operand field never used
LN008     unreachable-code            statement after return/spawn
LN009     dead-branch                 branch condition is compile-time constant
LN010     encoding-overlap            two instructions match the same word
LN011     encoding-overlap-cross      overlap across ISAXes of one compile job
LN012     proven-comparison           comparison decided by proven value ranges
LN013     proven-division-by-zero     divisor's proven range is exactly zero
LN014     array-index-out-of-range    index's proven range misses the array
LN015     field-dead-bits             encoding never fills some field bits
========  ==========================  ========================================

LN012-LN015 are range rules: they evaluate expressions in the
mathematical-integer interval domain (:class:`repro.analysis.absint.IntRange`
— encoding operand fields get their exact decoded range from the
placement masks, other expressions their type range) and only report
what is *proven* for every reachable input.  LN015 carries ``note``
severity: unfilled field bits read as zero, which is well-defined and
occasionally intentional, so it never gates ``--werror``.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.absint import IntRange
from repro.frontend import ast_nodes as ast
from repro.frontend.elaboration import ElabInstruction, ElaboratedISA, elaborate
from repro.frontend.typecheck import StateInfo
from repro.utils.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
    sort_diagnostics,
)

# ---------------------------------------------------------------------------
# Typed-AST walking helpers
# ---------------------------------------------------------------------------

def child_stmts(stmt: ast.Stmt) -> List[ast.Stmt]:
    """Direct child statements of one statement (no recursion)."""
    if isinstance(stmt, ast.BlockStmt):
        return list(stmt.statements)
    if isinstance(stmt, ast.IfStmt):
        return [s for s in (stmt.then_body, stmt.else_body) if s is not None]
    if isinstance(stmt, ast.ForStmt):
        return [s for s in (stmt.init, stmt.step, stmt.body) if s is not None]
    if isinstance(stmt, ast.WhileStmt):
        return [stmt.body] if stmt.body is not None else []
    if isinstance(stmt, ast.SwitchStmt):
        return [case.body for case in stmt.cases if case.body is not None]
    if isinstance(stmt, ast.SpawnStmt):
        return [stmt.body] if stmt.body is not None else []
    return []


def stmt_exprs(stmt: ast.Stmt) -> List[ast.Expr]:
    """Expressions directly owned by one statement (no recursion)."""
    if isinstance(stmt, ast.VarDecl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, ast.Assign):
        return [e for e in (stmt.target, stmt.value) if e is not None]
    if isinstance(stmt, ast.ExprStmt):
        return [stmt.expr] if stmt.expr is not None else []
    if isinstance(stmt, ast.IfStmt):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, ast.ForStmt):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, ast.WhileStmt):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, ast.SwitchStmt):
        exprs = [stmt.value] if stmt.value is not None else []
        exprs.extend(c.label for c in stmt.cases if c.label is not None)
        return exprs
    if isinstance(stmt, ast.ReturnStmt):
        return [stmt.value] if stmt.value is not None else []
    return []


def expr_children(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinaryOp):
        return [e for e in (expr.lhs, expr.rhs) if e is not None]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand] if expr.operand is not None else []
    if isinstance(expr, ast.Conditional):
        return [e for e in (expr.cond, expr.true_value, expr.false_value)
                if e is not None]
    if isinstance(expr, ast.Cast):
        return [expr.operand] if expr.operand is not None else []
    if isinstance(expr, ast.FunctionCall):
        return list(expr.args)
    if isinstance(expr, ast.IndexExpr):
        return [e for e in (expr.base, expr.index) if e is not None]
    if isinstance(expr, ast.RangeExpr):
        return [e for e in (expr.base, expr.hi, expr.lo) if e is not None]
    return []


def iter_stmts(root: Optional[ast.Stmt]) -> Iterator[ast.Stmt]:
    """Pre-order traversal over all statements under (and including) root."""
    if root is None:
        return
    stack: List[ast.Stmt] = [root]
    while stack:
        stmt = stack.pop()
        yield stmt
        stack.extend(reversed(child_stmts(stmt)))


def _flatten_exprs(roots: Iterable[ast.Expr]) -> List[ast.Expr]:
    """All expression nodes under the given roots, pre-order."""
    flat: List[ast.Expr] = []
    stack = list(roots)
    stack.reverse()
    while stack:
        expr = stack.pop()
        flat.append(expr)
        stack.extend(reversed(expr_children(expr)))
    return flat


def iter_exprs(root: Optional[ast.Stmt]) -> Iterator[ast.Expr]:
    """All expression nodes in a statement subtree, pre-order."""
    for stmt in iter_stmts(root):
        yield from _flatten_exprs(stmt_exprs(stmt))


# ---------------------------------------------------------------------------
# Rule framework
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Behavior:
    """One lintable behavior with enough context to locate findings."""

    kind: str                       # "instruction" | "always" | "function"
    name: str
    body: Optional[ast.BlockStmt]
    loc: Optional[SourceLocation] = None
    fields: Tuple[str, ...] = ()    # encoding operand fields (instructions)


#: One pre-computed traversal: (behavior, all statements, all expressions).
Walk = Tuple[Behavior, List[ast.Stmt], List[ast.Expr]]


class LintContext:
    """Shared input for every rule: one primary ISA plus, for cross-job
    rules, all ISAs of the compile job.

    The context owns the single shared AST traversal (:meth:`walks`) and
    the combined state access sets (:meth:`state_accesses`); rules iterate
    the cached results instead of re-walking the tree.
    """

    def __init__(self, isa: ElaboratedISA,
                 isas: Sequence[ElaboratedISA] = ()) -> None:
        self.isa = isa
        self.isas: Tuple[ElaboratedISA, ...] = tuple(isas) or (isa,)
        self._walks: Optional[List[Walk]] = None
        self._accesses: Optional[Tuple[Dict[str, SourceLocation],
                                       Set[str]]] = None
        self._field_ranges: Dict[str, Dict[str, IntRange]] = {}

    def walks(self, include_functions: bool = True) -> List[Walk]:
        if self._walks is None:
            behaviors = [
                Behavior("instruction", i.name, i.behavior, i.loc,
                         tuple(i.fields))
                for i in self.isa.instructions.values()
            ]
            behaviors.extend(
                Behavior("always", a.name, a.body, a.loc)
                for a in self.isa.always_blocks.values()
            )
            behaviors.extend(
                Behavior("function", sig.name, sig.definition.body,
                         sig.definition.loc)
                for sig in self.isa.functions.values()
            )
            self._walks = []
            for behavior in behaviors:
                stmts = list(iter_stmts(behavior.body))
                exprs = _flatten_exprs(
                    e for stmt in stmts for e in stmt_exprs(stmt))
                self._walks.append((behavior, stmts, exprs))
        if include_functions:
            return self._walks
        return [w for w in self._walks if w[0].kind != "function"]

    def custom_regs(self) -> List[StateInfo]:
        return [s for s in self.isa.custom_state()
                if s.kind in ("scalar_reg", "array_reg")]

    def state_accesses(self) -> Tuple[Dict[str, SourceLocation], Set[str]]:
        """Combined over every behavior: (first read location per state
        element, set of written state elements).  Compound assignments
        count as both; index/range expressions on a write target count
        their subscripts as reads."""
        if self._accesses is None:
            state = self.isa.state
            first_read: Dict[str, SourceLocation] = {}
            written: Set[str] = set()

            def record_reads(roots: Iterable[ast.Expr]) -> None:
                for node in _flatten_exprs(roots):
                    if isinstance(node, ast.Identifier) \
                            and node.name in state:
                        first_read.setdefault(node.name, node.loc)

            for _behavior, stmts, _exprs in self.walks():
                for stmt in stmts:
                    if not isinstance(stmt, ast.Assign):
                        record_reads(stmt_exprs(stmt))
                        continue
                    target = stmt.target
                    name = None
                    if isinstance(target, ast.Identifier):
                        name = target.name
                    elif isinstance(target, (ast.IndexExpr, ast.RangeExpr)) \
                            and isinstance(target.base, ast.Identifier):
                        name = target.base.name
                    if name is not None and name in state:
                        written.add(name)
                        if stmt.op != "=":
                            first_read.setdefault(
                                name, target.loc if target else stmt.loc)
                    if isinstance(target, ast.IndexExpr):
                        record_reads([target.index] if target.index else [])
                    elif isinstance(target, ast.RangeExpr):
                        record_reads([e for e in (target.hi, target.lo)
                                      if e is not None])
                    if stmt.value is not None:
                        record_reads([stmt.value])
            self._accesses = (first_read, written)
        return self._accesses


    def field_ranges(self, behavior: Behavior) -> Dict[str, IntRange]:
        """Proven value range per encoding operand field of an instruction
        behavior (empty for always-blocks and functions).

        The range comes from the *decoded* value, not just the declared
        width: field bits no encoding slice fills are always zero, so a
        field assembled from slices ``[4:3]`` and ``[0:0]`` tops out at
        ``0b11001``, not ``0b11111``."""
        if behavior.kind != "instruction":
            return {}
        cached = self._field_ranges.get(behavior.name)
        if cached is not None:
            return cached
        ranges: Dict[str, IntRange] = {}
        instruction = self.isa.instructions.get(behavior.name)
        if instruction is not None:
            for name, field in instruction.encoding.fields.items():
                covered = 0
                for placement in field.placements:
                    covered |= ((1 << (placement.field_hi + 1)) -
                                (1 << placement.field_lo))
                ranges[name] = IntRange(0, covered)
        self._field_ranges[behavior.name] = ranges
        return ranges


# ---------------------------------------------------------------------------
# Expression ranges (the AST face of the abstract-interpretation engine)
# ---------------------------------------------------------------------------

_COMPARISON_OPS = ("<", "<=", ">", ">=", "==", "!=")


def _type_range(ctype: object) -> Optional[IntRange]:
    min_value = getattr(ctype, "min_value", None)
    max_value = getattr(ctype, "max_value", None)
    if min_value is None or max_value is None:
        return None
    return IntRange(min_value, max_value)


def expr_range(expr: Optional[ast.Expr],
               fields: Dict[str, IntRange]) -> Optional[IntRange]:
    """Sound mathematical value range of a typed expression.

    Flow-insensitive: encoding operand fields get their decoded range
    from ``fields``, every other identifier its type range.  CoreDSL
    operators compute in widened result types, so the recursion only
    narrows below the type range, never wraps; whenever a computed range
    escapes the expression's own type range (a container the semantics
    would truncate into) it is widened back to the full type range.
    ``None`` means no claim (untyped or unmodelled node).
    """
    if expr is None:
        return None
    if expr.const_value is not None:
        return IntRange.const(expr.const_value)
    type_rng = _type_range(expr.ctype)
    result: Optional[IntRange] = None
    if isinstance(expr, ast.Identifier):
        result = fields.get(expr.name)
    elif isinstance(expr, ast.BinaryOp) \
            and expr.lhs is not None and expr.rhs is not None:
        a = expr_range(expr.lhs, fields)
        b = expr_range(expr.rhs, fields)
        if expr.op in _COMPARISON_OPS:
            result = IntRange(0, 1)
        elif expr.op in ("&&", "||"):
            result = IntRange(0, 1)
        elif a is not None and b is not None:
            op = expr.op
            if op == "+":
                result = a.add(b)
            elif op == "-":
                result = a.sub(b)
            elif op == "*":
                result = a.mul(b)
            elif op == "<<":
                result = a.shl(b)
            elif op == ">>":
                result = a.shr(b)
            elif op == "/" and b.lo > 0 and a.lo >= 0:
                result = IntRange(a.lo // b.hi, a.hi // b.lo)
            elif op == "%" and b.lo > 0 and a.lo >= 0:
                result = IntRange(0, min(a.hi, b.hi - 1))
            elif op == "&" and a.lo >= 0 and b.lo >= 0:
                result = IntRange(0, min(a.hi, b.hi))
            elif op in ("|", "^") and a.lo >= 0 and b.lo >= 0:
                bits = max(a.hi.bit_length(), b.hi.bit_length())
                result = IntRange(0, (1 << bits) - 1)
    elif isinstance(expr, ast.UnaryOp) and expr.operand is not None:
        a = expr_range(expr.operand, fields)
        if expr.op == "!":
            result = IntRange(0, 1)
        elif expr.op == "-" and a is not None:
            result = a.neg()
    elif isinstance(expr, ast.Conditional):
        a = expr_range(expr.true_value, fields)
        b = expr_range(expr.false_value, fields)
        if a is not None and b is not None:
            result = IntRange(min(a.lo, b.lo), max(a.hi, b.hi))
    elif isinstance(expr, ast.Cast) and expr.operand is not None:
        a = expr_range(expr.operand, fields)
        if a is not None and type_rng is not None \
                and type_rng.lo <= a.lo and a.hi <= type_rng.hi:
            result = a          # value-preserving re-encoding
    if result is None:
        return type_rng
    if type_rng is not None \
            and (result.lo < type_rng.lo or result.hi > type_rng.hi):
        return type_rng         # truncating container: all bets off
    return result


RuleCheck = Callable[[LintContext], Iterable[Diagnostic]]


@dataclasses.dataclass(frozen=True)
class LintRule:
    code: str
    name: str
    severity: Severity
    description: str
    check: RuleCheck

    def diagnostic(self, message: str, loc: Optional[SourceLocation] = None,
                   fix_hint: Optional[str] = None) -> Diagnostic:
        return Diagnostic(self.code, self.severity, message, loc,
                          rule=self.name, fix_hint=fix_hint)


#: Registry: code -> rule.  Ordered by code; the CLI and docs rely on it.
LINT_RULES: Dict[str, LintRule] = {}


def lint_rule(code: str, name: str, severity: Severity,
              description: str) -> Callable[[RuleCheck], RuleCheck]:
    def wrap(check: RuleCheck) -> RuleCheck:
        if code in LINT_RULES:
            raise ValueError(f"duplicate lint rule code {code}")
        LINT_RULES[code] = LintRule(code, name, severity, description, check)
        return check
    return wrap


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

@lint_rule("LN001", "implicit-truncation", Severity.WARNING,
           "A compound assignment ('a op= b') truncates the operation's "
           "result back to the target's width; a right-hand side wider than "
           "the target silently loses its upper bits.")
def _check_implicit_truncation(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN001"]
    for behavior, stmts, _exprs in ctx.walks():
        for stmt in stmts:
            if not isinstance(stmt, ast.Assign) or stmt.op == "=":
                continue
            target, value = stmt.target, stmt.value
            if target is None or value is None:
                continue
            if target.ctype is None or value.ctype is None:
                continue
            if value.ctype.width > target.ctype.width:
                yield rule.diagnostic(
                    f"'{stmt.op}' truncates a {value.ctype.width}-bit value "
                    f"to the {target.ctype.width}-bit target in "
                    f"{behavior.kind} '{behavior.name}'",
                    stmt.loc,
                    fix_hint="widen the target or cast the right-hand side "
                             "explicitly",
                )


@lint_rule("LN002", "shift-width", Severity.WARNING,
           "A shift amount — constant, or non-constant with a proven value "
           "range — that never drops below the operand width always "
           "produces 0 (or the sign fill); almost certainly an off-by-one "
           "in the shift distance.  Field-bounded amounts (e.g. a 5-bit "
           "shamt on a 32-bit operand) stay clean.")
def _check_shift_width(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN002"]
    for behavior, _stmts, exprs in ctx.walks():
        fields = ctx.field_ranges(behavior)
        for expr in exprs:
            if not isinstance(expr, ast.BinaryOp) \
                    or expr.op not in ("<<", ">>"):
                continue
            lhs, rhs = expr.lhs, expr.rhs
            if lhs is None or rhs is None or lhs.ctype is None:
                continue
            amount = rhs.const_value
            if amount is not None:
                if amount >= lhs.ctype.width:
                    yield rule.diagnostic(
                        f"shift amount {amount} >= operand width "
                        f"{lhs.ctype.width} in {behavior.kind} "
                        f"'{behavior.name}'; the result is constant",
                        expr.loc,
                    )
                continue
            # Non-constant amount: flag only when the proven interval
            # never drops below the operand width.
            rng = expr_range(rhs, fields)
            if rng is not None and rng.lo >= lhs.ctype.width:
                yield rule.diagnostic(
                    f"shift amount is proven to stay in "
                    f"[{rng.lo}, {rng.hi}], never below the operand width "
                    f"{lhs.ctype.width}, in {behavior.kind} "
                    f"'{behavior.name}'; the result is constant",
                    expr.loc,
                    fix_hint="reduce the shift distance or widen the "
                             "shifted operand",
                )


@lint_rule("LN003", "sign-compare", Severity.WARNING,
           "A relational comparison between a signed and an unsigned "
           "operand converts both to a common type; negative values then "
           "compare as large positive numbers.")
def _check_sign_compare(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN003"]
    for behavior, _stmts, exprs in ctx.walks():
        for expr in exprs:
            if not isinstance(expr, ast.BinaryOp) \
                    or expr.op not in ("<", "<=", ">", ">="):
                continue
            lhs, rhs = expr.lhs, expr.rhs
            if lhs is None or rhs is None:
                continue
            if lhs.ctype is None or rhs.ctype is None:
                continue
            if lhs.ctype.is_signed == rhs.ctype.is_signed:
                continue
            # A non-negative constant on either side is always safe: it is
            # representable in the common supertype with its value intact.
            consts = [e.const_value for e in (lhs, rhs)
                      if e.const_value is not None]
            if consts and all(value >= 0 for value in consts):
                continue
            yield rule.diagnostic(
                f"comparison '{expr.op}' mixes "
                f"{lhs.ctype} and {rhs.ctype} in {behavior.kind} "
                f"'{behavior.name}'",
                expr.loc,
                fix_hint="cast one operand so both sides share signedness",
            )


@lint_rule("LN004", "state-read-before-write", Severity.WARNING,
           "A custom state element is read by some behavior but has no "
           "initializer and is never written anywhere in the ISA: every "
           "read observes an undefined power-on value.")
def _check_state_read_before_write(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN004"]
    first_read, written = ctx.state_accesses()
    for info in ctx.custom_regs():
        if info.init_values is not None:
            continue
        if info.name in first_read and info.name not in written:
            diag = rule.diagnostic(
                f"custom state '{info.name}' is read but never written and "
                "has no initializer",
                first_read[info.name],
                fix_hint=f"add an initializer to '{info.name}' or write it "
                         "in a setup instruction",
            )
            if info.loc is not None:
                diag.with_note(f"'{info.name}' declared here", info.loc)
            yield diag


@lint_rule("LN005", "unused-state", Severity.WARNING,
           "A custom state element (register, register file or constant "
           "register) is never read or written by any instruction, "
           "always-block or function.")
def _check_unused_state(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN005"]
    first_read, written = ctx.state_accesses()
    referenced = set(first_read) | written
    for info in ctx.isa.custom_state():
        if info.name not in referenced:
            yield rule.diagnostic(
                f"custom state '{info.name}' is never used",
                info.loc,
                fix_hint=f"remove '{info.name}' or reference it in a "
                         "behavior",
            )


@lint_rule("LN006", "unused-function", Severity.WARNING,
           "A function is not reachable from any instruction or "
           "always-block (directly or through other called functions).")
def _check_unused_function(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN006"]
    calls: Dict[Tuple[str, str], Set[str]] = {}
    for behavior, _stmts, exprs in ctx.walks():
        calls[(behavior.kind, behavior.name)] = {
            expr.callee for expr in exprs
            if isinstance(expr, ast.FunctionCall)
        }
    reachable: Set[str] = set()
    frontier: Set[str] = set()
    for (kind, _name), callees in calls.items():
        if kind != "function":
            frontier |= callees
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier |= calls.get(("function", name), set()) - reachable
    for name, sig in ctx.isa.functions.items():
        if name not in reachable:
            yield rule.diagnostic(
                f"function '{name}' is never called from any instruction "
                "or always-block",
                sig.definition.loc,
            )


@lint_rule("LN007", "unused-field", Severity.WARNING,
           "An operand field declared in an instruction's encoding is never "
           "referenced by its behavior; the instruction ignores those "
           "instruction-word bits.")
def _check_unused_field(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN007"]
    for behavior, _stmts, exprs in ctx.walks(include_functions=False):
        if behavior.kind != "instruction" or not behavior.fields:
            continue
        used = {expr.name for expr in exprs
                if isinstance(expr, ast.Identifier)}
        for field in behavior.fields:
            if field not in used:
                yield rule.diagnostic(
                    f"operand field '{field}' of instruction "
                    f"'{behavior.name}' is never used in its behavior",
                    behavior.loc,
                )


@lint_rule("LN008", "unreachable-code", Severity.WARNING,
           "Statements that follow a 'return' or 'spawn' in the same block "
           "can never execute.")
def _check_unreachable(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN008"]
    for behavior, stmts, _exprs in ctx.walks():
        for stmt in stmts:
            if not isinstance(stmt, ast.BlockStmt):
                continue
            for prev, nxt in zip(stmt.statements, stmt.statements[1:]):
                if isinstance(prev, (ast.ReturnStmt, ast.SpawnStmt)):
                    kind = ("return" if isinstance(prev, ast.ReturnStmt)
                            else "spawn")
                    yield rule.diagnostic(
                        f"statement in {behavior.kind} '{behavior.name}' is "
                        f"unreachable after '{kind}'",
                        nxt.loc,
                    )
                    break   # one finding per block is enough


@lint_rule("LN009", "dead-branch", Severity.WARNING,
           "A branch or loop condition folds to a compile-time constant, "
           "so one arm can never execute.")
def _check_dead_branch(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN009"]
    for behavior, stmts, exprs in ctx.walks():
        for stmt in stmts:
            if isinstance(stmt, ast.IfStmt) and stmt.cond is not None \
                    and stmt.cond.const_value is not None:
                always = bool(stmt.cond.const_value)
                dead = "else branch" if always else "then branch"
                yield rule.diagnostic(
                    f"condition is always "
                    f"{'true' if always else 'false'}; the {dead} of "
                    f"this 'if' in {behavior.kind} '{behavior.name}' "
                    "is dead",
                    stmt.cond.loc,
                )
            elif isinstance(stmt, ast.WhileStmt) and not stmt.is_do_while \
                    and stmt.cond is not None \
                    and stmt.cond.const_value == 0:
                yield rule.diagnostic(
                    f"'while' condition is always false in {behavior.kind} "
                    f"'{behavior.name}'; the loop body is dead",
                    stmt.cond.loc,
                )
        for expr in exprs:
            if isinstance(expr, ast.Conditional) and expr.cond is not None \
                    and expr.cond.const_value is not None:
                always = bool(expr.cond.const_value)
                yield rule.diagnostic(
                    f"conditional expression is always "
                    f"{'true' if always else 'false'} in {behavior.kind} "
                    f"'{behavior.name}'",
                    expr.cond.loc,
                )


@lint_rule("LN010", "encoding-overlap", Severity.ERROR,
           "Two instructions of the same ISA match at least one common "
           "instruction word: the decoder cannot distinguish them.")
def _check_encoding_overlap(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN010"]
    for a_name, b_name in ctx.isa.check_encoding_conflicts():
        a = ctx.isa.instructions[a_name]
        b = ctx.isa.instructions[b_name]
        diag = rule.diagnostic(
            f"encodings of '{a_name}' ({a.encoding.pattern}) and "
            f"'{b_name}' ({b.encoding.pattern}) overlap",
            b.loc,
            fix_hint="disambiguate the fixed bits (opcode/funct fields) of "
                     "one encoding",
        )
        if a.loc is not None:
            diag.with_note(f"'{a_name}' defined here", a.loc)
        yield diag


@lint_rule("LN011", "encoding-overlap-cross", Severity.WARNING,
           "Two instructions from *different* ISAXes of the same compile "
           "job match a common instruction word; integrating both on one "
           "core creates a decode conflict.")
def _check_encoding_overlap_cross(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN011"]
    if len(ctx.isas) < 2:
        return
    flat: List[Tuple[str, ElabInstruction]] = []
    for isa in ctx.isas:
        flat.extend((isa.name, instr) for instr in isa.instructions.values())
    for i, (isa_a, a) in enumerate(flat):
        for isa_b, b in flat[i + 1:]:
            if isa_a == isa_b:
                continue        # intra-ISA pairs are LN010's job
            if a.encoding.overlaps(b.encoding):
                diag = rule.diagnostic(
                    f"encoding of '{isa_b}.{b.name}' "
                    f"({b.encoding.pattern}) overlaps "
                    f"'{isa_a}.{a.name}' ({a.encoding.pattern})",
                    b.loc,
                )
                if a.loc is not None:
                    diag.with_note(f"'{isa_a}.{a.name}' defined here", a.loc)
                yield diag


@lint_rule("LN012", "proven-comparison", Severity.WARNING,
           "A comparison whose operands have non-overlapping (or fully "
           "ordered) proven value ranges is decided at compile time for "
           "every reachable input; one outcome can never occur.")
def _check_proven_comparison(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN012"]
    for behavior, _stmts, exprs in ctx.walks():
        fields = ctx.field_ranges(behavior)
        for expr in exprs:
            if not isinstance(expr, ast.BinaryOp) \
                    or expr.op not in _COMPARISON_OPS:
                continue
            lhs, rhs = expr.lhs, expr.rhs
            if lhs is None or rhs is None:
                continue
            # All-constant comparisons fold upstream (LN009's territory);
            # a range proof is only news when a side is dynamic.
            if expr.const_value is not None \
                    or (lhs.const_value is not None
                        and rhs.const_value is not None):
                continue
            # Mixed-signedness comparisons convert values (LN003 warns);
            # the mathematical proof below would not match the semantics.
            if lhs.ctype is None or rhs.ctype is None \
                    or lhs.ctype.is_signed != rhs.ctype.is_signed:
                continue
            a = expr_range(lhs, fields)
            b = expr_range(rhs, fields)
            if a is None or b is None:
                continue
            decided = a.compare(expr.op, b)
            if decided is None:
                continue
            yield rule.diagnostic(
                f"comparison '{expr.op}' is always "
                f"{'true' if decided else 'false'} in {behavior.kind} "
                f"'{behavior.name}': left side stays in [{a.lo}, {a.hi}], "
                f"right side in [{b.lo}, {b.hi}]",
                expr.loc,
                fix_hint="simplify the condition or fix the compared "
                         "bound",
            )


@lint_rule("LN013", "proven-division-by-zero", Severity.WARNING,
           "The divisor's proven value range is exactly zero: every "
           "execution divides by zero (all-ones result in hardware; "
           "undefined in C semantics).")
def _check_proven_division_by_zero(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN013"]
    for behavior, _stmts, exprs in ctx.walks():
        fields = ctx.field_ranges(behavior)
        for expr in exprs:
            if not isinstance(expr, ast.BinaryOp) \
                    or expr.op not in ("/", "%"):
                continue
            rng = expr_range(expr.rhs, fields)
            if rng is not None and rng.always_zero():
                yield rule.diagnostic(
                    f"divisor of '{expr.op}' is proven to be zero on "
                    f"every execution in {behavior.kind} "
                    f"'{behavior.name}'",
                    expr.loc,
                )


@lint_rule("LN014", "array-index-out-of-range", Severity.WARNING,
           "The index's proven value range lies entirely beyond a "
           "register-file or ROM array: every access misses the array "
           "(reads return 0, writes are dropped).")
def _check_array_index_range(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN014"]
    state = ctx.isa.state
    for behavior, _stmts, exprs in ctx.walks():
        fields = ctx.field_ranges(behavior)
        for expr in exprs:
            if not isinstance(expr, ast.IndexExpr) \
                    or not isinstance(expr.base, ast.Identifier):
                continue
            info = state.get(expr.base.name)
            if info is None or info.kind not in ("array_reg", "rom") \
                    or not info.size:
                continue
            rng = expr_range(expr.index, fields)
            if rng is not None and rng.lo >= info.size:
                yield rule.diagnostic(
                    f"index into '{info.name}' ({info.size} elements) is "
                    f"proven to stay in [{rng.lo}, {rng.hi}] in "
                    f"{behavior.kind} '{behavior.name}'; every access is "
                    "out of range",
                    expr.loc,
                    fix_hint=f"bound the index below {info.size} or grow "
                             f"'{info.name}'",
                )


@lint_rule("LN015", "field-dead-bits", Severity.NOTE,
           "An encoding operand field's declared width exceeds the bits "
           "its encoding slices actually fill; the unfilled bits decode "
           "as constant zero.  Well-defined — and occasionally intended — "
           "so this is a note, never a '--werror' gate.")
def _check_field_dead_bits(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN015"]
    for instruction in ctx.isa.instructions.values():
        for name, field in instruction.encoding.fields.items():
            covered = 0
            for placement in field.placements:
                covered |= ((1 << (placement.field_hi + 1)) -
                            (1 << placement.field_lo))
            dead = ((1 << field.width) - 1) & ~covered
            if dead:
                dead_bits = [i for i in range(field.width)
                             if dead & (1 << i)]
                yield rule.diagnostic(
                    f"field '{name}' of instruction '{instruction.name}' "
                    f"is {field.width} bits wide but the encoding never "
                    f"fills bit{'s' if len(dead_bits) != 1 else ''} "
                    f"{', '.join(map(str, dead_bits))}; they always "
                    "decode as 0",
                    instruction.loc,
                )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def _selected_rules(enable: Optional[Sequence[str]],
                    disable: Optional[Sequence[str]]) -> List[LintRule]:
    known = set(LINT_RULES)
    for requested in list(enable or []) + list(disable or []):
        if requested not in known:
            raise ValueError(f"unknown lint rule {requested!r}; known rules: "
                             + ", ".join(sorted(known)))
    codes = set(enable) if enable else known
    codes -= set(disable or [])
    return [LINT_RULES[code] for code in sorted(codes)]


def run_lints(isa: ElaboratedISA,
              enable: Optional[Sequence[str]] = None,
              disable: Optional[Sequence[str]] = None,
              isas: Optional[Sequence[ElaboratedISA]] = None
              ) -> List[Diagnostic]:
    """Run the (selected) lint rules over one elaborated ISA.

    ``enable`` restricts to the given codes; ``disable`` removes codes
    (applied after ``enable``).  ``isas`` supplies the whole compile job
    for cross-ISAX rules; defaults to just ``isa``.
    """
    ctx = LintContext(isa, tuple(isas) if isas else ())
    diagnostics: List[Diagnostic] = []
    for rule in _selected_rules(enable, disable):
        diagnostics.extend(rule.check(ctx))
    return sort_diagnostics(diagnostics)


def lint_cross_isa(isas: Sequence[ElaboratedISA]) -> List[Diagnostic]:
    """Cross-ISAX rules only (LN011), over a whole compile job."""
    if len(isas) < 2:
        return []
    ctx = LintContext(isas[0], tuple(isas))
    return sort_diagnostics(
        list(LINT_RULES["LN011"].check(ctx))
    )


def lint_source(source: str, top: Optional[str] = None,
                filename: str = "<input>",
                enable: Optional[Sequence[str]] = None,
                disable: Optional[Sequence[str]] = None
                ) -> Tuple[ElaboratedISA, List[Diagnostic]]:
    """Elaborate a CoreDSL source and lint it; raises CoreDSLError if the
    source does not elaborate."""
    isa = elaborate(source, top=top, filename=filename)
    return isa, run_lints(isa, enable=enable, disable=disable)
