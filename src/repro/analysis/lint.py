"""The CoreDSL semantic linter (Tier A of the static-analysis subsystem).

Rules run over the *typed* AST of an :class:`ElaboratedISA` — every
expression already carries a ``ctype`` and, where known, a ``const_value``
— so checks are width- and signedness-aware without re-implementing the
type system.  Each rule has a stable code (``LNxxx``), a slug, a default
severity and a docstring; :data:`LINT_RULES` is the registry the CLI's
``--enable``/``--disable`` flags and the documentation generator consume.

The whole rule set shares a single AST traversal: :class:`LintContext`
flattens every behavior's statements and expressions once (and computes
state read/write sets once), so linting stays well under the documented
5% overhead budget of a cold compile (benchmarks/bench_lint_overhead.py).

========  ==========================  ========================================
code      rule                        finding
========  ==========================  ========================================
LN001     implicit-truncation         compound assignment silently truncates
LN002     shift-width                 constant shift amount >= operand width
LN003     sign-compare                relational compare mixes signedness
LN004     state-read-before-write     custom state read but never initialized
LN005     unused-state                custom state element never referenced
LN006     unused-function             function unreachable from any behavior
LN007     unused-field                encoding operand field never used
LN008     unreachable-code            statement after return/spawn
LN009     dead-branch                 branch condition is compile-time constant
LN010     encoding-overlap            two instructions match the same word
LN011     encoding-overlap-cross      overlap across ISAXes of one compile job
========  ==========================  ========================================
"""

from __future__ import annotations

import dataclasses
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.frontend import ast_nodes as ast
from repro.frontend.elaboration import ElabInstruction, ElaboratedISA, elaborate
from repro.frontend.typecheck import StateInfo
from repro.utils.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
    sort_diagnostics,
)

# ---------------------------------------------------------------------------
# Typed-AST walking helpers
# ---------------------------------------------------------------------------

def child_stmts(stmt: ast.Stmt) -> List[ast.Stmt]:
    """Direct child statements of one statement (no recursion)."""
    if isinstance(stmt, ast.BlockStmt):
        return list(stmt.statements)
    if isinstance(stmt, ast.IfStmt):
        return [s for s in (stmt.then_body, stmt.else_body) if s is not None]
    if isinstance(stmt, ast.ForStmt):
        return [s for s in (stmt.init, stmt.step, stmt.body) if s is not None]
    if isinstance(stmt, ast.WhileStmt):
        return [stmt.body] if stmt.body is not None else []
    if isinstance(stmt, ast.SwitchStmt):
        return [case.body for case in stmt.cases if case.body is not None]
    if isinstance(stmt, ast.SpawnStmt):
        return [stmt.body] if stmt.body is not None else []
    return []


def stmt_exprs(stmt: ast.Stmt) -> List[ast.Expr]:
    """Expressions directly owned by one statement (no recursion)."""
    if isinstance(stmt, ast.VarDecl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, ast.Assign):
        return [e for e in (stmt.target, stmt.value) if e is not None]
    if isinstance(stmt, ast.ExprStmt):
        return [stmt.expr] if stmt.expr is not None else []
    if isinstance(stmt, ast.IfStmt):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, ast.ForStmt):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, ast.WhileStmt):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, ast.SwitchStmt):
        exprs = [stmt.value] if stmt.value is not None else []
        exprs.extend(c.label for c in stmt.cases if c.label is not None)
        return exprs
    if isinstance(stmt, ast.ReturnStmt):
        return [stmt.value] if stmt.value is not None else []
    return []


def expr_children(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinaryOp):
        return [e for e in (expr.lhs, expr.rhs) if e is not None]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand] if expr.operand is not None else []
    if isinstance(expr, ast.Conditional):
        return [e for e in (expr.cond, expr.true_value, expr.false_value)
                if e is not None]
    if isinstance(expr, ast.Cast):
        return [expr.operand] if expr.operand is not None else []
    if isinstance(expr, ast.FunctionCall):
        return list(expr.args)
    if isinstance(expr, ast.IndexExpr):
        return [e for e in (expr.base, expr.index) if e is not None]
    if isinstance(expr, ast.RangeExpr):
        return [e for e in (expr.base, expr.hi, expr.lo) if e is not None]
    return []


def iter_stmts(root: Optional[ast.Stmt]) -> Iterator[ast.Stmt]:
    """Pre-order traversal over all statements under (and including) root."""
    if root is None:
        return
    stack: List[ast.Stmt] = [root]
    while stack:
        stmt = stack.pop()
        yield stmt
        stack.extend(reversed(child_stmts(stmt)))


def _flatten_exprs(roots: Iterable[ast.Expr]) -> List[ast.Expr]:
    """All expression nodes under the given roots, pre-order."""
    flat: List[ast.Expr] = []
    stack = list(roots)
    stack.reverse()
    while stack:
        expr = stack.pop()
        flat.append(expr)
        stack.extend(reversed(expr_children(expr)))
    return flat


def iter_exprs(root: Optional[ast.Stmt]) -> Iterator[ast.Expr]:
    """All expression nodes in a statement subtree, pre-order."""
    for stmt in iter_stmts(root):
        yield from _flatten_exprs(stmt_exprs(stmt))


# ---------------------------------------------------------------------------
# Rule framework
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Behavior:
    """One lintable behavior with enough context to locate findings."""

    kind: str                       # "instruction" | "always" | "function"
    name: str
    body: Optional[ast.BlockStmt]
    loc: Optional[SourceLocation] = None
    fields: Tuple[str, ...] = ()    # encoding operand fields (instructions)


#: One pre-computed traversal: (behavior, all statements, all expressions).
Walk = Tuple[Behavior, List[ast.Stmt], List[ast.Expr]]


class LintContext:
    """Shared input for every rule: one primary ISA plus, for cross-job
    rules, all ISAs of the compile job.

    The context owns the single shared AST traversal (:meth:`walks`) and
    the combined state access sets (:meth:`state_accesses`); rules iterate
    the cached results instead of re-walking the tree.
    """

    def __init__(self, isa: ElaboratedISA,
                 isas: Sequence[ElaboratedISA] = ()) -> None:
        self.isa = isa
        self.isas: Tuple[ElaboratedISA, ...] = tuple(isas) or (isa,)
        self._walks: Optional[List[Walk]] = None
        self._accesses: Optional[Tuple[Dict[str, SourceLocation],
                                       Set[str]]] = None

    def walks(self, include_functions: bool = True) -> List[Walk]:
        if self._walks is None:
            behaviors = [
                Behavior("instruction", i.name, i.behavior, i.loc,
                         tuple(i.fields))
                for i in self.isa.instructions.values()
            ]
            behaviors.extend(
                Behavior("always", a.name, a.body, a.loc)
                for a in self.isa.always_blocks.values()
            )
            behaviors.extend(
                Behavior("function", sig.name, sig.definition.body,
                         sig.definition.loc)
                for sig in self.isa.functions.values()
            )
            self._walks = []
            for behavior in behaviors:
                stmts = list(iter_stmts(behavior.body))
                exprs = _flatten_exprs(
                    e for stmt in stmts for e in stmt_exprs(stmt))
                self._walks.append((behavior, stmts, exprs))
        if include_functions:
            return self._walks
        return [w for w in self._walks if w[0].kind != "function"]

    def custom_regs(self) -> List[StateInfo]:
        return [s for s in self.isa.custom_state()
                if s.kind in ("scalar_reg", "array_reg")]

    def state_accesses(self) -> Tuple[Dict[str, SourceLocation], Set[str]]:
        """Combined over every behavior: (first read location per state
        element, set of written state elements).  Compound assignments
        count as both; index/range expressions on a write target count
        their subscripts as reads."""
        if self._accesses is None:
            state = self.isa.state
            first_read: Dict[str, SourceLocation] = {}
            written: Set[str] = set()

            def record_reads(roots: Iterable[ast.Expr]) -> None:
                for node in _flatten_exprs(roots):
                    if isinstance(node, ast.Identifier) \
                            and node.name in state:
                        first_read.setdefault(node.name, node.loc)

            for _behavior, stmts, _exprs in self.walks():
                for stmt in stmts:
                    if not isinstance(stmt, ast.Assign):
                        record_reads(stmt_exprs(stmt))
                        continue
                    target = stmt.target
                    name = None
                    if isinstance(target, ast.Identifier):
                        name = target.name
                    elif isinstance(target, (ast.IndexExpr, ast.RangeExpr)) \
                            and isinstance(target.base, ast.Identifier):
                        name = target.base.name
                    if name is not None and name in state:
                        written.add(name)
                        if stmt.op != "=":
                            first_read.setdefault(
                                name, target.loc if target else stmt.loc)
                    if isinstance(target, ast.IndexExpr):
                        record_reads([target.index] if target.index else [])
                    elif isinstance(target, ast.RangeExpr):
                        record_reads([e for e in (target.hi, target.lo)
                                      if e is not None])
                    if stmt.value is not None:
                        record_reads([stmt.value])
            self._accesses = (first_read, written)
        return self._accesses


RuleCheck = Callable[[LintContext], Iterable[Diagnostic]]


@dataclasses.dataclass(frozen=True)
class LintRule:
    code: str
    name: str
    severity: Severity
    description: str
    check: RuleCheck

    def diagnostic(self, message: str, loc: Optional[SourceLocation] = None,
                   fix_hint: Optional[str] = None) -> Diagnostic:
        return Diagnostic(self.code, self.severity, message, loc,
                          rule=self.name, fix_hint=fix_hint)


#: Registry: code -> rule.  Ordered by code; the CLI and docs rely on it.
LINT_RULES: Dict[str, LintRule] = {}


def lint_rule(code: str, name: str, severity: Severity,
              description: str) -> Callable[[RuleCheck], RuleCheck]:
    def wrap(check: RuleCheck) -> RuleCheck:
        if code in LINT_RULES:
            raise ValueError(f"duplicate lint rule code {code}")
        LINT_RULES[code] = LintRule(code, name, severity, description, check)
        return check
    return wrap


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

@lint_rule("LN001", "implicit-truncation", Severity.WARNING,
           "A compound assignment ('a op= b') truncates the operation's "
           "result back to the target's width; a right-hand side wider than "
           "the target silently loses its upper bits.")
def _check_implicit_truncation(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN001"]
    for behavior, stmts, _exprs in ctx.walks():
        for stmt in stmts:
            if not isinstance(stmt, ast.Assign) or stmt.op == "=":
                continue
            target, value = stmt.target, stmt.value
            if target is None or value is None:
                continue
            if target.ctype is None or value.ctype is None:
                continue
            if value.ctype.width > target.ctype.width:
                yield rule.diagnostic(
                    f"'{stmt.op}' truncates a {value.ctype.width}-bit value "
                    f"to the {target.ctype.width}-bit target in "
                    f"{behavior.kind} '{behavior.name}'",
                    stmt.loc,
                    fix_hint="widen the target or cast the right-hand side "
                             "explicitly",
                )


@lint_rule("LN002", "shift-width", Severity.WARNING,
           "A constant shift amount greater than or equal to the operand "
           "width always produces 0 (or the sign fill); almost certainly "
           "an off-by-one in the shift distance.")
def _check_shift_width(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN002"]
    for behavior, _stmts, exprs in ctx.walks():
        for expr in exprs:
            if not isinstance(expr, ast.BinaryOp) \
                    or expr.op not in ("<<", ">>"):
                continue
            lhs, rhs = expr.lhs, expr.rhs
            if lhs is None or rhs is None or lhs.ctype is None:
                continue
            amount = rhs.const_value
            if amount is not None and amount >= lhs.ctype.width:
                yield rule.diagnostic(
                    f"shift amount {amount} >= operand width "
                    f"{lhs.ctype.width} in {behavior.kind} "
                    f"'{behavior.name}'; the result is constant",
                    expr.loc,
                )


@lint_rule("LN003", "sign-compare", Severity.WARNING,
           "A relational comparison between a signed and an unsigned "
           "operand converts both to a common type; negative values then "
           "compare as large positive numbers.")
def _check_sign_compare(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN003"]
    for behavior, _stmts, exprs in ctx.walks():
        for expr in exprs:
            if not isinstance(expr, ast.BinaryOp) \
                    or expr.op not in ("<", "<=", ">", ">="):
                continue
            lhs, rhs = expr.lhs, expr.rhs
            if lhs is None or rhs is None:
                continue
            if lhs.ctype is None or rhs.ctype is None:
                continue
            if lhs.ctype.is_signed == rhs.ctype.is_signed:
                continue
            # A non-negative constant on either side is always safe: it is
            # representable in the common supertype with its value intact.
            consts = [e.const_value for e in (lhs, rhs)
                      if e.const_value is not None]
            if consts and all(value >= 0 for value in consts):
                continue
            yield rule.diagnostic(
                f"comparison '{expr.op}' mixes "
                f"{lhs.ctype} and {rhs.ctype} in {behavior.kind} "
                f"'{behavior.name}'",
                expr.loc,
                fix_hint="cast one operand so both sides share signedness",
            )


@lint_rule("LN004", "state-read-before-write", Severity.WARNING,
           "A custom state element is read by some behavior but has no "
           "initializer and is never written anywhere in the ISA: every "
           "read observes an undefined power-on value.")
def _check_state_read_before_write(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN004"]
    first_read, written = ctx.state_accesses()
    for info in ctx.custom_regs():
        if info.init_values is not None:
            continue
        if info.name in first_read and info.name not in written:
            diag = rule.diagnostic(
                f"custom state '{info.name}' is read but never written and "
                "has no initializer",
                first_read[info.name],
                fix_hint=f"add an initializer to '{info.name}' or write it "
                         "in a setup instruction",
            )
            if info.loc is not None:
                diag.with_note(f"'{info.name}' declared here", info.loc)
            yield diag


@lint_rule("LN005", "unused-state", Severity.WARNING,
           "A custom state element (register, register file or constant "
           "register) is never read or written by any instruction, "
           "always-block or function.")
def _check_unused_state(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN005"]
    first_read, written = ctx.state_accesses()
    referenced = set(first_read) | written
    for info in ctx.isa.custom_state():
        if info.name not in referenced:
            yield rule.diagnostic(
                f"custom state '{info.name}' is never used",
                info.loc,
                fix_hint=f"remove '{info.name}' or reference it in a "
                         "behavior",
            )


@lint_rule("LN006", "unused-function", Severity.WARNING,
           "A function is not reachable from any instruction or "
           "always-block (directly or through other called functions).")
def _check_unused_function(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN006"]
    calls: Dict[Tuple[str, str], Set[str]] = {}
    for behavior, _stmts, exprs in ctx.walks():
        calls[(behavior.kind, behavior.name)] = {
            expr.callee for expr in exprs
            if isinstance(expr, ast.FunctionCall)
        }
    reachable: Set[str] = set()
    frontier: Set[str] = set()
    for (kind, _name), callees in calls.items():
        if kind != "function":
            frontier |= callees
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier |= calls.get(("function", name), set()) - reachable
    for name, sig in ctx.isa.functions.items():
        if name not in reachable:
            yield rule.diagnostic(
                f"function '{name}' is never called from any instruction "
                "or always-block",
                sig.definition.loc,
            )


@lint_rule("LN007", "unused-field", Severity.WARNING,
           "An operand field declared in an instruction's encoding is never "
           "referenced by its behavior; the instruction ignores those "
           "instruction-word bits.")
def _check_unused_field(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN007"]
    for behavior, _stmts, exprs in ctx.walks(include_functions=False):
        if behavior.kind != "instruction" or not behavior.fields:
            continue
        used = {expr.name for expr in exprs
                if isinstance(expr, ast.Identifier)}
        for field in behavior.fields:
            if field not in used:
                yield rule.diagnostic(
                    f"operand field '{field}' of instruction "
                    f"'{behavior.name}' is never used in its behavior",
                    behavior.loc,
                )


@lint_rule("LN008", "unreachable-code", Severity.WARNING,
           "Statements that follow a 'return' or 'spawn' in the same block "
           "can never execute.")
def _check_unreachable(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN008"]
    for behavior, stmts, _exprs in ctx.walks():
        for stmt in stmts:
            if not isinstance(stmt, ast.BlockStmt):
                continue
            for prev, nxt in zip(stmt.statements, stmt.statements[1:]):
                if isinstance(prev, (ast.ReturnStmt, ast.SpawnStmt)):
                    kind = ("return" if isinstance(prev, ast.ReturnStmt)
                            else "spawn")
                    yield rule.diagnostic(
                        f"statement in {behavior.kind} '{behavior.name}' is "
                        f"unreachable after '{kind}'",
                        nxt.loc,
                    )
                    break   # one finding per block is enough


@lint_rule("LN009", "dead-branch", Severity.WARNING,
           "A branch or loop condition folds to a compile-time constant, "
           "so one arm can never execute.")
def _check_dead_branch(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN009"]
    for behavior, stmts, exprs in ctx.walks():
        for stmt in stmts:
            if isinstance(stmt, ast.IfStmt) and stmt.cond is not None \
                    and stmt.cond.const_value is not None:
                always = bool(stmt.cond.const_value)
                dead = "else branch" if always else "then branch"
                yield rule.diagnostic(
                    f"condition is always "
                    f"{'true' if always else 'false'}; the {dead} of "
                    f"this 'if' in {behavior.kind} '{behavior.name}' "
                    "is dead",
                    stmt.cond.loc,
                )
            elif isinstance(stmt, ast.WhileStmt) and not stmt.is_do_while \
                    and stmt.cond is not None \
                    and stmt.cond.const_value == 0:
                yield rule.diagnostic(
                    f"'while' condition is always false in {behavior.kind} "
                    f"'{behavior.name}'; the loop body is dead",
                    stmt.cond.loc,
                )
        for expr in exprs:
            if isinstance(expr, ast.Conditional) and expr.cond is not None \
                    and expr.cond.const_value is not None:
                always = bool(expr.cond.const_value)
                yield rule.diagnostic(
                    f"conditional expression is always "
                    f"{'true' if always else 'false'} in {behavior.kind} "
                    f"'{behavior.name}'",
                    expr.cond.loc,
                )


@lint_rule("LN010", "encoding-overlap", Severity.ERROR,
           "Two instructions of the same ISA match at least one common "
           "instruction word: the decoder cannot distinguish them.")
def _check_encoding_overlap(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN010"]
    for a_name, b_name in ctx.isa.check_encoding_conflicts():
        a = ctx.isa.instructions[a_name]
        b = ctx.isa.instructions[b_name]
        diag = rule.diagnostic(
            f"encodings of '{a_name}' ({a.encoding.pattern}) and "
            f"'{b_name}' ({b.encoding.pattern}) overlap",
            b.loc,
            fix_hint="disambiguate the fixed bits (opcode/funct fields) of "
                     "one encoding",
        )
        if a.loc is not None:
            diag.with_note(f"'{a_name}' defined here", a.loc)
        yield diag


@lint_rule("LN011", "encoding-overlap-cross", Severity.WARNING,
           "Two instructions from *different* ISAXes of the same compile "
           "job match a common instruction word; integrating both on one "
           "core creates a decode conflict.")
def _check_encoding_overlap_cross(ctx: LintContext) -> Iterator[Diagnostic]:
    rule = LINT_RULES["LN011"]
    if len(ctx.isas) < 2:
        return
    flat: List[Tuple[str, ElabInstruction]] = []
    for isa in ctx.isas:
        flat.extend((isa.name, instr) for instr in isa.instructions.values())
    for i, (isa_a, a) in enumerate(flat):
        for isa_b, b in flat[i + 1:]:
            if isa_a == isa_b:
                continue        # intra-ISA pairs are LN010's job
            if a.encoding.overlaps(b.encoding):
                diag = rule.diagnostic(
                    f"encoding of '{isa_b}.{b.name}' "
                    f"({b.encoding.pattern}) overlaps "
                    f"'{isa_a}.{a.name}' ({a.encoding.pattern})",
                    b.loc,
                )
                if a.loc is not None:
                    diag.with_note(f"'{isa_a}.{a.name}' defined here", a.loc)
                yield diag


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def _selected_rules(enable: Optional[Sequence[str]],
                    disable: Optional[Sequence[str]]) -> List[LintRule]:
    known = set(LINT_RULES)
    for requested in list(enable or []) + list(disable or []):
        if requested not in known:
            raise ValueError(f"unknown lint rule {requested!r}; known rules: "
                             + ", ".join(sorted(known)))
    codes = set(enable) if enable else known
    codes -= set(disable or [])
    return [LINT_RULES[code] for code in sorted(codes)]


def run_lints(isa: ElaboratedISA,
              enable: Optional[Sequence[str]] = None,
              disable: Optional[Sequence[str]] = None,
              isas: Optional[Sequence[ElaboratedISA]] = None
              ) -> List[Diagnostic]:
    """Run the (selected) lint rules over one elaborated ISA.

    ``enable`` restricts to the given codes; ``disable`` removes codes
    (applied after ``enable``).  ``isas`` supplies the whole compile job
    for cross-ISAX rules; defaults to just ``isa``.
    """
    ctx = LintContext(isa, tuple(isas) if isas else ())
    diagnostics: List[Diagnostic] = []
    for rule in _selected_rules(enable, disable):
        diagnostics.extend(rule.check(ctx))
    return sort_diagnostics(diagnostics)


def lint_cross_isa(isas: Sequence[ElaboratedISA]) -> List[Diagnostic]:
    """Cross-ISAX rules only (LN011), over a whole compile job."""
    if len(isas) < 2:
        return []
    ctx = LintContext(isas[0], tuple(isas))
    return sort_diagnostics(
        list(LINT_RULES["LN011"].check(ctx))
    )


def lint_source(source: str, top: Optional[str] = None,
                filename: str = "<input>",
                enable: Optional[Sequence[str]] = None,
                disable: Optional[Sequence[str]] = None
                ) -> Tuple[ElaboratedISA, List[Diagnostic]]:
    """Elaborate a CoreDSL source and lint it; raises CoreDSLError if the
    source does not elaborate."""
    isa = elaborate(source, top=top, filename=filename)
    return isa, run_lints(isa, enable=enable, disable=disable)
