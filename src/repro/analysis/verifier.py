"""The IR verifier (Tier B of the static-analysis subsystem).

Checks the invariants the lowering pipeline promises but nothing used to
enforce end-to-end: SSA scoping, per-op structural invariants, constants
inside their type's range, acyclic combinational dataflow, schedule
legality (precedence and datasheet windows) and module port wiring.
Findings are the same structured :class:`~repro.utils.diagnostics.Diagnostic`
records the frontend linter emits, with ``IVxxx`` codes; structural
findings (IV001-IV007) are errors — a violated invariant means a later
stage (or the generated RTL) is silently wrong — while the range checks
(IV008-IV009, proved by :mod:`repro.analysis.absint`) are warnings:
the behaviour is well-defined, just almost certainly unintended.

========  ========================  =======================================
code      check                     invariant
========  ========================  =======================================
IV001     ssa-def-before-use        every operand defined in the same graph
IV002     op-invariant              per-op structural verifier (widths, attrs)
IV003     constant-range            constant/ROM values fit the element width
IV004     comb-cycle                dataflow graphs are acyclic
IV005     schedule-precedence       start times respect dependence edges
IV006     schedule-window           start times inside [earliest, latest]
IV007     module-ports              every declared output port is driven
IV008     shift-always-flushed      non-const shift amounts can stay < width
IV009     rom-index-out-of-range    some ROM index can land inside the table
========  ========================  =======================================

The pipeline (:func:`repro.hls.longnail.compile_isax`) runs these between
phases when ``REPRO_IR_VERIFY=1`` (see :func:`ir_verify_enabled`), the
fuzz oracle stack always runs them (oracle kind ``irverify``), and
``repro-longnail lint`` runs them on demand.
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING, Dict, Iterator, List, Sequence

from repro.ir.core import Graph, IRError, Operation, Value
from repro.utils.bits import mask
from repro.utils.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:                              # imports used only in hints
    from repro.dialects.hw import HWModule
    from repro.hls.longnail import IsaxArtifact
    from repro.scheduling.scheduler import ScheduleResult


@dataclasses.dataclass(frozen=True)
class IRCheck:
    """Metadata for one verifier check (mirrors :class:`LintRule`).

    Structural invariants (IV001-IV007) are errors — a violation means a
    later stage is silently wrong.  Range findings (IV008-IV009) prove a
    *well-defined but almost certainly unintended* behaviour from the
    abstract-interpretation engine, so they carry warning severity and
    never fail :func:`require_valid` or the fuzz ``irverify`` oracle.
    """

    code: str
    name: str
    description: str
    severity: Severity = Severity.ERROR

    def diagnostic(self, message: str) -> Diagnostic:
        return Diagnostic(self.code, self.severity, message, rule=self.name)


#: Registry: code -> check metadata (consumed by docs and the CLI).
IR_CHECKS: Dict[str, IRCheck] = {
    check.code: check
    for check in (
        IRCheck("IV001", "ssa-def-before-use",
                "Every operand of every operation must be produced by an "
                "operation of the same graph or be a block argument; a "
                "value imported from another graph breaks SSA scoping."),
        IRCheck("IV002", "op-invariant",
                "Each operation must satisfy its registered structural "
                "verifier: operand/result width consistency, required "
                "attributes, operand counts."),
        IRCheck("IV003", "constant-range",
                "'comb.constant' values must fit the result width and "
                "'lil.rom' initializer values must fit the ROM's element "
                "width; out-of-range constants silently wrap in RTL."),
        IRCheck("IV004", "comb-cycle",
                "Dataflow graphs must be acyclic; a combinational cycle "
                "is unschedulable and unsynthesizable."),
        IRCheck("IV005", "schedule-precedence",
                "A solved schedule must give every operation a start time "
                "and respect every dependence edge: "
                "start(i) + latency(i) [+1 for chain breakers] <= start(j)."),
        IRCheck("IV006", "schedule-window",
                "Every scheduled operation must start inside the "
                "[earliest, latest] window of its linked operator type "
                "(the virtual-datasheet interface constraints)."),
        IRCheck("IV007", "module-ports",
                "Every declared output port of a hardware module must be "
                "driven by exactly one 'hw.output'; undriven ports elide "
                "logic from the RTL."),
        IRCheck("IV008", "shift-always-flushed",
                "A non-constant shift amount whose proven interval never "
                "drops below the operand width makes the shift always "
                "produce its flush value; the data operand is dead.",
                severity=Severity.WARNING),
        IRCheck("IV009", "rom-index-out-of-range",
                "A ROM read whose proven index interval lies entirely "
                "beyond the table reads the out-of-range default (0) on "
                "every cycle; the table contents are dead.",
                severity=Severity.WARNING),
    )
}


class IRVerifyError(IRError):
    """Raised by :func:`require_valid` when verification found errors.

    Carries the full diagnostic list so callers (pipeline hooks, fuzz
    oracles, the CLI) can render precise findings instead of one string.
    """

    def __init__(self, stage: str, diagnostics: Sequence[Diagnostic]):
        self.stage = stage
        self.diagnostics = list(diagnostics)
        lines = [f"IR verification failed after '{stage}' "
                 f"({len(self.diagnostics)} finding"
                 f"{'s' if len(self.diagnostics) != 1 else ''}):"]
        lines.extend("  " + d.render().splitlines()[0]
                     for d in self.diagnostics)
        super().__init__("\n".join(lines))


def ir_verify_enabled() -> bool:
    """True when ``REPRO_IR_VERIFY=1``: the pipeline verifies the IR after
    every lowering phase (off by default; always on inside fuzz oracles)."""
    return os.environ.get("REPRO_IR_VERIFY", "") == "1"


def require_valid(stage: str, diagnostics: Sequence[Diagnostic]) -> None:
    """Raise :class:`IRVerifyError` if any diagnostic is an error."""
    errors = [d for d in diagnostics if d.is_error]
    if errors:
        raise IRVerifyError(stage, errors)


# ---------------------------------------------------------------------------
# Graph-level checks (IV001-IV004)
# ---------------------------------------------------------------------------

def _op_label(graph: Graph, op: Operation, index: int) -> str:
    return f"'{op.name}' (#{index} in graph '{graph.name}')"


def _check_ssa(graph: Graph) -> Iterator[Diagnostic]:
    check = IR_CHECKS["IV001"]
    members = set(map(id, graph.operations))
    block_args = set(map(id, graph.block.arguments))
    for index, op in enumerate(graph.operations):
        for operand_index, operand in enumerate(op.operands):
            if operand.owner is None:
                if id(operand) not in block_args:
                    yield check.diagnostic(
                        f"operand {operand_index} of "
                        f"{_op_label(graph, op, index)} is a block argument "
                        "of a different block")
                continue
            if id(operand.owner) not in members:
                yield check.diagnostic(
                    f"operand {operand_index} of "
                    f"{_op_label(graph, op, index)} is defined by "
                    f"'{operand.owner.name}' outside this graph")


def _check_op_invariants(graph: Graph) -> Iterator[Diagnostic]:
    op_check = IR_CHECKS["IV002"]
    const_check = IR_CHECKS["IV003"]
    for index, op in enumerate(graph.operations):
        # Constants get the dedicated, more precise IV003 wording; the
        # generic op verifier would report the same defect under IV002.
        if op.name == "comb.constant":
            value = op.attr("value")
            width = op.result.width
            if value is None or value < 0 or value > mask(width):
                yield const_check.diagnostic(
                    f"{_op_label(graph, op, index)}: value {value!r} out of "
                    f"range for a {width}-bit constant "
                    f"(valid range [0, {mask(width)}])")
            continue
        if op.name == "lil.rom":
            yield from _check_rom(graph, op, index)
        try:
            op.verify()
        except IRError as err:
            yield op_check.diagnostic(
                f"{_op_label(graph, op, index)}: {err}")


def _check_rom(graph: Graph, op: Operation, index: int
               ) -> Iterator[Diagnostic]:
    check = IR_CHECKS["IV003"]
    count = op.attr("count") or 1
    element_width = op.result.width // count
    for position, value in enumerate(op.attr("values") or []):
        if value < 0 or value > mask(element_width):
            yield check.diagnostic(
                f"{_op_label(graph, op, index)}: ROM value {value} at "
                f"index {position} out of range for the {element_width}-bit "
                f"element type of '{op.attr('reg')}'")


def _check_acyclic(graph: Graph) -> Iterator[Diagnostic]:
    check = IR_CHECKS["IV004"]
    try:
        graph.topological_order()
    except IRError as err:
        yield check.diagnostic(str(err))
    except RecursionError:
        yield check.diagnostic(
            f"graph '{graph.name}' is too deep to order; almost certainly "
            "cyclic")


_SHIFT_OPS = ("comb.shl", "comb.shru", "comb.shrs")


def _is_constant_value(value: Value) -> bool:
    owner = value.owner
    return owner is not None and owner.name in ("comb.constant",
                                                "hwarith.constant")


def _check_ranges(graph: Graph) -> Iterator[Diagnostic]:
    """Range findings proved by the abstract-interpretation engine
    (IV008-IV009).  Only runs when the graph is structurally sound enough
    to analyze (acyclic); the structural checks report the rest."""
    from repro.analysis.absint import analyze_graph
    try:
        graph.topological_order()
    except (IRError, RecursionError):
        return
    facts = analyze_graph(graph)
    shift_check = IR_CHECKS["IV008"]
    rom_check = IR_CHECKS["IV009"]
    for index, op in enumerate(graph.operations):
        if op.name in _SHIFT_OPS and len(op.operands) == 2:
            amount = op.operands[1]
            width = op.operands[0].width
            # Constant amounts are LN002 / constant-folding territory;
            # this check proves dead *dynamic* shifts.
            if not _is_constant_value(amount):
                fact = facts.get(amount)
                if fact.lo >= width:
                    flush = ("a sign fill" if op.name == "comb.shrs"
                             else "0")
                    yield shift_check.diagnostic(
                        f"{_op_label(graph, op, index)}: the shift amount "
                        f"is proven to stay in [{fact.lo}, {fact.hi}], "
                        f"never below the {width}-bit operand width — the "
                        f"result is always {flush}")
        elif op.name == "comb.rom":
            values = op.attr("values") or []
            fact = facts.get(op.operands[0])
            if values and fact.lo >= len(values):
                yield rom_check.diagnostic(
                    f"{_op_label(graph, op, index)}: the index is proven "
                    f"to stay in [{fact.lo}, {fact.hi}], beyond the "
                    f"{len(values)}-entry table — every read returns 0")


def verify_graph(graph: Graph) -> List[Diagnostic]:
    """Run the structural checks (IV001-IV004) and the range checks
    (IV008-IV009) over one dataflow graph."""
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_ssa(graph))
    diagnostics.extend(_check_op_invariants(graph))
    diagnostics.extend(_check_acyclic(graph))
    diagnostics.extend(_check_ranges(graph))
    return diagnostics


# ---------------------------------------------------------------------------
# Schedule-level checks (IV005-IV006)
# ---------------------------------------------------------------------------

def verify_schedule(schedule: "ScheduleResult") -> List[Diagnostic]:
    """Check a solved schedule for legality (IV005-IV006).

    This re-validates what :meth:`LongnailProblem.verify` enforces, but as
    structured diagnostics that name every violated edge/window instead of
    stopping at the first."""
    diagnostics: List[Diagnostic] = []
    problem = schedule.problem
    graph_name = schedule.graph.name
    precedence = IR_CHECKS["IV005"]
    window = IR_CHECKS["IV006"]

    missing = [op for op in problem.operations
               if op not in problem.start_time]
    for op in missing:
        diagnostics.append(precedence.diagnostic(
            f"operation {op!r} of graph '{graph_name}' has no start time"))
    if missing:
        return diagnostics

    for dep in problem.dependences:
        i, j = dep.source, dep.target
        finish = problem.start_time[i] + problem.latency(i)
        if dep.is_chain_breaker:
            finish += 1
        if finish > problem.start_time[j]:
            diagnostics.append(precedence.diagnostic(
                f"graph '{graph_name}': {i!r} finishes at stage {finish} "
                f"but its {'chain-broken ' if dep.is_chain_breaker else ''}"
                f"successor {j!r} starts at stage "
                f"{problem.start_time[j]}"))

    for op in problem.operations:
        operator_type = problem.linked_operator_type(op)
        start = problem.start_time[op]
        if not operator_type.earliest <= start <= operator_type.latest:
            diagnostics.append(window.diagnostic(
                f"graph '{graph_name}': {op!r} scheduled at stage {start}, "
                f"outside the [{operator_type.earliest}, "
                f"{operator_type.latest}] window of operator type "
                f"'{operator_type.name}'"))
    return diagnostics


# ---------------------------------------------------------------------------
# Module-level checks (IV007 + body graph)
# ---------------------------------------------------------------------------

def verify_module(module: "HWModule") -> List[Diagnostic]:
    """Check one generated hardware module: the body graph's structural
    invariants plus port wiring (IV007)."""
    diagnostics = verify_graph(module.body)
    check = IR_CHECKS["IV007"]
    declared = {port.name for port in module.outputs}
    driven: Dict[str, int] = {}
    for op in module.body.operations:
        if op.name == "hw.output":
            name = op.attr("name")
            driven[name] = driven.get(name, 0) + 1
    for name in sorted(declared - set(driven)):
        diagnostics.append(check.diagnostic(
            f"module '{module.name}': output port '{name}' is not driven"))
    for name in sorted(set(driven) - declared):
        diagnostics.append(check.diagnostic(
            f"module '{module.name}': 'hw.output' drives undeclared "
            f"port '{name}'"))
    for name, times in sorted(driven.items()):
        if times > 1 and name in declared:
            diagnostics.append(check.diagnostic(
                f"module '{module.name}': output port '{name}' is driven "
                f"{times} times"))
    return diagnostics


# ---------------------------------------------------------------------------
# Whole-artifact entry point
# ---------------------------------------------------------------------------

def verify_artifact_ir(artifact: "IsaxArtifact") -> List[Diagnostic]:
    """Verify every functionality of a compiled ISAX: the lil graph, the
    solved schedule and the generated hardware module."""
    diagnostics: List[Diagnostic] = []
    for functionality in artifact.functionalities.values():
        diagnostics.extend(verify_graph(functionality.graph))
        diagnostics.extend(verify_schedule(functionality.schedule))
        diagnostics.extend(verify_module(functionality.module))
    return diagnostics
