"""Execution modes (paper Section 3.2) and post-scheduling mode selection
(Section 4.3).

The concrete sub-interface variant is selected *after* scheduling, based on
the virtual datasheet: if the operation's start time is within the base
core's native window for the used interface, the in-pipeline version is
used.  Otherwise, if the operation came from a ``spawn`` block, the
decoupled version is used, else the tightly-coupled version.
"""

from __future__ import annotations

import enum

from repro.dialects import lil
from repro.ir.core import Operation
from repro.scaiev.datasheet import VirtualDatasheet


class ExecutionMode(str, enum.Enum):
    IN_PIPELINE = "in_pipeline"
    TIGHTLY_COUPLED = "tightly_coupled"
    DECOUPLED = "decoupled"
    ALWAYS = "always"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Modes that may be used per sub-interface family (Section 3.2: "the other
#: mechanisms may be used only for the WrRD, RdMem, or WrMem sub-interfaces",
#: which we extend to custom-register writes as SCAIE-V manages their hazards
#: the same way).
_DECOUPLABLE = ("lil.write_rd", "lil.read_mem", "lil.write_mem",
                "lil.write_custreg")


def select_mode(op: Operation, stage: int, datasheet: VirtualDatasheet,
                in_always: bool = False) -> ExecutionMode:
    """Select the execution mode for one scheduled interface operation."""
    if in_always:
        return ExecutionMode.ALWAYS
    if op.name in ("lil.read_custreg", "lil.write_custreg"):
        timing = datasheet.custom_register_timing(
            write=op.name == "lil.write_custreg"
        )
    else:
        interface = lil.INTERFACE_OF[op.name]
        timing = datasheet.timing(interface)
    if timing.earliest <= stage <= timing.latest:
        return ExecutionMode.IN_PIPELINE
    if stage < timing.earliest:
        raise ValueError(
            f"'{op.name}' scheduled at {stage} before its earliest stage "
            f"{timing.earliest}"
        )
    if op.name not in _DECOUPLABLE:
        raise ValueError(
            f"'{op.name}' cannot be used outside its native window "
            f"[{timing.earliest}, {timing.latest}]"
        )
    if op.attr("spawn"):
        return ExecutionMode.DECOUPLED
    return ExecutionMode.TIGHTLY_COUPLED
