"""Arbitration between multiple ISAX modules (paper Section 3.3).

SCAIE-V multiplexes incoming payloads from different instructions based on
the current opcode processed in the pipeline, so an HLS tool can generate
modules for multiple instructions without worrying about multiplexing their
interfaces.  If multiple ISAXes want to write in the same clock cycle, a
static arbitration priority ensures a deterministic order.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.scaiev.config import IsaxConfig


@dataclasses.dataclass
class InterfaceMux:
    """One multiplexer in front of a core-side sub-interface port."""

    interface: str
    width: int
    users: List[str]                      # functionality names, priority order

    @property
    def ways(self) -> int:
        return len(self.users)


@dataclasses.dataclass
class ArbitrationPlan:
    muxes: List[InterfaceMux]
    #: Deterministic static priority over functionalities (Section 3.3).
    priority: List[str]

    def mux_for(self, interface: str) -> InterfaceMux:
        for mux in self.muxes:
            if mux.interface == interface:
                return mux
        raise KeyError(f"no users of sub-interface '{interface}'")

    @property
    def total_mux_bits(self) -> int:
        """Sum over muxes of (ways - 1) * width: 2:1-mux-equivalents."""
        return sum((m.ways - 1) * m.width for m in self.muxes)


#: Payload widths of the write-side interfaces that need arbitration.
_WRITE_WIDTHS = {
    "WrRD": 32,
    "WrPC": 32,
    "WrMem": 64 + 1,     # address + data (+ strobe)
}


def _payload_width(interface: str, configs: List[IsaxConfig]) -> int:
    if interface in _WRITE_WIDTHS:
        return _WRITE_WIDTHS[interface]
    if interface.startswith("Wr") and interface.endswith(".data"):
        reg_name = interface[2:-len(".data")]
        for config in configs:
            reg = config.register(reg_name)
            if reg is not None:
                return reg.width
    if interface.startswith("Wr") and interface.endswith(".addr"):
        return 5
    return 32


def plan_arbitration(configs: List[IsaxConfig]) -> ArbitrationPlan:
    """Compute the interface muxing for a set of ISAXes on one core.

    Priority is static and deterministic: functionalities are ordered by
    (ISAX name, functionality name); decoupled writers rank *behind*
    in-pipeline writers of the same interface, matching SCAIE-V's behavior
    of delaying decoupled commits when the pipeline owns the resource.
    """
    users: Dict[str, List[Tuple[int, str, str]]] = {}
    for config in sorted(configs, key=lambda c: c.name):
        for func in config.functionalities:
            for entry in func.schedule:
                if not entry.interface.startswith("Wr"):
                    continue
                rank = 1 if entry.mode == "decoupled" else 0
                users.setdefault(entry.interface, []).append(
                    (rank, config.name, func.name)
                )
    muxes = []
    priority: List[str] = []
    for interface in sorted(users):
        entries = sorted(users[interface])
        names = [f"{isax}:{func}" for _rank, isax, func in entries]
        for name in names:
            if name not in priority:
                priority.append(name)
        if len(names) > 1:
            muxes.append(InterfaceMux(
                interface=interface,
                width=_payload_width(interface, configs),
                users=names,
            ))
    return ArbitrationPlan(muxes=muxes, priority=priority)
