"""The SCAIE-V sub-interface catalogue (paper Table 1).

Each :class:`SubInterface` describes one operation an ISAX can request from
the host core: its operands, results, and usage rules.  SCAIE-V creates
individual sub-interfaces for each custom register on demand
(``Rd<NAME>`` / ``Wr<NAME>.addr`` / ``Wr<NAME>.data``); ``AW`` denotes the
register's address width and ``DW`` its data width.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Tuple


def address_width(elements: int) -> int:
    """ceil(log2(num. elements)), minimum 1 (Table 1 caption)."""
    return max(1, math.ceil(math.log2(elements))) if elements > 1 else 1


@dataclasses.dataclass(frozen=True)
class SubInterface:
    """One row of Table 1.

    ``operands``/``results`` are (name, width-expression) pairs, where the
    width is an int or one of the symbolic strings ``"AW"``/``"DW"``.
    ``per_stage`` marks the stall/flush family that may be instantiated per
    pipeline stage (the exception to the once-per-instruction rule).
    """

    name: str
    operands: Tuple = ()
    results: Tuple = ()
    description: str = ""
    per_stage: bool = False
    is_write: bool = False

    def resolve_width(self, symbol, aw: int = 1, dw: int = 32) -> int:
        if symbol == "AW":
            return aw
        if symbol == "DW":
            return dw
        return int(symbol)


def standard_interfaces(xlen: int = 32) -> Dict[str, SubInterface]:
    """The sub-interface operations for an ``xlen``-bit host core (Table 1)."""
    i32 = xlen
    table = [
        SubInterface("RdInstr", (), (("instr", i32),),
                     "Read the full instruction word."),
        SubInterface("RdRS1", (), (("data", i32),),
                     "Read the value of the GPR indicated by the rs1 "
                     "encoding field."),
        SubInterface("RdRS2", (), (("data", i32),),
                     "Read the value of the GPR indicated by the rs2 "
                     "encoding field."),
        SubInterface("RdCustReg", (("index", "AW"), ("pred", 1)),
                     (("data", "DW"),),
                     "Read the value of a custom register at the given "
                     "index."),
        SubInterface("RdPC", (), (("pc", i32),),
                     "Read the program counter."),
        SubInterface("RdMem", (("address", i32), ("pred", 1)),
                     (("data", i32),),
                     "Load a word from main memory."),
        SubInterface("WrRD", (("value", i32), ("pred", 1)), (),
                     "Write a value to the GPR indicated by the rd encoding "
                     "field.", is_write=True),
        SubInterface("WrCustReg.addr", (("index", "AW"),), (),
                     "Submit an index for a write to a custom register.",
                     is_write=True),
        SubInterface("WrCustReg.data", (("value", "DW"), ("pred", 1)), (),
                     "Write a value to a custom register at the previously "
                     "submitted index.", is_write=True),
        SubInterface("WrPC", (("newPC", i32), ("pred", 1)), (),
                     "Write the program counter.", is_write=True),
        SubInterface("WrMem", (("address", i32), ("value", i32), ("pred", 1)),
                     (),
                     "Store a word to the core's main memory.", is_write=True),
        SubInterface("RdIValid", (), (("valid", 1),),
                     "Query whether an instruction is currently executing in "
                     "stage s.", per_stage=True),
        SubInterface("RdStall", (), (("stall", 1),),
                     "Query whether stage s is stalled.", per_stage=True),
        SubInterface("RdFlush", (), (("flush", 1),),
                     "Query whether stage s is being flushed.", per_stage=True),
        SubInterface("WrStall", (("pred", 1),), (),
                     "Stall stage s.", per_stage=True, is_write=True),
        SubInterface("WrFlush", (("pred", 1),), (),
                     "Flush stages zero to s.", per_stage=True, is_write=True),
    ]
    return {iface.name: iface for iface in table}


def custom_register_interfaces(name: str, elements: int,
                               width: int) -> List[SubInterface]:
    """Sub-interfaces SCAIE-V creates on demand for one custom register
    (paper Section 3.1)."""
    aw = address_width(elements)
    return [
        SubInterface(f"Rd{name}", (("index", aw), ("pred", 1)),
                     (("data", width),),
                     f"Read custom register {name}."),
        SubInterface(f"Wr{name}.addr", (("index", aw),), (),
                     f"Submit write index for custom register {name}.",
                     is_write=True),
        SubInterface(f"Wr{name}.data", (("value", width), ("pred", 1)), (),
                     f"Write custom register {name}.", is_write=True),
    ]


def base_interface_of(name: str) -> str:
    """Map a concrete sub-interface name to its Table 1 family, e.g.
    ``WrCOUNT.data`` -> ``WrCustReg.data``."""
    std = standard_interfaces()
    if name in std:
        return name
    if name.startswith("Rd"):
        return "RdCustReg"
    if name.startswith("Wr") and name.endswith(".addr"):
        return "WrCustReg.addr"
    if name.startswith("Wr") and name.endswith(".data"):
        return "WrCustReg.data"
    if name.startswith("Wr"):
        return "WrCustReg.data"
    raise ValueError(f"cannot classify sub-interface {name!r}")
