"""Virtual datasheets for the four evaluation cores (paper Section 5.2).

ORCA and VexRiscv contain 5-stage pipelines, Piccolo a 3-stage pipeline, and
PicoRV32 is a non-pipelined core sequenced by an FSM; the earliest/latest
abstraction lets Longnail target all of them uniformly (Section 5.2).

Stage numbering follows the paper: time step 0 is the instruction fetch
stage.  The VexRiscv windows reproduce Figure 9's datasheet excerpt
(instruction word available in stages 1..4, register file in stages 2..4,
which is also the configuration used to schedule the ADDI example of
Figures 5 and 6).  ORCA's register-read-in-stage-3 and
writeback-in-the-following-stage structure, including the forwarding path
from the last stage, reproduces the Section 5.4 discussion.  The base-core
area/frequency anchors are the Table 4 baseline rows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.scaiev.datasheet import InterfaceTiming, VirtualDatasheet


def _vexriscv() -> VirtualDatasheet:
    """VexRiscv, 5-stage configuration (fetch, decode, execute, memory,
    writeback)."""
    t = InterfaceTiming
    return VirtualDatasheet(
        core_name="VexRiscv",
        stages=5,
        writeback_stage=4,
        memory_stage=3,
        base_area_um2=9052.0,
        base_freq_mhz=701.0,
        timings={
            "RdInstr": t(1, 4),
            "RdRS1": t(2, 4),
            "RdRS2": t(2, 4),
            "RdPC": t(0, 4),
            "RdMem": t(3, 3, latency=1),
            "WrRD": t(2, 4),
            "WrPC": t(0, 4),
            "WrMem": t(3, 3),
            "RdCustReg": t(2, 4),
            "WrCustReg": t(2, 4),
        },
    )


def _orca() -> VirtualDatasheet:
    """ORCA, 5-stage; register operands available in stage 3, result
    writeback expected in stage 4, with forwarding from the last stage into
    stage 3 (Section 5.4)."""
    t = InterfaceTiming
    return VirtualDatasheet(
        core_name="ORCA",
        stages=5,
        writeback_stage=4,
        memory_stage=3,
        forwarding_from_last_stage=True,
        base_area_um2=6612.0,
        base_freq_mhz=996.0,
        timings={
            "RdInstr": t(1, 4),
            "RdRS1": t(3, 4),
            "RdRS2": t(3, 4),
            "RdPC": t(0, 4),
            "RdMem": t(3, 3, latency=1),
            "WrRD": t(3, 4),
            "WrPC": t(0, 4),
            "WrMem": t(3, 3),
            "RdCustReg": t(3, 4),
            "WrCustReg": t(3, 4),
        },
    )


def _piccolo() -> VirtualDatasheet:
    """Piccolo, 3-stage pipeline (fetch, execute, writeback)."""
    t = InterfaceTiming
    return VirtualDatasheet(
        core_name="Piccolo",
        stages=3,
        writeback_stage=2,
        memory_stage=1,
        base_area_um2=26098.0,
        base_freq_mhz=420.0,
        timings={
            "RdInstr": t(1, 2),
            "RdRS1": t(1, 2),
            "RdRS2": t(1, 2),
            "RdPC": t(0, 2),
            "RdMem": t(1, 1, latency=1),
            "WrRD": t(1, 2),
            "WrPC": t(0, 2),
            "WrMem": t(1, 2),
            "RdCustReg": t(1, 2),
            "WrCustReg": t(1, 2),
        },
    )


def _picorv32() -> VirtualDatasheet:
    """PicoRV32: non-pipelined, FSM-sequenced.  The FSM is abstracted as a
    two-step schedule window: operands become available in step 1 and the
    core waits for the ISAX to produce its result (PCPI-style), so writes
    are natively accepted in steps 1..2."""
    t = InterfaceTiming
    return VirtualDatasheet(
        core_name="PicoRV32",
        stages=3,
        is_fsm=True,
        writeback_stage=2,
        memory_stage=1,
        base_area_um2=4745.0,
        base_freq_mhz=1278.0,
        timings={
            "RdInstr": t(1, 2),
            "RdRS1": t(1, 2),
            "RdRS2": t(1, 2),
            "RdPC": t(0, 2),
            "RdMem": t(1, 1, latency=1),
            "WrRD": t(1, 2),
            "WrPC": t(0, 2),
            "WrMem": t(1, 2),
            "RdCustReg": t(1, 2),
            "WrCustReg": t(1, 2),
        },
    )


def _cva5() -> VirtualDatasheet:
    """CVA5 (ex-SFU Taiga), an *application-class* in-order core — the
    Section 7 outlook prototype ("current research already has initial
    prototypes of the SCAIE-V / Longnail flow working on ... CVA5").

    Modeled with a deeper 7-step schedule window (it has parallel execution
    units and in-pipeline scoreboarding) and a much larger base area, which
    is exactly the paper's observation: "the relative cost of SCAIE-V
    integration decreases, as the area of these base cores is generally
    much larger than that of the MCUs".
    """
    t = InterfaceTiming
    return VirtualDatasheet(
        core_name="CVA5",
        stages=7,
        writeback_stage=6,
        memory_stage=4,
        base_area_um2=38000.0,
        base_freq_mhz=803.0,
        timings={
            "RdInstr": t(1, 6),
            "RdRS1": t(3, 6),
            "RdRS2": t(3, 6),
            "RdPC": t(0, 6),
            "RdMem": t(4, 4, latency=1),
            "WrRD": t(3, 6),
            "WrPC": t(0, 6),
            "WrMem": t(4, 4),
            "RdCustReg": t(3, 6),
            "WrCustReg": t(3, 6),
        },
    )


_FACTORIES = {
    "VexRiscv": _vexriscv,
    "ORCA": _orca,
    "Piccolo": _piccolo,
    "PicoRV32": _picorv32,
    "CVA5": _cva5,
}

#: Names of the supported host cores, in the paper's Table 4 column order.
CORES = ("ORCA", "Piccolo", "PicoRV32", "VexRiscv")

#: Section 7 outlook prototypes: application-class cores beyond Table 4.
EXPERIMENTAL_CORES = ("CVA5",)


#: Memoized factory results; grid runs (repro.service) request the same core
#: once per job, so the factories only run once per process.
_DATASHEET_CACHE: Dict[str, VirtualDatasheet] = {}


def core_datasheet(name: str) -> VirtualDatasheet:
    """Return a fresh virtual datasheet for one of the supported cores.

    The underlying factory is memoized, but every call still hands out an
    independent copy (with its own ``timings`` dict, of immutable
    :class:`InterfaceTiming` entries) so callers mutating one datasheet —
    e.g. a DSE sweep overriding a window — cannot leak state into later
    jobs.
    """
    cached = _DATASHEET_CACHE.get(name)
    if cached is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise KeyError(
                f"unknown core {name!r}; supported cores: "
                f"{', '.join(CORES)} (experimental: "
                f"{', '.join(EXPERIMENTAL_CORES)})"
            )
        cached = _DATASHEET_CACHE[name] = factory()
    return dataclasses.replace(cached, timings=dict(cached.timings))


def clear_datasheet_cache() -> None:
    """Drop memoized datasheets (test hook)."""
    _DATASHEET_CACHE.clear()
