"""Data-hazard handling for decoupled results (paper Sections 2.5 / 3.2).

The decoupled mode requires "additional hardware resources for the
automatically created register data hazard handling that conditionally
stalls subsequent issue of dependent instructions" — a tailored, lightweight
scoreboard.  This module plans that hardware: which destinations must be
tracked, how many pending slots are needed, and which comparators the issue
stage gains.  The plan is consumed by the evaluation's area model and by the
core timing model (which uses it to stall dependent instructions), and it
can be disabled to reproduce Table 4's "without data-hazard handling"
ablation row.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.scaiev.config import IsaxConfig
from repro.scaiev.datasheet import VirtualDatasheet


@dataclasses.dataclass
class ScoreboardEntry:
    """Tracking state for one decoupled write target."""

    target: str            # "rd" for GPR results, else custom register name
    address_width: int     # 5 for the GPR file, AW for custom registers
    data_width: int


@dataclasses.dataclass
class ScoreboardPlan:
    """The scoreboard SCAIE-V generates for one core+ISAX combination.

    ``storage_bits``: pending-destination registers (address + valid bit per
    entry).  ``comparators``: one per base-core read port and tracked entry,
    comparing issue-stage source registers against pending destinations.
    ``stall_fanout``: stages whose enable logic the scoreboard drives.
    """

    enabled: bool
    entries: List[ScoreboardEntry]
    read_ports: int
    stages: int

    #: In-flight decoupled results tracked simultaneously.
    depth: int = 4

    @property
    def storage_bits(self) -> int:
        """Pending-destination slots plus the result commit buffer that
        holds values waiting for a free write-back cycle."""
        if not self.enabled:
            return 0
        slots = sum((e.address_width + 1) * self.depth for e in self.entries)
        commit_buffer = sum((e.data_width + e.address_width) * 2
                            for e in self.entries)
        return slots + commit_buffer

    @property
    def comparator_bits(self) -> int:
        """Issue-stage source registers are compared against every pending
        destination slot, replicated per read port and checked in each stage
        that may issue."""
        if not self.enabled:
            return 0
        return sum(
            e.address_width * self.read_ports * self.depth * self.stages
            for e in self.entries
        )

    @property
    def stall_fanout(self) -> int:
        return 2 * self.stages if self.enabled and self.entries else 0


def plan_scoreboard(config: IsaxConfig, datasheet: VirtualDatasheet,
                    enabled: bool = True) -> ScoreboardPlan:
    """Build the scoreboard plan for the decoupled writes of one ISAX."""
    entries: List[ScoreboardEntry] = []
    seen = set()
    for func in config.functionalities:
        for entry in func.schedule:
            if entry.mode != "decoupled":
                continue
            if entry.interface == "WrRD":
                key = ("rd",)
                if key not in seen:
                    seen.add(key)
                    entries.append(ScoreboardEntry("rd", 5, 32))
            elif entry.interface.startswith("Wr") and entry.interface.endswith(".data"):
                reg_name = entry.interface[2:-len(".data")]
                reg = config.register(reg_name)
                if reg is None:
                    continue
                key = (reg_name,)
                if key not in seen:
                    seen.add(key)
                    aw = max(1, (reg.elements - 1).bit_length()) if reg.elements > 1 else 1
                    entries.append(ScoreboardEntry(reg_name, aw, reg.width))
    return ScoreboardPlan(
        enabled=enabled,
        entries=entries,
        read_ports=2,
        stages=datasheet.stages,
    )
