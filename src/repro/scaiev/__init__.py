"""SCAIE-V: the vendor-neutral core-microarchitecture abstraction (paper
Section 3).

This package implements both sides of the Longnail <-> SCAIE-V contract:

* :mod:`repro.scaiev.interfaces` — the sub-interface catalogue of Table 1,
* :mod:`repro.scaiev.datasheet` — virtual datasheets (earliest/latest/latency
  per sub-interface) with YAML load/store,
* :mod:`repro.scaiev.cores` — datasheets for ORCA, Piccolo, PicoRV32 and
  VexRiscv (the evaluation cores of Section 5.2),
* :mod:`repro.scaiev.config` — the ISAX configuration file exchanged after
  HLS (Figures 8 and 9),
* :mod:`repro.scaiev.modes` — execution-mode selection (Section 3.2),
* :mod:`repro.scaiev.hazard` — scoreboard-based data-hazard handling for
  decoupled results,
* :mod:`repro.scaiev.arbitration` — static arbitration between ISAXes
  (Section 3.3),
* :mod:`repro.scaiev.regfile` — SCAIE-V-managed custom register files,
* :mod:`repro.scaiev.integrate` — glue-logic construction and the
  integration report used by the evaluation.
"""

from repro.scaiev.interfaces import SubInterface, standard_interfaces
from repro.scaiev.datasheet import InterfaceTiming, VirtualDatasheet
from repro.scaiev.cores import CORES, core_datasheet
from repro.scaiev.config import IsaxConfig, ScheduleEntry
from repro.scaiev.modes import ExecutionMode
from repro.scaiev.integrate import integrate

__all__ = [
    "SubInterface",
    "standard_interfaces",
    "InterfaceTiming",
    "VirtualDatasheet",
    "CORES",
    "core_datasheet",
    "IsaxConfig",
    "ScheduleEntry",
    "ExecutionMode",
    "integrate",
]
