"""Virtual datasheets: SCAIE-V's abstraction of a host core (Section 3.1).

For each sub-interface the datasheet specifies the *earliest* and *latest*
time steps (pipeline stages, relative to time step 0 = instruction fetch) the
operation is available in, and its *latency* in cycles.  Longnail's scheduler
consumes exactly this information (Section 4.2); the YAML form matches the
excerpt shown in the paper's Figure 9.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.utils import yaml_lite

INFINITY = float("inf")


@dataclasses.dataclass(frozen=True)
class InterfaceTiming:
    """Availability window and latency of one sub-interface."""

    earliest: int
    latest: float  # int or float('inf')
    latency: int = 0

    def __post_init__(self) -> None:
        if self.earliest < 0:
            raise ValueError("earliest must be >= 0")
        if self.latest < self.earliest:
            raise ValueError("latest must be >= earliest")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")

    def to_dict(self) -> dict:
        latest = self.latest if self.latest != INFINITY else ".inf"
        return {"earliest": self.earliest, "latest": self.latest,
                "latency": self.latency}


@dataclasses.dataclass
class VirtualDatasheet:
    """The metadata SCAIE-V exposes about one host core.

    Besides the per-sub-interface timings, the datasheet carries the
    structural facts the reproduction's evaluation needs: pipeline length,
    whether the core sequences via an FSM (PicoRV32), the write-back and
    memory stages, the forwarding structure (ORCA forwards from the last
    stage into stage 3, the root cause of the dotprod/sparkle frequency
    regressions discussed in Section 5.4), and the base-core ASIC anchors
    from Table 4.
    """

    core_name: str
    stages: int
    timings: Dict[str, InterfaceTiming]
    is_fsm: bool = False
    writeback_stage: int = 0
    memory_stage: int = 0
    forwarding_from_last_stage: bool = False
    base_area_um2: float = 0.0
    base_freq_mhz: float = 0.0

    @property
    def cycle_time_ns(self) -> float:
        """Target clock period implied by the base core's f_max."""
        return 1000.0 / self.base_freq_mhz

    # -- lookups ------------------------------------------------------------
    def timing(self, interface: str) -> InterfaceTiming:
        timing = self.timings.get(interface)
        if timing is None:
            raise KeyError(
                f"core '{self.core_name}' has no sub-interface '{interface}'"
            )
        return timing

    def custom_register_timing(self, write: bool) -> InterfaceTiming:
        """Timing window for SCAIE-V-managed custom registers; defaults to
        the general-purpose register file's windows (Section 3.2: the same
        hazard-handling concepts are applied to ISAX-internal state)."""
        key = "WrCustReg" if write else "RdCustReg"
        if key in self.timings:
            return self.timings[key]
        return self.timings["WrRD" if write else "RdRS1"]

    # -- (de)serialization -----------------------------------------------------
    def to_yaml(self) -> str:
        doc = {
            "core": self.core_name,
            "stages": self.stages,
            "is_fsm": self.is_fsm,
            "writeback_stage": self.writeback_stage,
            "memory_stage": self.memory_stage,
            "forwarding_from_last_stage": self.forwarding_from_last_stage,
            "base_area_um2": self.base_area_um2,
            "base_freq_mhz": self.base_freq_mhz,
            "datasheet": [
                {
                    "interface": name,
                    "earliest": timing.earliest,
                    "latest": timing.latest,
                    "latency": timing.latency,
                }
                for name, timing in sorted(self.timings.items())
            ],
        }
        return yaml_lite.dumps(doc)

    @classmethod
    def from_yaml(cls, text: str) -> "VirtualDatasheet":
        doc = yaml_lite.loads(text)
        timings = {}
        for entry in doc.get("datasheet", []):
            latest = entry["latest"]
            timings[entry["interface"]] = InterfaceTiming(
                earliest=entry["earliest"],
                latest=float(latest) if latest is not None else INFINITY,
                latency=entry.get("latency", 0),
            )
        return cls(
            core_name=doc["core"],
            stages=doc["stages"],
            timings=timings,
            is_fsm=doc.get("is_fsm", False),
            writeback_stage=doc.get("writeback_stage", 0),
            memory_stage=doc.get("memory_stage", 0),
            forwarding_from_last_stage=doc.get(
                "forwarding_from_last_stage", False
            ),
            base_area_um2=doc.get("base_area_um2", 0.0),
            base_freq_mhz=doc.get("base_freq_mhz", 0.0),
        )
