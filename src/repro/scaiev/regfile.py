"""SCAIE-V-managed custom register files (paper Section 3.1).

Longnail requests size/element-type/usage information via the configuration
file; SCAIE-V "automatically instantiates new storage elements that are
accessed in a similar manner as the general-purpose register file", including
hazard handling.  This module provides that storage model: it is used
structurally by the evaluation's area model and behaviorally by the core
timing simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.scaiev.config import IsaxConfig, RegisterRequest
from repro.utils.bits import to_unsigned


@dataclasses.dataclass
class PortUsage:
    """How many functionalities read/write one custom register."""

    readers: int = 0
    writers: int = 0


class CustomRegisterFile:
    """Storage for one requested custom register (file)."""

    def __init__(self, request: RegisterRequest,
                 init: Optional[List[int]] = None):
        self.name = request.name
        self.width = request.width
        self.elements = request.elements
        self.values: List[int] = [0] * request.elements
        if init:
            for i, value in enumerate(init[: request.elements]):
                self.values[i] = to_unsigned(value, self.width)

    @property
    def storage_bits(self) -> int:
        return self.width * self.elements

    @property
    def address_width(self) -> int:
        if self.elements <= 1:
            return 1
        return max(1, (self.elements - 1).bit_length())

    def read(self, index: int = 0) -> int:
        if not 0 <= index < self.elements:
            return 0
        return self.values[index]

    def write(self, value: int, index: int = 0) -> None:
        if 0 <= index < self.elements:
            self.values[index] = to_unsigned(value, self.width)

    def reset(self) -> None:
        self.values = [0] * self.elements

    def __repr__(self) -> str:
        return (f"<CustomRegisterFile {self.name}: {self.elements} x "
                f"{self.width} bits>")


def build_register_files(config: IsaxConfig) -> Dict[str, CustomRegisterFile]:
    """Instantiate storage for every register the ISAX requests."""
    return {req.name: CustomRegisterFile(req) for req in config.registers}


def port_usage(config: IsaxConfig) -> Dict[str, PortUsage]:
    """Count read/write users per custom register across functionalities;
    drives mux sizing in the area model."""
    usage: Dict[str, PortUsage] = {r.name: PortUsage() for r in config.registers}
    for func in config.functionalities:
        seen_read = set()
        seen_write = set()
        for entry in func.schedule:
            name = entry.interface
            if name.startswith("Rd") and name[2:] in usage:
                if name[2:] not in seen_read:
                    usage[name[2:]].readers += 1
                    seen_read.add(name[2:])
            if name.startswith("Wr") and name.endswith(".data"):
                reg = name[2:-len(".data")]
                if reg in usage and reg not in seen_write:
                    usage[reg].writers += 1
                    seen_write.add(reg)
    return usage
