"""Automatic integration of ISAX modules into a host core (paper Section 3).

``integrate`` plays the role of the SCAIE-V generator invocation: given the
core's virtual datasheet and the artifacts Longnail produced (one hardware
module + configuration per ISAX), it

* validates that the core supports every requested sub-interface and that
  instruction encodings do not conflict across ISAXes,
* instantiates SCAIE-V-managed custom register files,
* plans interface arbitration (Section 3.3) and the hazard scoreboard for
  decoupled results (Section 3.2) — the latter can be disabled to reproduce
  Table 4's "without data-hazard handling" row,
* produces an itemized *glue logic* summary (decoders, muxes, valid-bit
  pipelines, stall logic) consumed by the ASIC area/timing model and by the
  core timing simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.dialects.hw import HWModule
from repro.scaiev.arbitration import ArbitrationPlan, plan_arbitration
from repro.scaiev.config import IsaxConfig
from repro.scaiev.datasheet import VirtualDatasheet
from repro.scaiev.hazard import ScoreboardPlan, plan_scoreboard
from repro.scaiev.interfaces import base_interface_of, standard_interfaces
from repro.scaiev.regfile import CustomRegisterFile, build_register_files


class IntegrationError(Exception):
    """Raised when a set of ISAXes cannot be integrated into the core."""


@dataclasses.dataclass
class GlueItem:
    """One piece of SCAIE-V-generated interface logic.

    ``kind`` is one of: "decode" (instruction decoder compare), "mux"
    (interface arbitration / regfile read mux), "storage" (flip-flop bits),
    "valid_pipe" (per-instruction valid tracking), "comparator" (scoreboard
    hazard compare), "stall" (stall/flush control logic).
    """

    kind: str
    bits: int
    description: str


@dataclasses.dataclass
class IntegrationResult:
    datasheet: VirtualDatasheet
    configs: List[IsaxConfig]
    modules: Dict[str, HWModule]
    register_files: Dict[str, CustomRegisterFile]
    scoreboards: Dict[str, ScoreboardPlan]
    arbitration: ArbitrationPlan
    glue: List[GlueItem]
    hazard_handling: bool

    @property
    def core_name(self) -> str:
        return self.datasheet.core_name

    def glue_bits(self, kind: Optional[str] = None) -> int:
        return sum(i.bits for i in self.glue if kind is None or i.kind == kind)

    def functionalities(self) -> List[Tuple[IsaxConfig, object]]:
        return [(c, f) for c in self.configs for f in c.functionalities]

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for item in self.glue:
            out[item.kind] = out.get(item.kind, 0) + item.bits
        return out


def _mask_overlap(mask_a: str, mask_b: str) -> bool:
    """Two 32-char '-'/0/1 patterns overlap if no fixed bit distinguishes
    them."""
    for bit_a, bit_b in zip(mask_a, mask_b):
        if bit_a != "-" and bit_b != "-" and bit_a != bit_b:
            return False
    return True


def _validate(datasheet: VirtualDatasheet, configs: List[IsaxConfig]) -> None:
    known = standard_interfaces()
    masks: List[Tuple[str, str]] = []
    for config in configs:
        for func in config.functionalities:
            for entry in func.schedule:
                family = base_interface_of(entry.interface)
                if family not in known:
                    raise IntegrationError(
                        f"unknown sub-interface '{entry.interface}'"
                    )
                if func.kind == "always":
                    is_data_write = (
                        entry.interface.startswith("Wr")
                        and not entry.interface.endswith(".addr")
                    )
                    if is_data_write and not entry.has_valid:
                        raise IntegrationError(
                            f"always-block '{func.name}': state updates need "
                            "an explicit valid bit (Section 3.2)"
                        )
                    if entry.stage != 0:
                        raise IntegrationError(
                            f"always-block '{func.name}' schedules "
                            f"'{entry.interface}' in stage {entry.stage}; "
                            "always-blocks execute in stage 0"
                        )
            if func.kind == "instruction":
                if func.mask is None or len(func.mask) != 32:
                    raise IntegrationError(
                        f"instruction '{func.name}' has no 32-bit encoding mask"
                    )
                for other_name, other_mask in masks:
                    if _mask_overlap(func.mask, other_mask):
                        raise IntegrationError(
                            f"encoding conflict between '{func.name}' and "
                            f"'{other_name}'"
                        )
                masks.append((func.name, func.mask))


def _plan_glue(datasheet: VirtualDatasheet, configs: List[IsaxConfig],
               register_files: Dict[str, CustomRegisterFile],
               scoreboards: Dict[str, ScoreboardPlan],
               arbitration: ArbitrationPlan) -> List[GlueItem]:
    glue: List[GlueItem] = []
    for config in configs:
        for func in config.instructions:
            fixed_bits = sum(1 for c in (func.mask or "") if c != "-")
            glue.append(GlueItem(
                "decode", fixed_bits,
                f"{func.name}: opcode match on {fixed_bits} fixed bits",
            ))
            depth = max(2, func.max_stage + 1)
            glue.append(GlueItem(
                "valid_pipe", depth,
                f"{func.name}: valid-bit tracking over {depth} stages",
            ))
            modes = func.modes
            if "tightly_coupled" in modes:
                glue.append(GlueItem(
                    "stall", 2 * datasheet.stages,
                    f"{func.name}: tightly-coupled stall of the base core",
                ))
            if "decoupled" in modes:
                # One stall cycle to avoid write-back conflicts (Section 3.2)
                # plus commit-queue control.
                glue.append(GlueItem(
                    "stall", 3 * datasheet.stages,
                    f"{func.name}: decoupled commit control",
                ))
    for regfile in register_files.values():
        glue.append(GlueItem(
            "storage", regfile.storage_bits,
            f"custom register {regfile.name}: "
            f"{regfile.elements} x {regfile.width} bits",
        ))
        if regfile.elements > 1:
            glue.append(GlueItem(
                "mux", regfile.storage_bits,
                f"custom register {regfile.name}: read multiplexing",
            ))
    for mux in arbitration.muxes:
        glue.append(GlueItem(
            "mux", (mux.ways - 1) * mux.width,
            f"arbitration mux on {mux.interface} ({mux.ways} ways)",
        ))
    for isax_name, plan in scoreboards.items():
        if plan.storage_bits:
            glue.append(GlueItem(
                "storage", plan.storage_bits,
                f"{isax_name}: scoreboard pending-destination storage",
            ))
            glue.append(GlueItem(
                "comparator", plan.comparator_bits,
                f"{isax_name}: scoreboard hazard comparators",
            ))
            glue.append(GlueItem(
                "stall", plan.stall_fanout,
                f"{isax_name}: scoreboard stall fanout",
            ))
    return glue


def integrate(datasheet: VirtualDatasheet,
              artifacts: List[Tuple[IsaxConfig, Optional[HWModule]]],
              hazard_handling: bool = True) -> IntegrationResult:
    """Integrate a list of (config, module) ISAX artifacts into a core."""
    configs = [config for config, _module in artifacts]
    _validate(datasheet, configs)
    modules = {
        config.name: module
        for config, module in artifacts
        if module is not None
    }
    register_files: Dict[str, CustomRegisterFile] = {}
    for config in configs:
        for name, regfile in build_register_files(config).items():
            if name in register_files:
                existing = register_files[name]
                if (existing.width, existing.elements) != (
                    regfile.width, regfile.elements
                ):
                    raise IntegrationError(
                        f"conflicting definitions of custom register '{name}'"
                    )
                continue  # Shared state between ISAXes is allowed.
            register_files[name] = regfile
    scoreboards = {
        config.name: plan_scoreboard(config, datasheet, hazard_handling)
        for config in configs
    }
    arbitration = plan_arbitration(configs)
    glue = _plan_glue(datasheet, configs, register_files, scoreboards,
                      arbitration)
    return IntegrationResult(
        datasheet=datasheet,
        configs=configs,
        modules=modules,
        register_files=register_files,
        scoreboards=scoreboards,
        arbitration=arbitration,
        glue=glue,
        hazard_handling=hazard_handling,
    )
