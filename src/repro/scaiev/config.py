"""The SCAIE-V configuration file Longnail emits after HLS (paper Section 4.6,
Figures 8 and 9).

The configuration contains: requested ISAX-internal state elements, each
functionality (instruction with its encoding mask, or always-block), and the
computed interface schedule — which sub-interfaces are required, in which
stages, with which execution mode, and whether they carry an explicit valid
bit (mandatory for state updates from always-blocks).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.utils import yaml_lite


@dataclasses.dataclass
class RegisterRequest:
    """Request for a SCAIE-V-managed custom register (Figure 8, line 1)."""

    name: str
    width: int
    elements: int = 1

    def to_dict(self) -> dict:
        return {"register": self.name, "width": self.width,
                "elements": self.elements}


@dataclasses.dataclass
class ScheduleEntry:
    """One scheduled sub-interface use: ``{interface: RdPC, stage: 1}``."""

    interface: str
    stage: int
    has_valid: bool = False
    mode: str = "in_pipeline"

    def to_dict(self) -> dict:
        entry: Dict[str, object] = {
            "interface": self.interface, "stage": self.stage,
        }
        if self.has_valid:
            entry["has_valid"] = 1
        if self.mode != "in_pipeline":
            entry["mode"] = self.mode
        return entry

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleEntry":
        return cls(
            interface=data["interface"],
            stage=data["stage"],
            has_valid=bool(data.get("has_valid", 0)),
            mode=data.get("mode", "in_pipeline"),
        )


@dataclasses.dataclass
class Functionality:
    """An instruction (with encoding mask) or an always-block."""

    kind: str                       # "instruction" | "always"
    name: str
    mask: Optional[str] = None      # 32-char pattern for instructions
    schedule: List[ScheduleEntry] = dataclasses.field(default_factory=list)

    def to_dict(self) -> dict:
        entry: Dict[str, object] = {self.kind: self.name}
        if self.mask is not None:
            entry["mask"] = self.mask
        entry["schedule"] = [s.to_dict() for s in self.schedule]
        return entry

    def uses(self, interface: str) -> bool:
        return any(s.interface == interface for s in self.schedule)

    def entry(self, interface: str) -> Optional[ScheduleEntry]:
        for s in self.schedule:
            if s.interface == interface:
                return s
        return None

    @property
    def max_stage(self) -> int:
        return max((s.stage for s in self.schedule), default=0)

    @property
    def modes(self) -> List[str]:
        return sorted({s.mode for s in self.schedule})


@dataclasses.dataclass
class IsaxConfig:
    """The full configuration for one ISAX (one CoreDSL InstructionSet)."""

    name: str
    registers: List[RegisterRequest] = dataclasses.field(default_factory=list)
    functionalities: List[Functionality] = dataclasses.field(default_factory=list)

    # -- queries --------------------------------------------------------------
    @property
    def instructions(self) -> List[Functionality]:
        return [f for f in self.functionalities if f.kind == "instruction"]

    @property
    def always_blocks(self) -> List[Functionality]:
        return [f for f in self.functionalities if f.kind == "always"]

    def register(self, name: str) -> Optional[RegisterRequest]:
        for reg in self.registers:
            if reg.name == name:
                return reg
        return None

    def interfaces_used(self) -> List[str]:
        names = set()
        for func in self.functionalities:
            for entry in func.schedule:
                names.add(entry.interface)
        return sorted(names)

    def is_decoupled(self) -> bool:
        return any(
            entry.mode == "decoupled"
            for func in self.functionalities
            for entry in func.schedule
        )

    # -- (de)serialization ------------------------------------------------------
    def to_yaml(self) -> str:
        doc: Dict[str, object] = {"isax": self.name}
        if self.registers:
            doc["registers"] = [r.to_dict() for r in self.registers]
        doc["functionalities"] = [f.to_dict() for f in self.functionalities]
        return yaml_lite.dumps(doc)

    @classmethod
    def from_yaml(cls, text: str) -> "IsaxConfig":
        doc = yaml_lite.loads(text)
        registers = [
            RegisterRequest(r["register"], r["width"], r.get("elements", 1))
            for r in doc.get("registers", [])
        ]
        functionalities = []
        for f in doc.get("functionalities", []):
            kind = "instruction" if "instruction" in f else "always"
            functionalities.append(Functionality(
                kind=kind,
                name=f[kind],
                mask=f.get("mask"),
                schedule=[ScheduleEntry.from_dict(s)
                          for s in f.get("schedule", [])],
            ))
        return cls(doc.get("isax", "isax"), registers, functionalities)
