"""IR passes: canonicalization (constant folding + DCE) on flat graphs.

MLIR's "usual canonicalization patterns" (paper Section 4.5) are represented
here by iterated constant folding through the dialect-registered folders,
algebraic simplifications on ``comb`` operations, and dead-code elimination.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.core import Graph, Operation, Value


def _constant_value(value: Value) -> Optional[int]:
    owner = value.owner
    if owner is not None and owner.name == "comb.constant":
        return owner.attr("value")
    return None


def _make_constant(graph: Graph, anchor: Operation, value: int, width: int) -> Value:
    op = Operation("comb.constant", [], [(width, None)], {"value": value})
    graph.block.insert_before(anchor, op)
    return op.result


def _simplify_algebraic(op: Operation) -> Optional[Value]:
    """Identity simplifications that do not require all operands constant."""
    name = op.name
    if name in ("comb.add", "comb.sub", "comb.or", "comb.xor", "comb.shl",
                "comb.shru"):
        rhs = _constant_value(op.operands[1])
        if rhs == 0 and op.operands[0].width == op.result.width:
            return op.operands[0]
    if name in ("comb.add", "comb.or", "comb.xor"):
        lhs = _constant_value(op.operands[0])
        if lhs == 0 and op.operands[1].width == op.result.width:
            return op.operands[1]
    if name == "comb.mul":
        if _constant_value(op.operands[1]) == 1:
            return op.operands[0]
        if _constant_value(op.operands[0]) == 1:
            return op.operands[1]
    if name == "comb.and":
        all_ones = (1 << op.result.width) - 1
        if _constant_value(op.operands[1]) == all_ones:
            return op.operands[0]
        if _constant_value(op.operands[0]) == all_ones:
            return op.operands[1]
    if name == "comb.mux":
        cond = _constant_value(op.operands[0])
        if cond is not None:
            return op.operands[1] if cond else op.operands[2]
        if op.operands[1] is op.operands[2]:
            return op.operands[1]
    if name == "comb.extract":
        if op.attr("low") == 0 and op.result.width == op.operands[0].width:
            return op.operands[0]
    if name == "comb.concat" and len(op.operands) == 1:
        return op.operands[0]
    return None


def _rewrite_constant_shift(graph: Graph, op: Operation) -> bool:
    """Shifts by a constant amount are wiring, not shifters: rewrite them to
    extract/concat so neither area nor delay is attributed to them."""
    if op.name not in ("comb.shru", "comb.shrs", "comb.shl"):
        return False
    amount = _constant_value(op.operands[1])
    if amount is None or amount == 0:
        return False
    width = op.result.width
    value = op.operands[0]
    replacement: Optional[Value] = None
    if op.name == "comb.shru" or (op.name == "comb.shrs" and amount < width):
        keep = width - min(amount, width)
        if keep == 0:
            replacement = _make_constant(graph, op, 0, width)
        else:
            high = Operation("comb.extract", [value], [(keep, None)],
                             {"low": amount})
            graph.block.insert_before(op, high)
            if op.name == "comb.shru":
                pad = _make_constant(graph, op, 0, width - keep)
                fill = pad
            else:
                msb = Operation("comb.extract", [value], [(1, None)],
                                {"low": width - 1})
                graph.block.insert_before(op, msb)
                if width - keep == 1:
                    fill = msb.result
                else:
                    rep = Operation("comb.replicate", [msb.result],
                                    [(width - keep, None)])
                    graph.block.insert_before(op, rep)
                    fill = rep.result
            concat = Operation("comb.concat", [fill, high.result],
                               [(width, None)])
            graph.block.insert_before(op, concat)
            replacement = concat.result
    elif op.name == "comb.shl":
        if amount >= width:
            replacement = _make_constant(graph, op, 0, width)
        else:
            keep = width - amount
            low = Operation("comb.extract", [value], [(keep, None)],
                            {"low": 0})
            graph.block.insert_before(op, low)
            pad = _make_constant(graph, op, 0, amount)
            concat = Operation("comb.concat", [low.result, pad],
                               [(width, None)])
            graph.block.insert_before(op, concat)
            replacement = concat.result
    if replacement is None:
        return False
    op.result.replace_all_uses_with(replacement)
    op.erase()
    return True


def fold_constants(graph: Graph) -> int:
    """Fold operations whose operands are all constants; returns the number
    of operations replaced."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for op in list(graph.operations):
            if op.name == "comb.constant" or not op.results:
                continue
            if len(op.results) != 1:
                continue
            simplified = _simplify_algebraic(op) if op.name.startswith("comb.") else None
            if simplified is not None:
                op.result.replace_all_uses_with(simplified)
                op.erase()
                folded += 1
                changed = True
                continue
            if op.name.startswith("comb.") and _rewrite_constant_shift(graph, op):
                folded += 1
                changed = True
                continue
            folder = op.opdef.folder
            if folder is None or op.opdef.has_side_effects:
                continue
            operand_values = [_constant_value(v) for v in op.operands]
            result = folder(op, operand_values)
            if result is None:
                continue
            constant = _make_constant(graph, op, result, op.result.width)
            op.result.replace_all_uses_with(constant)
            op.erase()
            folded += 1
            changed = True
    return folded


def dedupe_constants(graph: Graph) -> int:
    """Merge identical ``comb.constant`` operations."""
    seen: Dict[tuple, Value] = {}
    removed = 0
    for op in list(graph.operations):
        if op.name != "comb.constant":
            continue
        key = (op.attr("value"), op.result.width)
        existing = seen.get(key)
        if existing is None:
            seen[key] = op.result
        else:
            op.result.replace_all_uses_with(existing)
            op.erase()
            removed += 1
    return removed


def canonicalize(graph: Graph) -> None:
    """Run folding, constant dedup and DCE to a fixed point."""
    while True:
        changed = fold_constants(graph)
        changed += dedupe_constants(graph)
        changed += graph.remove_dead_code()
        if not changed:
            return
