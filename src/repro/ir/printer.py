"""Generic textual printer for the IR, used in tests, debugging, and the
Figure 5 reproduction (showing an instruction at each abstraction level)."""

from __future__ import annotations

from typing import Dict, List

from repro.ir.core import Graph, Operation, Value


def _format_attr(value: object) -> str:
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_attr(v) for v in value) + "]"
    return str(value)


class _Namer:
    def __init__(self) -> None:
        self.names: Dict[Value, str] = {}
        self.counter = 0

    def name_of(self, value: Value) -> str:
        name = self.names.get(value)
        if name is None:
            name = f"%{self.counter}"
            self.counter += 1
            self.names[value] = name
        return name


def _print_op(op: Operation, namer: _Namer, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    parts = []
    if op.results:
        results = ", ".join(namer.name_of(r) for r in op.results)
        parts.append(f"{results} = ")
    parts.append(op.name)
    if op.operands:
        parts.append("(" + ", ".join(namer.name_of(o) for o in op.operands) + ")")
    if op.attributes:
        attrs = ", ".join(
            f"{k}: {_format_attr(v)}" for k, v in sorted(op.attributes.items())
        )
        parts.append(" {" + attrs + "}")
    if op.results:
        types = ", ".join(r.type_str for r in op.results)
        parts.append(f" : {types}")
    lines.append(pad + "".join(parts))
    for region in op.regions:
        lines.append(pad + "{")
        for block in region.blocks:
            for child in block.operations:
                _print_op(child, namer, indent + 1, lines)
        lines.append(pad + "}")


def print_operation(op: Operation) -> str:
    namer = _Namer()
    for operand in op.operands:
        namer.name_of(operand)
    lines: List[str] = []
    _print_op(op, namer, 0, lines)
    return "\n".join(lines)


def print_op_histogram(graph: Graph) -> str:
    """Stable one-op-per-line histogram (``name count``), sorted by name.

    The format is deliberately boring so benchmark/test diffs of graphs
    before and after optimization stay readable and byte-stable.
    """
    counts = graph.op_counts()
    lines = [f"{name} {count}" for name, count in counts.items()]
    lines.append(f"total {sum(counts.values())}")
    return "\n".join(lines)


def print_graph(graph: Graph) -> str:
    namer = _Namer()
    lines = [f"graph \"{graph.name}\""
             + ("" if not graph.attributes else " "
                + "{" + ", ".join(f"{k}: {_format_attr(v)}"
                                  for k, v in sorted(graph.attributes.items())) + "}")]
    for op in graph.operations:
        _print_op(op, namer, 1, lines)
    return "\n".join(lines)
