"""A compact MLIR-like intermediate representation.

Longnail is built on MLIR/CIRCT (paper Section 4); this package provides the
corresponding infrastructure for the reproduction: SSA values, operations
with attributes and nested regions, blocks, a builder, a generic textual
printer, and a pass manager with canonicalization (constant folding + DCE).

Dialects (:mod:`repro.dialects`) register operation definitions (result
count, verifier, folder) against the global registry defined here.
"""

from repro.ir.core import (
    Block,
    Graph,
    OpDef,
    Operation,
    Region,
    Value,
    register_op,
    lookup_op,
)
from repro.ir.builder import Builder
from repro.ir.printer import print_graph, print_operation

__all__ = [
    "Block",
    "Graph",
    "OpDef",
    "Operation",
    "Region",
    "Value",
    "register_op",
    "lookup_op",
    "Builder",
    "print_graph",
    "print_operation",
]
