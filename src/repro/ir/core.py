"""Core IR data structures: values, operations, blocks, regions.

The model mirrors MLIR's: an :class:`Operation` has SSA operands and results,
a dictionary of attributes, and may carry nested :class:`Region`s of
:class:`Block`s.  Def-use chains are maintained eagerly so rewrites
(replace-all-uses-with, erase) are cheap and safe.

Values carry a ``width`` (bits) and an optional ``signed`` flag: ``None``
means *signless* (the ``comb``/``lil``/``hw`` dialects, like CIRCT's), while
``True``/``False`` is used by the ``hwarith``/``coredsl`` level.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple


class IRError(Exception):
    """Raised on malformed IR (verifier failures, invalid rewrites)."""


# ---------------------------------------------------------------------------
# Operation registry
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class OpDef:
    """Registered definition of an operation kind.

    ``verifier`` receives the operation and raises :class:`IRError` on
    malformed uses.  ``folder`` receives the operation and a list of operand
    constant values (``None`` for non-constant operands) and may return a
    constant result value (int) to replace the op, or None.
    """

    name: str
    num_results: int = 1
    has_side_effects: bool = False
    is_terminator: bool = False
    verifier: Optional[Callable[["Operation"], None]] = None
    folder: Optional[Callable[["Operation", List[Optional[int]]], Optional[int]]] = None


_REGISTRY: Dict[str, OpDef] = {}


def register_op(opdef: OpDef) -> OpDef:
    if opdef.name in _REGISTRY:
        raise IRError(f"duplicate registration of operation '{opdef.name}'")
    _REGISTRY[opdef.name] = opdef
    return opdef


def lookup_op(name: str) -> OpDef:
    opdef = _REGISTRY.get(name)
    if opdef is None:
        raise IRError(f"unregistered operation '{name}'")
    return opdef


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

class Value:
    """An SSA value: result of an operation or a block argument."""

    def __init__(self, width: int, signed: Optional[bool] = None,
                 owner: Optional["Operation"] = None, index: int = 0,
                 name: Optional[str] = None) -> None:
        if width < 1:
            raise IRError(f"value width must be >= 1, got {width}")
        self.width = width
        self.signed = signed
        self.owner = owner
        self.index = index
        self.name = name
        #: Set of (operation, operand_index) pairs using this value.
        self.uses: Set[Tuple["Operation", int]] = set()

    @property
    def is_block_argument(self) -> bool:
        return self.owner is None

    def replace_all_uses_with(self, other: "Value") -> None:
        if other is self:
            return
        for operation, idx in list(self.uses):
            operation.set_operand(idx, other)

    @property
    def type_str(self) -> str:
        if self.signed is None:
            return f"i{self.width}"
        return f"{'si' if self.signed else 'ui'}{self.width}"

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner is not None else "blockarg"
        return f"<Value {self.type_str} of {owner}>"


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------

class Operation:
    """An instruction in the IR.

    ``result_types`` is a list of ``(width, signed)`` pairs; the constructed
    results are available as ``op.results`` (and ``op.result`` when single).
    """

    def __init__(self, name: str, operands: Optional[List[Value]] = None,
                 result_types: Optional[List[Tuple[int, Optional[bool]]]] = None,
                 attributes: Optional[Dict[str, Any]] = None,
                 regions: Optional[List["Region"]] = None) -> None:
        self.name = name
        self.opdef = lookup_op(name)
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.operands: List[Value] = []
        self.parent: Optional[Block] = None
        self.regions: List[Region] = regions or []
        for region in self.regions:
            region.parent_op = self
        self.results: List[Value] = [
            Value(width, signed, owner=self, index=i)
            for i, (width, signed) in enumerate(result_types or [])
        ]
        for value in (operands or []):
            self.append_operand(value)

    # -- operand maintenance -----------------------------------------------
    def append_operand(self, value: Value) -> None:
        idx = len(self.operands)
        self.operands.append(value)
        value.uses.add((self, idx))

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        old.uses.discard((self, index))
        self.operands[index] = value
        value.uses.add((self, index))

    # -- results ----------------------------------------------------------------
    @property
    def result(self) -> Value:
        if len(self.results) != 1:
            raise IRError(f"'{self.name}' has {len(self.results)} results")
        return self.results[0]

    @property
    def has_uses(self) -> bool:
        return any(r.uses for r in self.results)

    # -- attributes ----------------------------------------------------------------
    def attr(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    # -- structural edits ----------------------------------------------------------
    def erase(self) -> None:
        if self.has_uses:
            raise IRError(f"cannot erase '{self.name}': results still in use")
        for idx, operand in enumerate(self.operands):
            operand.uses.discard((self, idx))
        self.operands = []
        if self.parent is not None:
            self.parent.operations.remove(self)
            self.parent = None

    def verify(self) -> None:
        if self.opdef.verifier is not None:
            self.opdef.verifier(self)
        for region in self.regions:
            for block in region.blocks:
                for operation in block.operations:
                    operation.verify()

    def __repr__(self) -> str:
        return f"<Operation {self.name}>"


# ---------------------------------------------------------------------------
# Blocks and regions
# ---------------------------------------------------------------------------

class Block:
    def __init__(self, arg_types: Optional[List[Tuple[int, Optional[bool]]]] = None) -> None:
        self.arguments: List[Value] = [
            Value(width, signed, owner=None, index=i)
            for i, (width, signed) in enumerate(arg_types or [])
        ]
        self.operations: List[Operation] = []
        self.parent: Optional[Region] = None

    def append(self, operation: Operation) -> Operation:
        operation.parent = self
        self.operations.append(operation)
        return operation

    def insert_before(self, anchor: Operation, operation: Operation) -> Operation:
        idx = self.operations.index(anchor)
        operation.parent = self
        self.operations.insert(idx, operation)
        return operation

    def __iter__(self) -> Iterator["Operation"]:
        return iter(list(self.operations))

    def __len__(self) -> int:
        return len(self.operations)


class Region:
    def __init__(self, blocks: Optional[List[Block]] = None) -> None:
        self.blocks: List[Block] = blocks or []
        for block in self.blocks:
            block.parent = self
        self.parent_op: Optional[Operation] = None

    def add_block(self, block: Optional[Block] = None) -> Block:
        block = block or Block()
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRError("region has no blocks")
        return self.blocks[0]


class Graph:
    """A top-level, single-block container (used for lil graphs and hw
    modules).  MLIR equivalent: a symbol-owning op with one graph region."""

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.block = Block()

    @property
    def operations(self) -> List[Operation]:
        return self.block.operations

    def append(self, operation: Operation) -> Operation:
        return self.block.append(operation)

    def verify(self) -> None:
        for operation in self.operations:
            operation.verify()

    def topological_order(self) -> List[Operation]:
        """Operations sorted so every def precedes its uses.  Raises on
        cycles (our dataflow graphs are acyclic by construction)."""
        ops = self.operations
        index = {op: i for i, op in enumerate(ops)}
        state: Dict[Operation, int] = {}
        order: List[Operation] = []

        def visit(op: Operation) -> None:
            mark = state.get(op, 0)
            if mark == 2:
                return
            if mark == 1:
                raise IRError(f"cycle in graph '{self.name}' at '{op.name}'")
            state[op] = 1
            for operand in op.operands:
                if operand.owner is not None and operand.owner in index:
                    visit(operand.owner)
            state[op] = 2
            order.append(op)

        for op in ops:
            visit(op)
        return order

    def op_counts(self) -> Dict[str, int]:
        """Histogram of operation names, sorted by name for stable output.

        Used by the optimizer benchmark and tests to diff graphs before and
        after a pass pipeline without depending on SSA value identity.
        """
        counts: Dict[str, int] = {}
        for op in self.operations:
            counts[op.name] = counts.get(op.name, 0) + 1
        return dict(sorted(counts.items()))

    def remove_dead_code(self) -> int:
        """Erase side-effect-free operations without uses; returns count."""
        removed = 0
        changed = True
        while changed:
            changed = False
            for op in list(self.operations):
                if op.opdef.has_side_effects or op.opdef.is_terminator:
                    continue
                if not op.has_uses:
                    op.erase()
                    removed += 1
                    changed = True
        return removed

    def __repr__(self) -> str:
        return f"<Graph {self.name}: {len(self.operations)} ops>"
