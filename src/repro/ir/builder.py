"""Builder helper for constructing IR with less boilerplate."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.ir.core import Block, Graph, IRError, Operation, Region, Value


class Builder:
    """Creates operations and appends them to a block (or graph).

    The builder also performs *constant uniquing*: requesting the same
    constant twice yields the same SSA value, which keeps the dataflow graphs
    small before canonicalization even runs.
    """

    def __init__(self, target: Block) -> None:
        self.block = target
        self._constants: Dict[Tuple[str, int, int], Value] = {}

    @classmethod
    def at(cls, graph: Graph) -> "Builder":
        return cls(graph.block)

    def create(self, name: str, operands: Optional[List[Value]] = None,
               result_types: Optional[List[Tuple[int, Optional[bool]]]] = None,
               attributes: Optional[Dict[str, Any]] = None,
               regions: Optional[List[Region]] = None) -> Operation:
        operation = Operation(name, operands, result_types, attributes, regions)
        self.block.append(operation)
        return operation

    def constant(self, value: int, width: int, op_name: str = "comb.constant") -> Value:
        # Reject values a `width`-bit constant cannot represent instead of
        # silently masking an overflowed computation; negative values are
        # accepted as two's complement when they fit in `width` bits.
        if value > (1 << width) - 1 or value < -(1 << (width - 1)):
            raise IRError(
                f"constant {value} out of range for a {width}-bit "
                f"'{op_name}'"
            )
        key = (op_name, value, width)
        cached = self._constants.get(key)
        if cached is not None:
            return cached
        operation = self.create(
            op_name, [], [(width, None)], {"value": value & ((1 << width) - 1)}
        )
        self._constants[key] = operation.result
        return operation.result
