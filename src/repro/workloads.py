"""Evaluation workloads: the Section 5.5 array-sum kernel and the
Section 5.6 audio-ML case study.

Section 5.5 measures a simple kernel — summing the elements of an n-element
integer array held in memory — on the baseline VexRiscv and on the same core
extended with the ``autoinc`` and ``zol`` ISAXes (paper: 18n+50 cycles ->
11n+50 cycles, a >60 % speed-up for 16 % additional chip area).

Section 5.6 reports an ML-inference-on-audio-signals application where four
ISAXes including ``zol`` yield 2.15x wall-clock gains and 30 % power savings.
The original application is proprietary (it was taped out in the Scale4Edge
SoC); we substitute a synthetic fixed-point audio-inference pipeline with
the same structure — a sliding-window dot-product feature extractor (FIR /
first MLP layer) with a table-based nonlinearity — accelerated by the
``dotprod``, ``autoinc``, ``zol`` and ``sbox`` ISAXes.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.discover.kernel import Kernel, KernelBuilder, register_kernel
from repro.eval.asic import evaluate_combination
from repro.hls.longnail import IsaxArtifact, compile_isax
from repro.isaxes import AUTOINC, DOTPROD, SBOX, ZOL
from repro.scaiev.cores import core_datasheet
from repro.sim.riscv.assembler import assemble
from repro.sim.riscv.core_model import CoreTimingModel
from repro.utils.bits import to_signed, to_unsigned

ARRAY_BASE = 0x1000
SAMPLES_BASE = 0x2000
COEFFS_BASE = 0x3000
ACT_TABLE_BASE = 0x3800
OUT_BASE = 0x4000


# ---------------------------------------------------------------------------
# Section 5.5: array sum
# ---------------------------------------------------------------------------

def array_sum_data(n: int) -> List[int]:
    """The n-element input array (Knuth-hash words, reproducible)."""
    return [(i * 2654435761) & 0xFFFFFFFF for i in range(1, n + 1)]


def array_sum_baseline(n: int, base: int = ARRAY_BASE) -> str:
    """Plain RV32I loop: load, bump pointer, accumulate, count, branch."""
    return f"""
      li   t0, {base}
      li   t1, {n}
      li   t2, 0
    loop:
      lw   t3, 0(t0)
      addi t0, t0, 4
      add  t2, t2, t3
      addi t1, t1, -1
      bne  t1, zero, loop
      ecall
    """


def array_sum_isax(n: int, base: int = ARRAY_BASE) -> str:
    """The same kernel with autoinc (pointer bump folded into the load) and
    zol (loop control folded into the always-block): the loop body is just
    ``lw_ai`` + ``add``."""
    return f"""
      li   t0, {base}
      li   t2, 0
      setup_ai t0
      setup_zol uimmS=6, uimmL={n - 1}
      lw_ai t3
      add  t2, t2, t3
      ecall
    """


@register_kernel("array_sum")
def array_sum_kernel(n: int = 64, base: int = ARRAY_BASE) -> Kernel:
    """The Section 5.5 per-iteration body as a dataflow fixture: one
    stream load folded into a running accumulator.  This is the kernel
    the discovery subsystem mines (``repro-longnail discover --kernel
    array_sum``); its data and semantics match :func:`run_array_sum`
    exactly."""
    build = KernelBuilder("array_sum")
    build.param("n", n)
    build.array("A", base=base, data=array_sum_data(n))
    acc = build.carry("ACC", init=0)
    value = build.load("A")
    build.set_carry("ACC", build.add(acc, value))
    build.result("ACC")
    return build.build(trip_count=n)


@dataclasses.dataclass
class ArraySumResult:
    n: int
    baseline_cycles: int
    isax_cycles: int
    checksum: int

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.isax_cycles


def run_array_sum(n: int, core: str = "VexRiscv",
                  artifacts: Optional[List[IsaxArtifact]] = None) -> ArraySumResult:
    """Run the Section 5.5 experiment for one array size."""
    if artifacts is None:
        artifacts = [compile_isax(AUTOINC, core), compile_isax(ZOL, core)]
    data = array_sum_data(n)
    expected = sum(data) & 0xFFFFFFFF

    baseline = CoreTimingModel(core_datasheet(core))
    baseline.load_program(assemble(array_sum_baseline(n)))
    baseline.load_data(data, ARRAY_BASE)
    base_report = baseline.run()
    assert base_report.state.read_x(7) == expected

    extended = CoreTimingModel(core_datasheet(core), artifacts=artifacts)
    extended.load_program(assemble(
        array_sum_isax(n), isaxes=[a.isa for a in artifacts]
    ))
    extended.load_data(data, ARRAY_BASE)
    ext_report = extended.run()
    assert ext_report.state.read_x(7) == expected

    return ArraySumResult(
        n=n,
        baseline_cycles=base_report.cycles,
        isax_cycles=ext_report.cycles,
        checksum=expected,
    )


def fit_linear(ns: List[int], cycles: List[int]) -> Tuple[float, float]:
    """Least-squares fit cycles ~= a*n + b.

    Degenerate inputs — a single sample, or every ``n`` identical — have
    no defined slope; the fit degrades to the constant model ``a=0,
    b=mean(cycles)`` instead of dividing by zero.
    """
    if not ns or len(ns) != len(cycles):
        raise ValueError("fit_linear needs equally sized non-empty inputs")
    count = len(ns)
    mean_n = sum(ns) / count
    mean_c = sum(cycles) / count
    numerator = sum((n - mean_n) * (c - mean_c) for n, c in zip(ns, cycles))
    denominator = sum((n - mean_n) ** 2 for n in ns)
    if denominator == 0.0:
        return 0.0, mean_c
    slope = numerator / denominator
    return slope, mean_c - slope * mean_n


# ---------------------------------------------------------------------------
# Section 5.6: audio-ML case study
# ---------------------------------------------------------------------------

#: Inner dot-product length in 4-lane words and number of output frames.
AUDIO_WORDS = 8
AUDIO_FRAMES = 16


def audio_sample_byte(word_index: int, lane: int) -> int:
    """One synthetic int8 audio sample (reproducible pseudo-signal)."""
    return ((word_index * 37 + lane * 11) % 201) - 100


def audio_coeff_byte(word_index: int, lane: int) -> int:
    """One synthetic int8 filter coefficient."""
    return ((word_index * 13 + lane * 7) % 31) - 15


def _audio_data(words: int, frames: int) -> Tuple[List[int], List[int]]:
    """Synthetic int8 audio samples and filter coefficients, packed four
    lanes per 32-bit word."""
    def pack(byte_at):
        packed = []
        for word_index in range(words + frames):
            value = 0
            for lane in range(4):
                value |= (byte_at(word_index, lane) & 0xFF) << (8 * lane)
            packed.append(value)
        return packed

    samples = pack(lambda w, l: to_unsigned(audio_sample_byte(w, l), 8))
    coeffs = pack(lambda w, l: to_unsigned(audio_coeff_byte(w, l), 8))
    return samples, coeffs[:words]


@register_kernel("audio_ml")
def audio_ml_kernel(words: int = AUDIO_WORDS, frame: int = 0,
                    samples_base: int = SAMPLES_BASE,
                    coeffs_base: int = COEFFS_BASE) -> Kernel:
    """The Section 5.6 inner loop (one output frame of the sliding-window
    dot-product) as a dataflow fixture: two packed-int8 streams, per-lane
    extract/sign-extend/multiply, and an accumulator — the shape the
    hand-written ``dotprod`` + ``autoinc`` + ``zol`` combination targets,
    now available to the discovery subsystem."""
    samples, coeffs = _audio_data(words, frame + 1)
    build = KernelBuilder("audio_ml")
    build.param("words", words)
    build.param("frame", frame)
    build.array("S", base=samples_base, data=samples,
                offset=4 * frame)
    build.array("C", base=coeffs_base, data=coeffs)
    acc = build.carry("ACC", init=0)
    sample = build.load("S")
    coeff = build.load("C")
    products = []
    for lane in range(4):
        s8 = build.sext(build.extract(sample, 8 * lane, 8), 8)
        c8 = build.sext(build.extract(coeff, 8 * lane, 8), 8)
        products.append(build.mul(s8, c8))
    total = build.add(build.add(products[0], products[1]),
                      build.add(products[2], products[3]))
    build.set_carry("ACC", build.add(acc, total))
    build.result("ACC")
    return build.build(trip_count=words)


def audio_baseline(frames: int = AUDIO_FRAMES, words: int = AUDIO_WORDS) -> str:
    """RV32IM baseline, compiled the way a decent compiler would: word
    loads, shift-based lane extraction, mul + accumulate, software loop
    control, activation through an in-memory lookup table."""
    lanes = "\n".join(
        f"""
      slli t4, s4, {24 - 8 * lane}
      srai t4, t4, 24
      slli t5, s5, {24 - 8 * lane}
      srai t5, t5, 24
      mul  t6, t4, t5
      add  t2, t2, t6"""
        for lane in range(4)
    )
    return f"""
      li   s0, {SAMPLES_BASE}
      li   s2, {OUT_BASE}
      li   s3, {frames}
    frame:
      mv   t0, s0
      li   t1, {COEFFS_BASE}
      li   t2, 0
      li   t3, {words}
    word:
      lw   s4, 0(t0)
      lw   s5, 0(t1)
      {lanes}
      addi t0, t0, 4
      addi t1, t1, 4
      addi t3, t3, -1
      bne  t3, zero, word
      andi t6, t2, 255
      li   t4, {ACT_TABLE_BASE}
      add  t4, t4, t6
      lbu  t5, 0(t4)
      sw   t5, 0(s2)
      addi s2, s2, 4
      addi s0, s0, 4
      addi s3, s3, -1
      bne  s3, zero, frame
      ecall
    """


def audio_isax(frames: int = AUDIO_FRAMES, words: int = AUDIO_WORDS) -> str:
    """Accelerated version: dotp for the 4-lane MACs, autoinc for the sample
    stream, zol for the inner loop, and the sbox ISAX as the table-based
    nonlinearity (four ISAXes including zol, as in the paper)."""
    return f"""
      li   s0, {SAMPLES_BASE}
      li   s2, {OUT_BASE}
      li   s3, {frames}
    frame:
      setup_ai s0
      li   t1, {COEFFS_BASE}
      li   t2, 0
      setup_zol uimmS=12, uimmL={words - 1}
      lw_ai t4
      lw   t5, 0(t1)
      dotp t6, t4, t5
      add  t2, t2, t6
      addi t1, t1, 4
      sbox t5, t2
      sw   t5, 0(s2)
      addi s2, s2, 4
      addi s0, s0, 4
      addi s3, s3, -1
      bne  s3, zero, frame
      ecall
    """


@dataclasses.dataclass
class AudioMLResult:
    baseline_cycles: int
    isax_cycles: int
    outputs: List[int]
    area_overhead_pct: float
    energy_ratio: float

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.isax_cycles

    @property
    def power_savings_pct(self) -> float:
        """Energy-per-inference savings of the extended core."""
        return 100.0 * (1.0 - self.energy_ratio)


def _expected_audio_outputs(samples, coeffs, frames, words,
                            table) -> List[int]:
    outputs = []
    for frame in range(frames):
        acc = 0
        for w in range(words):
            sample = samples[frame + w]
            coeff = coeffs[w]
            for lane in range(4):
                sb = to_signed((sample >> (8 * lane)) & 0xFF, 8)
                cb = to_signed((coeff >> (8 * lane)) & 0xFF, 8)
                acc += sb * cb
        outputs.append(table[to_unsigned(acc, 32) & 0xFF])
    return outputs


def run_audio_ml(core: str = "VexRiscv", frames: int = AUDIO_FRAMES,
                 words: int = AUDIO_WORDS) -> AudioMLResult:
    """Run the Section 5.6 case study on one core."""
    from repro.frontend import elaborate

    sources = [DOTPROD, AUTOINC, ZOL, SBOX]
    artifacts = [compile_isax(src, core) for src in sources]
    sbox_isa = elaborate(SBOX)
    table = sbox_isa.state["SBOX"].init_values or []

    samples, coeffs = _audio_data(words, frames)
    table_words = []
    for i in range(0, 256, 4):
        word = 0
        for lane in range(4):
            word |= table[i + lane] << (8 * lane)
        table_words.append(word)
    expected = _expected_audio_outputs(samples, coeffs, frames, words, table)

    def load_all(model: CoreTimingModel) -> None:
        model.load_data(samples, SAMPLES_BASE)
        model.load_data(coeffs, COEFFS_BASE)
        model.load_data(table_words, ACT_TABLE_BASE)

    baseline = CoreTimingModel(core_datasheet(core))
    baseline.load_program(assemble(audio_baseline(frames, words)))
    load_all(baseline)
    base_report = baseline.run()

    extended = CoreTimingModel(core_datasheet(core), artifacts=artifacts)
    extended.load_program(assemble(
        audio_isax(frames, words), isaxes=[a.isa for a in artifacts]
    ))
    load_all(extended)
    ext_report = extended.run()

    outputs = [ext_report.state.read_mem(OUT_BASE + 4 * i, 4)
               for i in range(frames)]
    base_outputs = [base_report.state.read_mem(OUT_BASE + 4 * i, 4)
                    for i in range(frames)]
    assert outputs == base_outputs == expected, "functional mismatch"

    asic = evaluate_combination(core, sources)
    # Power/energy via the 22 nm-class model (repro.eval.power): the base
    # core switches continuously, the ISAX blocks only while in flight.
    from repro.eval.power import compare, estimate_workload

    base_power = estimate_workload(
        asic.base_area_um2, 0.0, base_report.cycles, asic.base_freq_mhz
    )
    ext_power = estimate_workload(
        asic.base_area_um2, asic.extension_area_um2, ext_report.cycles,
        asic.freq_mhz, isax_cycles=ext_report.isax_busy_cycles,
    )
    energy_ratio = compare(base_power, ext_power)["energy_ratio"]
    return AudioMLResult(
        baseline_cycles=base_report.cycles,
        isax_cycles=ext_report.cycles,
        outputs=outputs,
        area_overhead_pct=asic.area_overhead_pct,
        energy_ratio=energy_ratio,
    )
