"""Lowering pipeline: decorated AST -> coredsl IR -> lil CDFG.

Mirrors Figure 5 of the paper: (a) CoreDSL source is elaborated by the
frontend, (b) :mod:`repro.lowering.ast_to_coredsl` emits a flat, typed
coredsl+hwarith representation (loops unrolled, calls inlined, branches
if-converted), (c) :mod:`repro.lowering.coredsl_to_lil` erases types into
``comb`` logic and pattern-matches state accesses to explicit SCAIE-V
sub-interface operations in the ``lil`` dialect.
"""

from repro.lowering.ast_to_coredsl import LoweredISAX, lower_isa
from repro.lowering.coredsl_to_lil import convert_to_lil

__all__ = ["LoweredISAX", "lower_isa", "convert_to_lil"]
