"""coredsl/hwarith -> lil/comb conversion (paper Figure 5, step b->c).

Performs:

* **type erasure** — ui/si types become signless ``iN`` values; every
  arithmetic operand is explicitly zero-/sign-extended to the result width
  (the ``comb`` convention), reproducing the extract/replicate/concat idiom
  visible in the paper's Figure 5c,
* **interface pattern matching** — architectural-state accesses become
  explicit ``lil`` sub-interface operations: reads of the main register file
  indexed by the ``rs1``/``rs2`` encoding fields map to ``lil.read_rs1/_rs2``,
  writes indexed by ``rd`` to ``lil.write_rd``, PC and address-space accesses
  to the corresponding ops, custom registers to ``lil.read/write_custreg``,
  and constant registers are internalized as ``lil.rom`` lookups,
* **spawn flattening** — operations from a ``coredsl.spawn`` region are
  flattened into the surrounding graph, with interface ops marked
  ``spawn: true`` to preserve their provenance (Section 4.1c),
* **legalization checks** — each SCAIE-V sub-interface may be used at most
  once per instruction (Section 3.1).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.dialects import lil
from repro.frontend.elaboration import ElaboratedISA, Encoding
from repro.ir.builder import Builder
from repro.ir.core import Graph, Operation, Value
from repro.ir.passes import canonicalize
from repro.utils.diagnostics import CoreDSLError

XLEN = 32


def address_width(elements: int) -> int:
    """SCAIE-V's AW: ceil(log2(num elements)), at least 1."""
    return max(1, math.ceil(math.log2(elements))) if elements > 1 else 1


class _LilConverter:
    def __init__(self, isa: ElaboratedISA, container: Operation):
        self.isa = isa
        self.container = container
        kind = ("instruction" if container.name == "coredsl.instruction"
                else "always")
        attrs = {}
        if kind == "instruction":
            attrs["pattern"] = container.attr("pattern")
            attrs["fields"] = container.attr("fields")
        self.graph = lil.make_graph(container.attr("name"), kind, **attrs)
        self.builder = Builder.at(self.graph)
        self.mapping: Dict[Value, Value] = {}
        self.instr_word: Optional[Value] = None
        self.in_spawn = False
        self.encoding: Optional[Encoding] = None
        if kind == "instruction":
            instr = isa.instructions[container.attr("name")]
            self.encoding = instr.encoding

    # ------------------------------------------------------------- helpers
    def value(self, typed: Value) -> Value:
        mapped = self.mapping.get(typed)
        if mapped is None:
            raise CoreDSLError(
                f"internal: operand of '{typed.owner.name if typed.owner else '?'}' "
                "not yet converted"
            )
        return mapped

    def const(self, value: int, width: int) -> Value:
        return self.builder.constant(value, width)

    def truncate(self, value: Value, width: int) -> Value:
        if value.width == width:
            return value
        return self.builder.create(
            "comb.extract", [value], [(width, None)], {"low": 0}
        ).result

    def zext(self, value: Value, width: int) -> Value:
        if value.width == width:
            return value
        if value.width > width:
            return self.truncate(value, width)
        zero = self.const(0, width - value.width)
        return self.builder.create(
            "comb.concat", [zero, value], [(width, None)]
        ).result

    def sext(self, value: Value, width: int) -> Value:
        if value.width == width:
            return value
        if value.width > width:
            return self.truncate(value, width)
        msb = self.builder.create(
            "comb.extract", [value], [(1, None)], {"low": value.width - 1}
        ).result
        extension = width - value.width
        if extension == 1:
            rep = msb
        else:
            rep = self.builder.create(
                "comb.replicate", [msb], [(extension, None)]
            ).result
        return self.builder.create(
            "comb.concat", [rep, value], [(width, None)]
        ).result

    def adapt(self, typed: Value, width: int) -> Value:
        """Bring a converted operand to ``width`` honoring its signedness."""
        value = self.value(typed)
        if typed.signed:
            return self.sext(value, width)
        return self.zext(value, width)

    def pred_operand(self, op: Operation, data_count: int) -> Value:
        """Extract the optional trailing predicate; default constant 1."""
        if op.attr("has_pred"):
            return self.value(op.operands[-1])
        return self.const(1, 1)

    def get_instr_word(self) -> Value:
        if self.instr_word is None:
            instr_op = Operation("lil.instr_word", [], [(XLEN, None)])
            # Keep the instruction word at the top of the graph.
            self.graph.block.operations.insert(0, instr_op)
            instr_op.parent = self.graph.block
            self.instr_word = instr_op.result
        return self.instr_word

    # -------------------------------------------------------------- fields
    def convert_field(self, op: Operation) -> Value:
        name = op.attr("name")
        assert self.encoding is not None
        field = self.encoding.fields.get(name)
        if field is None:
            raise CoreDSLError(
                f"instruction '{self.graph.name}' has no encoding field "
                f"'{name}'"
            )
        word = self.get_instr_word()
        placements = sorted(field.placements, key=lambda p: p.field_hi,
                            reverse=True)
        parts: List[Value] = []
        next_bit = field.width - 1
        for pl in placements:
            if pl.field_hi < next_bit:
                parts.append(self.const(0, next_bit - pl.field_hi))
            piece_width = pl.field_hi - pl.field_lo + 1
            parts.append(
                self.builder.create(
                    "comb.extract", [word], [(piece_width, None)],
                    {"low": pl.instr_lo},
                ).result
            )
            next_bit = pl.field_lo - 1
        if next_bit >= 0:
            parts.append(self.const(0, next_bit + 1))
        if len(parts) == 1:
            return parts[0]
        return self.builder.create(
            "comb.concat", parts, [(field.width, None)]
        ).result

    # -------------------------------------------------------- state access
    def _field_name_of_index(self, index_typed: Value) -> Optional[str]:
        owner = index_typed.owner
        if owner is not None and owner.name == "coredsl.field":
            return owner.attr("name")
        return None

    def _spawn_attrs(self, extra: Optional[dict] = None) -> dict:
        attrs = dict(extra or {})
        if self.in_spawn:
            attrs["spawn"] = True
        return attrs

    def convert_get(self, op: Operation) -> Value:
        info = self.isa.state[op.attr("reg")]
        count = op.attr("count", 1)
        if info.is_main_reg:
            field = self._field_name_of_index(op.operands[0])
            if field == "rs1":
                return self.builder.create(
                    "lil.read_rs1", [], [(XLEN, None)], self._spawn_attrs()
                ).result
            if field == "rs2":
                return self.builder.create(
                    "lil.read_rs2", [], [(XLEN, None)], self._spawn_attrs()
                ).result
            raise CoreDSLError(
                "reads of the main register file must be indexed by the "
                "'rs1' or 'rs2' encoding field (SCAIE-V RdRS1/RdRS2)"
            )
        if info.is_pc:
            return self.builder.create(
                "lil.read_pc", [], [(XLEN, None)], self._spawn_attrs()
            ).result
        if info.is_main_mem:
            size_bits = info.element.width * count
            if size_bits not in (8, 16, 32):
                raise CoreDSLError(
                    f"memory access of {size_bits} bits is not supported "
                    "(SCAIE-V RdMem handles 8/16/32-bit accesses)"
                )
            addr = self.adapt(op.operands[0], XLEN)
            pred = self.pred_operand(op, 1)
            return self.builder.create(
                "lil.read_mem", [addr, pred], [(size_bits, None)],
                self._spawn_attrs({"size_bits": size_bits}),
            ).result
        if info.kind == "rom":
            index = self.value(op.operands[0])
            return self.builder.create(
                "lil.rom", [index], [(info.element.width * count, None)],
                {"reg": info.name, "values": list(info.init_values or []),
                 "count": count},
            ).result
        # Custom register (scalar or array).
        has_index = info.kind == "array_reg"
        operands: List[Value] = []
        if has_index:
            aw = address_width(info.size or 1)
            operands.append(self.adapt(op.operands[0], aw))
        operands.append(self.const(1, 1))
        return self.builder.create(
            "lil.read_custreg", operands, [(info.element.width, None)],
            self._spawn_attrs({"reg": info.name, "has_index": has_index}),
        ).result

    def convert_set(self, op: Operation) -> None:
        info = self.isa.state[op.attr("reg")]
        count = op.attr("count", 1)
        has_index = bool(op.attr("has_index"))
        value_typed = op.operands[0]
        index_typed = op.operands[1] if has_index else None
        if info.is_main_reg:
            field = (self._field_name_of_index(index_typed)
                     if index_typed is not None else None)
            if field != "rd":
                raise CoreDSLError(
                    "writes to the main register file must be indexed by the "
                    "'rd' encoding field (SCAIE-V WrRD)"
                )
            value = self.adapt(value_typed, XLEN)
            pred = self.pred_operand(op, 1)
            self.builder.create(
                "lil.write_rd", [value, pred], [], self._spawn_attrs()
            )
            return
        if info.is_pc:
            value = self.adapt(value_typed, XLEN)
            pred = self.pred_operand(op, 1)
            self.builder.create(
                "lil.write_pc", [value, pred], [], self._spawn_attrs()
            )
            return
        if info.is_main_mem:
            size_bits = info.element.width * count
            if size_bits not in (8, 16, 32):
                raise CoreDSLError(
                    f"memory store of {size_bits} bits is not supported"
                )
            assert index_typed is not None
            addr = self.adapt(index_typed, XLEN)
            value = self.adapt(value_typed, size_bits)
            pred = self.pred_operand(op, 2)
            self.builder.create(
                "lil.write_mem", [addr, value, pred], [],
                self._spawn_attrs({"size_bits": size_bits}),
            )
            return
        if info.kind == "rom":
            raise CoreDSLError(f"cannot write constant register '{info.name}'")
        operands = []
        custom_index = info.kind == "array_reg"
        if custom_index:
            assert index_typed is not None
            aw = address_width(info.size or 1)
            operands.append(self.adapt(index_typed, aw))
        operands.append(self.adapt(value_typed, info.element.width))
        operands.append(self.pred_operand(op, 2 if custom_index else 1))
        self.builder.create(
            "lil.write_custreg", operands, [],
            self._spawn_attrs({"reg": info.name, "has_index": custom_index}),
        )

    # --------------------------------------------------------- computation
    def convert_compute(self, op: Operation) -> Value:
        name = op.name
        width = op.results[0].width
        if name == "hwarith.constant":
            return self.const(op.attr("value"), width)
        if name == "coredsl.cast":
            src = op.operands[0]
            value = self.value(src)
            if width <= src.width:
                return self.truncate(value, width)
            return self.sext(value, width) if src.signed else self.zext(value, width)
        if name in ("hwarith.add", "hwarith.sub", "hwarith.mul"):
            comb_name = {"hwarith.add": "comb.add", "hwarith.sub": "comb.sub",
                         "hwarith.mul": "comb.mul"}[name]
            lhs = self.adapt(op.operands[0], width)
            rhs = self.adapt(op.operands[1], width)
            attrs = {}
            if name == "hwarith.mul":
                # Record the pre-extension operand widths: synthesis infers
                # a w1 x w2 multiplier, not a width x width one, and the
                # technology library sizes it accordingly.
                attrs["op_widths"] = [op.operands[0].width,
                                      op.operands[1].width]
            return self.builder.create(
                comb_name, [lhs, rhs], [(width, None)], attrs
            ).result
        if name in ("hwarith.div", "hwarith.mod"):
            any_signed = bool(op.operands[0].signed or op.operands[1].signed)
            comb_name = {
                ("hwarith.div", False): "comb.divu",
                ("hwarith.div", True): "comb.divs",
                ("hwarith.mod", False): "comb.modu",
                ("hwarith.mod", True): "comb.mods",
            }[(name, any_signed)]
            lhs = self.adapt(op.operands[0], width)
            rhs = self.adapt(op.operands[1], width)
            return self.builder.create(
                comb_name, [lhs, rhs], [(width, None)]
            ).result
        if name == "hwarith.icmp":
            return self.convert_icmp(op)
        if name in ("coredsl.and", "coredsl.or", "coredsl.xor"):
            comb_name = "comb." + name.split(".")[1]
            lhs = self.adapt(op.operands[0], width)
            rhs = self.adapt(op.operands[1], width)
            return self.builder.create(
                comb_name, [lhs, rhs], [(width, None)]
            ).result
        if name == "coredsl.not":
            return self.builder.create(
                "comb.not", [self.value(op.operands[0])], [(width, None)]
            ).result
        if name == "coredsl.neg":
            operand = self.adapt(op.operands[0], width)
            zero = self.const(0, width)
            return self.builder.create(
                "comb.sub", [zero, operand], [(width, None)]
            ).result
        if name == "coredsl.shl":
            lhs = self.adapt(op.operands[0], width)
            amount = self.zext(self.value(op.operands[1]), width)
            return self.builder.create(
                "comb.shl", [lhs, amount], [(width, None)]
            ).result
        if name == "coredsl.shr":
            return self.convert_shr(op)
        if name == "coredsl.concat":
            lhs = self.value(op.operands[0])
            rhs = self.value(op.operands[1])
            return self.builder.create(
                "comb.concat", [lhs, rhs], [(width, None)]
            ).result
        if name == "coredsl.extract":
            operand = self.value(op.operands[0])
            return self.builder.create(
                "comb.extract", [operand], [(width, None)],
                {"low": op.attr("lo")},
            ).result
        if name == "coredsl.mux":
            cond = self.value(op.operands[0])
            true_value = self.adapt(op.operands[1], width)
            false_value = self.adapt(op.operands[2], width)
            return self.builder.create(
                "comb.mux", [cond, true_value, false_value], [(width, None)]
            ).result
        if name == "coredsl.field":
            return self.convert_field(op)
        raise CoreDSLError(f"cannot convert '{name}' to lil/comb")

    def convert_icmp(self, op: Operation) -> Value:
        lhs_t, rhs_t = op.operands
        pred = op.attr("predicate")
        if lhs_t.signed == rhs_t.signed:
            width = max(lhs_t.width, rhs_t.width)
            signed = bool(lhs_t.signed)
        else:
            unsigned_w = lhs_t.width if not lhs_t.signed else rhs_t.width
            signed_w = lhs_t.width if lhs_t.signed else rhs_t.width
            width = max(unsigned_w + 1, signed_w)
            signed = True
        lhs = self.adapt(lhs_t, width)
        rhs = self.adapt(rhs_t, width)
        if pred in ("eq", "ne"):
            comb_pred = pred
        else:
            comb_pred = ("s" if signed else "u") + {"lt": "lt", "le": "le",
                                                    "gt": "gt", "ge": "ge"}[pred]
        return self.builder.create(
            "comb.icmp", [lhs, rhs], [(1, None)], {"predicate": comb_pred}
        ).result

    def convert_shr(self, op: Operation) -> Value:
        width = op.results[0].width
        lhs_t, amt_t = op.operands
        lhs = self.value(lhs_t)
        shr_name = "comb.shrs" if lhs_t.signed else "comb.shru"
        if amt_t.width <= width:
            amount = self.zext(self.value(amt_t), width)
            return self.builder.create(
                shr_name, [lhs, amount], [(width, None)]
            ).result
        # Shift amount wider than the value: guard against overshift.
        amt = self.value(amt_t)
        limit = self.const(width, amt_t.width)
        overflow = self.builder.create(
            "comb.icmp", [amt, limit], [(1, None)], {"predicate": "uge"}
        ).result
        small = self.truncate(amt, width)
        shifted = self.builder.create(
            shr_name, [lhs, small], [(width, None)]
        ).result
        if lhs_t.signed:
            max_shift = self.const(width - 1, width)
            fill = self.builder.create(
                "comb.shrs", [lhs, max_shift], [(width, None)]
            ).result
        else:
            fill = self.const(0, width)
        return self.builder.create(
            "comb.mux", [overflow, fill, shifted], [(width, None)]
        ).result

    # -------------------------------------------------------------- driver
    def convert_block(self, block) -> None:
        for op in list(block.operations):
            if op.name == "coredsl.end":
                continue
            if op.name == "coredsl.spawn":
                self.in_spawn = True
                self.convert_block(op.regions[0].entry)
                self.in_spawn = False
                continue
            if op.name in ("coredsl.get", "coredsl.get_range"):
                self.mapping[op.results[0]] = self.convert_get(op)
            elif op.name in ("coredsl.set", "coredsl.set_range"):
                self.convert_set(op)
            elif op.results:
                self.mapping[op.results[0]] = self.convert_compute(op)
            else:
                raise CoreDSLError(f"cannot convert '{op.name}'")

    def check_single_use(self) -> None:
        counts: Dict[str, int] = {}
        for op in self.graph.operations:
            name = lil.interface_name(op)
            if name is not None:
                counts[name] = counts.get(name, 0) + 1
        violations = sorted(n for n, c in counts.items() if c > 1)
        if violations:
            raise CoreDSLError(
                f"'{self.graph.name}' uses sub-interface(s) "
                f"{', '.join(violations)} more than once; each SCAIE-V "
                "sub-interface may be used once per instruction"
            )

    def run(self) -> Graph:
        self.convert_block(self.container.regions[0].entry)
        self.builder.create("lil.sink", [], [])
        canonicalize(self.graph)
        # Fields used only to *select* a sub-interface (rs1/rs2/rd) leave no
        # consumer behind; drop the instruction-word read if nothing uses it.
        for op in list(self.graph.operations):
            if op.name == "lil.instr_word" and not op.has_uses:
                op.erase()
        self.check_single_use()
        self.graph.verify()
        return self.graph


def convert_to_lil(isa: ElaboratedISA, container: Operation) -> Graph:
    """Convert one lowered coredsl.instruction/always op to a lil graph."""
    return _LilConverter(isa, container).run()
