"""AST -> coredsl/hwarith IR emission (paper Figure 5, step a->b).

The emitter performs the "pre-HLS" normalizations while walking the decorated
AST:

* **Loop unrolling** — ``for`` loops must have compile-time-known trip counts
  (paper Section 2.4); the loop variable is tracked as a constant local.
* **Function inlining** — non-recursive helper functions are inlined at the
  call site.
* **If-conversion** — branches become mux-selected dataflow; architectural
  state writes accumulate a predicate.
* **State-access legalization** — every (state element, index) pair is read
  at most once and written at most once per behavior, with sequential
  read-after-write semantics provided by a shadow environment.  This is what
  makes the result compatible with SCAIE-V's one-use-per-sub-interface rule
  (Section 3.1).

The result per instruction/always-block is a ``coredsl.instruction`` /
``coredsl.always`` container operation holding a flat behavior region,
terminated by ``coredsl.end`` or ``coredsl.spawn`` (Section 2.5).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.frontend import ast_nodes as ast
from repro.frontend.elaboration import ElabAlways, ElabInstruction, ElaboratedISA
from repro.frontend.typecheck import FunctionSig, StateInfo, const_eval
from repro.frontend.types import IntType, signed, unsigned
from repro.ir.builder import Builder
from repro.ir.core import Block, Operation, Region, Value
from repro.utils.bits import to_unsigned
from repro.utils.diagnostics import CoreDSLError

#: Guard against runaway unrolling.
MAX_UNROLL_ITERATIONS = 65536


def _itype(value: Value) -> IntType:
    assert value.signed is not None
    return IntType(value.width, value.signed)


@dataclasses.dataclass
class _ShadowEntry:
    """Pending state of one (state element, index) pair."""

    value: Optional[Value] = None        # current value (read or written)
    written: bool = False
    pred: Optional[Value] = None         # accumulated write predicate (ui1)
    index: Optional[Value] = None        # index value for array accesses
    count: int = 1                       # elements (for address-space ranges)
    read_emitted: bool = False


@dataclasses.dataclass
class LoweredISAX:
    """All container ops for one ISAX, plus its originating ISA."""

    isa: ElaboratedISA
    instructions: Dict[str, Operation]
    always_blocks: Dict[str, Operation]


class _BehaviorEmitter:
    """Emits one instruction or always-block behavior into a flat region."""

    def __init__(self, isa: ElaboratedISA, fields: Dict[str, IntType]):
        self.isa = isa
        self.fields = fields
        self.block = Block()
        self.builder = Builder(self.block)
        self.locals: List[Dict[str, Value]] = [{}]
        self.const_locals: List[Dict[str, Optional[int]]] = [{}]
        self.pred: Optional[Value] = None          # current path predicate
        self.shadow: Dict[Tuple, _ShadowEntry] = {}
        self.field_cache: Dict[str, Value] = {}
        self.inline_stack: List[str] = []
        self.return_slot: Optional[Value] = None
        self.spawn_emitted = False
        self.mem_write_seen = False

    # ------------------------------------------------------------------ env
    def push_scope(self) -> None:
        self.locals.append({})
        self.const_locals.append({})

    def pop_scope(self) -> None:
        self.locals.pop()
        self.const_locals.pop()

    def bind(self, name: str, value: Value, const: Optional[int]) -> None:
        self.locals[-1][name] = value
        self.const_locals[-1][name] = const

    def rebind(self, name: str, value: Value, const: Optional[int]) -> None:
        for frame, cframe in zip(reversed(self.locals),
                                 reversed(self.const_locals)):
            if name in frame:
                frame[name] = value
                cframe[name] = const
                return
        raise CoreDSLError(f"assignment to undeclared local '{name}'")

    def lookup(self, name: str) -> Optional[Value]:
        for frame in reversed(self.locals):
            if name in frame:
                return frame[name]
        return None

    def const_env(self) -> Dict[str, int]:
        env = dict(self.isa.parameters)
        for frame in self.const_locals:
            for name, value in frame.items():
                if value is not None:
                    env[name] = value
                elif name in env:
                    del env[name]
        return env

    # ------------------------------------------------------------ value utils
    def constant(self, value: int, type_: IntType) -> Value:
        raw = to_unsigned(value, type_.width)
        op = self.builder.create(
            "hwarith.constant", [], [(type_.width, type_.is_signed)],
            {"value": raw},
        )
        return op.result

    def cast_to(self, value: Value, target: IntType) -> Value:
        if value.width == target.width and value.signed == target.is_signed:
            return value
        op = self.builder.create(
            "coredsl.cast", [value], [(target.width, target.is_signed)]
        )
        return op.result

    def to_bool(self, value: Value) -> Value:
        if value.width == 1 and value.signed is False:
            return value
        zero = self.constant(0, _itype(value))
        op = self.builder.create(
            "hwarith.icmp", [value, zero], [(1, False)], {"predicate": "ne"}
        )
        return op.result

    def bool_and(self, lhs: Optional[Value], rhs: Value) -> Value:
        if lhs is None:
            return rhs
        op = self.builder.create("coredsl.and", [lhs, rhs], [(1, False)])
        return op.result

    def bool_not(self, value: Value) -> Value:
        op = self.builder.create("coredsl.not", [value], [(1, False)])
        return op.result

    def mux(self, cond: Value, true_value: Value, false_value: Value) -> Value:
        if true_value is false_value:
            return true_value
        target = IntType(
            max(true_value.width, false_value.width),
            bool(true_value.signed or false_value.signed),
        )
        # Widen one more bit if mixed signedness would lose values.
        if true_value.signed != false_value.signed:
            target = IntType(target.width + 1, True)
        true_cast = self.cast_to(true_value, target)
        false_cast = self.cast_to(false_value, target)
        op = self.builder.create(
            "coredsl.mux", [cond, true_cast, false_cast],
            [(target.width, target.is_signed)],
        )
        return op.result

    # ------------------------------------------------------- state handling
    def _state_info(self, name: str) -> Optional[StateInfo]:
        if self.lookup(name) is not None:
            return None
        return self.isa.state.get(name)

    def _index_key(self, reg: str, index: Optional[ast.Expr],
                   index_value: Optional[Value]) -> Tuple:
        if index is None:
            return (reg, None)
        const = const_eval(index, self.const_env())
        if const is not None:
            return (reg, "const", const)
        if isinstance(index, ast.Identifier) and index.name in self.fields:
            return (reg, "field", index.name)
        return (reg, "dyn", id(index_value))

    def state_read(self, info: StateInfo, index: Optional[ast.Expr] = None,
                   count: int = 1) -> Value:
        index_value = None
        if index is not None:
            index_value = self.emit_expr(index)
        key = self._index_key(info.name, index, index_value) + (count,)
        entry = self.shadow.get(key)
        if entry is not None and entry.value is not None:
            return entry.value
        if info.kind == "mem" and any(
            k[0] == info.name and self.shadow[k].written for k in self.shadow
        ):
            raise CoreDSLError(
                f"read from '{info.name}' after a write to it is not "
                "supported within one instruction"
            )
        result_type = (info.element.width * count, False if count > 1
                       else info.element.is_signed)
        operands = [] if index_value is None else [index_value]
        attrs = {"reg": info.name}
        op_name = "coredsl.get"
        if count > 1:
            op_name = "coredsl.get_range"
            attrs["count"] = count
        if info.kind == "mem" and self.pred is not None:
            operands.append(self.pred)
            attrs["has_pred"] = True
        op = self.builder.create(op_name, operands, [result_type], attrs)
        entry = _ShadowEntry(value=op.result, index=index_value, count=count,
                             read_emitted=True)
        self.shadow[key] = entry
        return op.result

    def state_write(self, info: StateInfo, value: Value,
                    index: Optional[ast.Expr] = None, count: int = 1) -> None:
        if info.kind == "rom":
            raise CoreDSLError(f"cannot write constant register '{info.name}'")
        index_value = None
        if index is not None:
            index_value = self.emit_expr(index)
        key = self._index_key(info.name, index, index_value) + (count,)
        target = (unsigned(info.element.width * count) if count > 1
                  else info.element)
        value = self.cast_to(value, target)
        entry = self.shadow.setdefault(
            key, _ShadowEntry(index=index_value, count=count)
        )
        # Invariant: ``entry.pred is None`` means the write always happens.
        if entry.written and self.pred is not None:
            # Conditional overwrite: merge with the previous pending value.
            entry.value = self.cast_to(
                self.mux(self.pred, value, entry.value), target
            )
            if entry.pred is not None:
                entry.pred = self.builder.create(
                    "coredsl.or", [entry.pred, self.pred], [(1, False)]
                ).result
        else:
            entry.value = value
            entry.pred = self.pred
        entry.written = True

    def finalize_writes(self) -> None:
        """Emit one coredsl.set per written (state, index) pair."""
        for key, entry in list(self.shadow.items()):
            if not entry.written:
                continue
            reg = key[0]
            info = self.isa.state[reg]
            operands = [entry.value]
            attrs: Dict[str, object] = {"reg": reg}
            op_name = "coredsl.set"
            if entry.count > 1:
                op_name = "coredsl.set_range"
                attrs["count"] = entry.count
            if entry.index is not None:
                operands.append(entry.index)
                attrs["has_index"] = True
            if entry.pred is not None:
                operands.append(entry.pred)
                attrs["has_pred"] = True
            self.builder.create(op_name, operands, [], attrs)
        self.shadow.clear()
        self.field_cache.clear()

    # ---------------------------------------------------------- statements
    def emit_behavior(self, body: ast.BlockStmt, kind: str) -> Block:
        self.emit_stmt(body)
        self.finalize_writes()
        if not self.spawn_emitted:
            self.builder.create("coredsl.end", [], [])
        return self.block

    def emit_stmt(self, stmt: ast.Stmt) -> None:
        if self.spawn_emitted:
            raise CoreDSLError(
                "no statements may follow a 'spawn' block", stmt.loc
            )
        if isinstance(stmt, ast.BlockStmt):
            self.push_scope()
            for child in stmt.statements:
                self.emit_stmt(child)
            self.pop_scope()
        elif isinstance(stmt, ast.VarDecl):
            self.emit_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self.emit_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.FunctionCall):
                self.inline_call(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.emit_if(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.emit_for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.emit_while(stmt)
        elif isinstance(stmt, ast.SwitchStmt):
            self.emit_switch(stmt)
        elif isinstance(stmt, ast.SpawnStmt):
            self.emit_spawn(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            raise CoreDSLError("'return' outside of a function", stmt.loc)
        else:
            raise CoreDSLError(
                f"cannot lower statement {type(stmt).__name__}", stmt.loc
            )

    def emit_var_decl(self, stmt: ast.VarDecl) -> None:
        decl_type = stmt.decl_type
        assert isinstance(decl_type, IntType)
        if stmt.init is not None:
            const = const_eval(stmt.init, self.const_env())
            value = self.cast_to(self.emit_expr(stmt.init), decl_type)
        else:
            const = 0
            value = self.constant(0, decl_type)
        self.bind(stmt.name, value, const)

    def emit_assign(self, stmt: ast.Assign) -> None:
        if stmt.op == "=":
            rhs = self.emit_expr(stmt.value)
            rhs_const = const_eval(stmt.value, self.const_env())
        else:
            binop = ast.BinaryOp(
                loc=stmt.loc, op=stmt.op[:-1], lhs=stmt.target, rhs=stmt.value
            )
            binop.ctype = None
            rhs_const = const_eval(binop, self.const_env())
            rhs = self.emit_binary(binop)
        target = stmt.target
        if isinstance(target, ast.Identifier):
            local = self.lookup(target.name)
            if local is not None:
                target_type = _itype(local)
                value = self.cast_to(rhs, target_type)
                if rhs_const is not None and not target_type.can_represent(rhs_const):
                    rhs_const = None  # compound wrap-around: drop const track
                if self.pred is not None:
                    value = self.cast_to(
                        self.mux(self.pred, value, local), target_type
                    )
                    rhs_const = None
                self.rebind(target.name, value, rhs_const)
                return
            info = self._state_info(target.name)
            if info is not None and info.kind == "scalar_reg":
                self.state_write(info, self.cast_to(rhs, info.element))
                return
            raise CoreDSLError(
                f"unsupported assignment target '{target.name}'", stmt.loc
            )
        if isinstance(target, ast.IndexExpr):
            assert isinstance(target.base, ast.Identifier)
            info = self._state_info(target.base.name)
            if info is None:
                raise CoreDSLError(
                    "bit-indexed assignment is not supported", stmt.loc
                )
            self.state_write(info, rhs, index=target.index)
            return
        if isinstance(target, ast.RangeExpr):
            assert isinstance(target.base, ast.Identifier)
            info = self._state_info(target.base.name)
            if info is None or info.kind != "mem":
                raise CoreDSLError("unsupported range assignment", stmt.loc)
            count = self._range_count(target)
            self.state_write(info, rhs, index=target.lo, count=count)
            return
        raise CoreDSLError("unsupported assignment target", stmt.loc)

    def emit_if(self, stmt: ast.IfStmt) -> None:
        const_cond = const_eval(stmt.cond, self.const_env())
        if const_cond is not None:
            branch = stmt.then_body if const_cond else stmt.else_body
            if branch is not None:
                self.emit_stmt(branch)
            return
        cond = self.to_bool(self.emit_expr(stmt.cond))

        saved_locals = [dict(f) for f in self.locals]
        saved_consts = [dict(f) for f in self.const_locals]
        saved_shadow = {k: dataclasses.replace(v) for k, v in self.shadow.items()}
        saved_pred = self.pred

        self.pred = self.bool_and(saved_pred, cond)
        self.emit_stmt(stmt.then_body)
        then_locals = [dict(f) for f in self.locals]
        then_consts = [dict(f) for f in self.const_locals]
        then_shadow = self.shadow

        self.locals = [dict(f) for f in saved_locals]
        self.const_locals = [dict(f) for f in saved_consts]
        self.shadow = {k: dataclasses.replace(v) for k, v in saved_shadow.items()}
        self.pred = self.bool_and(saved_pred, self.bool_not(cond))
        if stmt.else_body is not None:
            self.emit_stmt(stmt.else_body)
        else_locals = self.locals
        else_consts = self.const_locals
        else_shadow = self.shadow

        self.pred = saved_pred
        # Merge locals frame by frame.
        merged_locals: List[Dict[str, Value]] = []
        merged_consts: List[Dict[str, Optional[int]]] = []
        for frame_then, frame_else, cframe_then, cframe_else in zip(
            then_locals, else_locals, then_consts, else_consts
        ):
            frame: Dict[str, Value] = {}
            cframe: Dict[str, Optional[int]] = {}
            for name in frame_then:
                if name not in frame_else:
                    continue
                tv, ev = frame_then[name], frame_else[name]
                if tv is ev:
                    frame[name] = tv
                    cframe[name] = cframe_then.get(name)
                else:
                    original = _itype(tv)
                    frame[name] = self.cast_to(self.mux(cond, tv, ev), original)
                    cframe[name] = None
            merged_locals.append(frame)
            merged_consts.append(cframe)
        self.locals = merged_locals
        self.const_locals = merged_consts
        self.shadow = self._merge_shadow(cond, then_shadow, else_shadow)

    def _merge_shadow(self, cond: Value, then_shadow: Dict, else_shadow: Dict) -> Dict:
        merged: Dict[Tuple, _ShadowEntry] = {}
        # Keys may embed id()s of index values, so a set union here would
        # iterate in an address-dependent order and leak into the emitted
        # write order (and ultimately the module's port order).  Preserve
        # insertion order instead: then-branch keys first, then the
        # else-only ones.
        keys = list(then_shadow)
        keys.extend(k for k in else_shadow if k not in then_shadow)
        for key in keys:
            te = then_shadow.get(key)
            ee = else_shadow.get(key)
            if te is None:
                merged[key] = ee  # type: ignore[assignment]
                continue
            if ee is None:
                merged[key] = te
                continue
            if te.value is ee.value and te.written == ee.written:
                merged[key] = te
                continue
            entry = _ShadowEntry(index=te.index if te.index is not None else ee.index,
                                 count=te.count)
            entry.written = te.written or ee.written
            if te.value is not None and ee.value is not None:
                entry.value = self.mux(cond, te.value, ee.value)
                if te.value.signed is not None:
                    entry.value = self.cast_to(entry.value, _itype(te.value))
            else:
                entry.value = te.value if te.value is not None else ee.value
            if entry.written:
                # Predicate per branch: None means "always written"; a branch
                # that did not write contributes constant 0.
                one = self.constant(1, unsigned(1))
                zero = self.constant(0, unsigned(1))
                tp = (te.pred or one) if te.written else zero
                ep = (ee.pred or one) if ee.written else zero
                entry.pred = self.cast_to(self.mux(cond, tp, ep), unsigned(1))
            entry.read_emitted = te.read_emitted or ee.read_emitted
            merged[key] = entry
        return merged

    def emit_for(self, stmt: ast.ForStmt) -> None:
        self.push_scope()
        if stmt.init is not None:
            self.emit_stmt(stmt.init)
        iterations = 0
        while True:
            if stmt.cond is not None:
                cond = const_eval(stmt.cond, self.const_env())
                if cond is None:
                    raise CoreDSLError(
                        "for-loops must have compile-time-known trip counts "
                        "for hardware synthesis",
                        stmt.loc,
                    )
                if not cond:
                    break
            self.emit_stmt(stmt.body)
            if stmt.step is not None:
                self.emit_stmt(stmt.step)
            iterations += 1
            if iterations > MAX_UNROLL_ITERATIONS:
                raise CoreDSLError(
                    f"loop exceeds {MAX_UNROLL_ITERATIONS} unrolled iterations",
                    stmt.loc,
                )
        self.pop_scope()

    def emit_while(self, stmt: ast.WhileStmt) -> None:
        """While/do-while loops unroll like for-loops: the condition must be
        compile-time evaluable at every iteration boundary."""
        self.push_scope()
        iterations = 0
        first = True
        while True:
            if not (first and stmt.is_do_while):
                cond = const_eval(stmt.cond, self.const_env())
                if cond is None:
                    raise CoreDSLError(
                        "while-loops must have compile-time-known trip "
                        "counts for hardware synthesis",
                        stmt.loc,
                    )
                if not cond:
                    break
            first = False
            self.emit_stmt(stmt.body)
            iterations += 1
            if iterations > MAX_UNROLL_ITERATIONS:
                raise CoreDSLError(
                    f"loop exceeds {MAX_UNROLL_ITERATIONS} unrolled "
                    "iterations",
                    stmt.loc,
                )
        self.pop_scope()

    def emit_switch(self, stmt: ast.SwitchStmt) -> None:
        """Switch lowers to an if/else-if chain on equality (arms are
        break-terminated, so there is no fall-through to model)."""
        value_const = const_eval(stmt.value, self.const_env())
        default = next((c for c in stmt.cases if c.label is None), None)
        if value_const is not None:
            for case in stmt.cases:
                if case.label is not None and \
                        case.label.const_value == value_const:
                    self.emit_stmt(case.body)
                    return
            if default is not None:
                self.emit_stmt(default.body)
            return
        chain: Optional[ast.Stmt] = default.body if default else None
        for case in reversed([c for c in stmt.cases if c.label is not None]):
            cond = ast.BinaryOp(loc=case.loc, op="==", lhs=stmt.value,
                                rhs=case.label)
            cond.ctype = None
            chain = ast.IfStmt(loc=case.loc, cond=cond, then_body=case.body,
                               else_body=chain)
        if chain is not None:
            self.emit_stmt(chain)

    def emit_spawn(self, stmt: ast.SpawnStmt) -> None:
        if self.pred is not None:
            raise CoreDSLError(
                "'spawn' inside a conditional branch is not supported", stmt.loc
            )
        self.finalize_writes()
        region = Region([Block()])
        self.builder.create("coredsl.spawn", [], [], regions=[region])
        outer_builder = self.builder
        self.builder = Builder(region.entry)
        self.emit_stmt(stmt.body)
        self.finalize_writes()
        self.builder.create("coredsl.end", [], [])
        self.builder = outer_builder
        self.spawn_emitted = True

    # ---------------------------------------------------------- expressions
    def emit_expr(self, expr: ast.Expr) -> Value:
        env = self.const_env()
        const = const_eval(expr, env)
        if const is not None and expr.ctype is not None:
            # Materialize emission-time constants (e.g. unrolled loop vars).
            type_ = expr.ctype
            if not type_.can_represent(const):
                type_ = signed(max(type_.width + 1, const.bit_length() + 1))
            return self.constant(const, type_)
        if isinstance(expr, ast.IntLiteral):
            type_ = expr.explicit_type or expr.ctype
            assert type_ is not None
            return self.constant(expr.value, type_)
        if isinstance(expr, ast.BoolLiteral):
            return self.constant(int(expr.value), unsigned(1))
        if isinstance(expr, ast.Identifier):
            return self.emit_identifier(expr)
        if isinstance(expr, ast.BinaryOp):
            return self.emit_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.emit_unary(expr)
        if isinstance(expr, ast.Conditional):
            cond = self.to_bool(self.emit_expr(expr.cond))
            true_value = self.emit_expr(expr.true_value)
            false_value = self.emit_expr(expr.false_value)
            result = self.mux(cond, true_value, false_value)
            return self.cast_to(result, expr.ctype) if expr.ctype else result
        if isinstance(expr, ast.Cast):
            operand = self.emit_expr(expr.operand)
            assert expr.ctype is not None
            return self.cast_to(operand, expr.ctype)
        if isinstance(expr, ast.FunctionCall):
            result = self.inline_call(expr)
            if result is None:
                raise CoreDSLError(
                    f"void function '{expr.callee}' used as value", expr.loc
                )
            return result
        if isinstance(expr, ast.IndexExpr):
            return self.emit_index(expr)
        if isinstance(expr, ast.RangeExpr):
            return self.emit_range(expr)
        raise CoreDSLError(
            f"cannot lower expression {type(expr).__name__}", expr.loc
        )

    def emit_identifier(self, expr: ast.Identifier) -> Value:
        local = self.lookup(expr.name)
        if local is not None:
            return local
        if expr.name in self.fields:
            cached = self.field_cache.get(expr.name)
            if cached is not None:
                return cached
            type_ = self.fields[expr.name]
            op = self.builder.create(
                "coredsl.field", [], [(type_.width, False)], {"name": expr.name}
            )
            self.field_cache[expr.name] = op.result
            return op.result
        info = self._state_info(expr.name)
        if info is not None and info.kind == "scalar_reg":
            return self.state_read(info)
        raise CoreDSLError(f"cannot lower identifier '{expr.name}'", expr.loc)

    _BINOP_TO_IR = {
        "+": "hwarith.add", "-": "hwarith.sub", "*": "hwarith.mul",
        "/": "hwarith.div", "%": "hwarith.mod",
        "&": "coredsl.and", "|": "coredsl.or", "^": "coredsl.xor",
        "<<": "coredsl.shl", ">>": "coredsl.shr", "::": "coredsl.concat",
    }
    _CMP_TO_PRED = {
        "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    }

    def emit_binary(self, expr: ast.BinaryOp) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            lhs = self.to_bool(self.emit_expr(expr.lhs))
            rhs = self.to_bool(self.emit_expr(expr.rhs))
            name = "coredsl.and" if op == "&&" else "coredsl.or"
            return self.builder.create(name, [lhs, rhs], [(1, False)]).result
        lhs = self.emit_expr(expr.lhs)
        rhs = self.emit_expr(expr.rhs)
        if op in self._CMP_TO_PRED:
            return self.builder.create(
                "hwarith.icmp", [lhs, rhs], [(1, False)],
                {"predicate": self._CMP_TO_PRED[op]},
            ).result
        result_type = expr.ctype
        if result_type is None:
            # Synthesized compound-assignment node: recompute the type.
            from repro.frontend import types as ty
            lt, rt = _itype(lhs), _itype(rhs)
            result_type = {
                "+": ty.add_result, "-": ty.sub_result, "*": ty.mul_result,
                "/": ty.div_result, "%": ty.mod_result,
                "&": ty.bitwise_result, "|": ty.bitwise_result,
                "^": ty.bitwise_result,
            }.get(op, lambda a, b: None)(lt, rt)
            if result_type is None:
                if op == "<<":
                    shift_const = const_eval(expr.rhs, self.const_env())
                    result_type = ty.shl_result(lt, rt, shift_const)
                elif op == ">>":
                    result_type = ty.shr_result(lt, rt)
                elif op == "::":
                    result_type = ty.concat_result(lt, rt)
                else:
                    raise CoreDSLError(f"cannot type operator '{op}'", expr.loc)
        name = self._BINOP_TO_IR.get(op)
        if name is None:
            raise CoreDSLError(f"cannot lower operator '{op}'", expr.loc)
        return self.builder.create(
            name, [lhs, rhs], [(result_type.width, result_type.is_signed)]
        ).result

    def emit_unary(self, expr: ast.UnaryOp) -> Value:
        operand = self.emit_expr(expr.operand)
        if expr.op == "-":
            type_ = expr.ctype or signed(operand.width + 1)
            return self.builder.create(
                "coredsl.neg", [operand], [(type_.width, type_.is_signed)]
            ).result
        if expr.op == "~":
            return self.builder.create(
                "coredsl.not", [operand], [(operand.width, operand.signed)]
            ).result
        if expr.op == "!":
            zero = self.constant(0, _itype(operand))
            return self.builder.create(
                "hwarith.icmp", [operand, zero], [(1, False)],
                {"predicate": "eq"},
            ).result
        raise CoreDSLError(f"cannot lower unary '{expr.op}'", expr.loc)

    def emit_index(self, expr: ast.IndexExpr) -> Value:
        if isinstance(expr.base, ast.Identifier):
            info = self._state_info(expr.base.name)
            if info is not None and info.kind in ("array_reg", "mem", "rom"):
                return self.state_read(info, index=expr.index)
            if info is not None and info.kind == "scalar_reg":
                base = self.state_read(info)
                return self._bit_select(base, expr.index)
        base = self.emit_expr(expr.base)
        return self._bit_select(base, expr.index)

    def _bit_select(self, base: Value, index: ast.Expr) -> Value:
        const = const_eval(index, self.const_env())
        if const is not None:
            return self.builder.create(
                "coredsl.extract", [base], [(1, False)],
                {"hi": const, "lo": const},
            ).result
        amount = self.emit_expr(index)
        shifted = self.builder.create(
            "coredsl.shr", [base, amount], [(base.width, base.signed)]
        ).result
        return self.builder.create(
            "coredsl.extract", [shifted], [(1, False)], {"hi": 0, "lo": 0}
        ).result

    def _range_count(self, expr: ast.RangeExpr) -> int:
        env = self.const_env()
        hi = const_eval(expr.hi, env)
        lo = const_eval(expr.lo, env)
        if hi is not None and lo is not None:
            if hi < lo:
                raise CoreDSLError(f"range [{hi}:{lo}] has from < to", expr.loc)
            return hi - lo + 1
        from repro.frontend.typecheck import range_width
        return range_width(expr.hi, expr.lo, env)

    def emit_range(self, expr: ast.RangeExpr) -> Value:
        count = self._range_count(expr)
        if isinstance(expr.base, ast.Identifier):
            info = self._state_info(expr.base.name)
            if info is not None and info.kind in ("mem", "array_reg", "rom"):
                return self.state_read(info, index=expr.lo, count=count)
            if info is not None and info.kind == "scalar_reg":
                base = self.state_read(info)
                return self._range_select(base, expr, count)
        base = self.emit_expr(expr.base)
        return self._range_select(base, expr, count)

    def _range_select(self, base: Value, expr: ast.RangeExpr, count: int) -> Value:
        env = self.const_env()
        lo = const_eval(expr.lo, env)
        if lo is None:
            raise CoreDSLError(
                "bit-range bounds must be compile-time constants after "
                "loop unrolling",
                expr.loc,
            )
        return self.builder.create(
            "coredsl.extract", [base], [(count, False)],
            {"hi": lo + count - 1, "lo": lo},
        ).result

    # ------------------------------------------------------------- inlining
    def inline_call(self, call: ast.FunctionCall) -> Optional[Value]:
        sig = self.isa.functions.get(call.callee)
        if sig is None:
            raise CoreDSLError(f"unknown function '{call.callee}'", call.loc)
        if call.callee in self.inline_stack:
            raise CoreDSLError(
                f"recursive call to '{call.callee}' cannot be synthesized",
                call.loc,
            )
        self.inline_stack.append(call.callee)
        outer_locals, outer_consts = self.locals, self.const_locals
        # Evaluate arguments in the caller's environment first.
        frame: Dict[str, Value] = {}
        cframe: Dict[str, Optional[int]] = {}
        for arg, (param_name, param_type) in zip(call.args, sig.params):
            frame[param_name] = self.cast_to(self.emit_expr(arg), param_type)
            cframe[param_name] = const_eval(arg, self.const_env())
        result = self._inline_body(sig, [frame], [cframe])
        self.locals, self.const_locals = outer_locals, outer_consts
        self.inline_stack.pop()
        return result

    def _inline_body(self, sig: FunctionSig, inner_locals, inner_consts):
        self.locals, self.const_locals = inner_locals, inner_consts
        body = sig.definition.body
        assert body is not None
        statements = body.statements
        result: Optional[Value] = None
        for i, stmt in enumerate(statements):
            if isinstance(stmt, ast.ReturnStmt):
                if i != len(statements) - 1:
                    raise CoreDSLError(
                        f"'return' must be the last statement of "
                        f"'{sig.name}' for inlining",
                        stmt.loc,
                    )
                if stmt.value is not None:
                    assert sig.return_type is not None
                    result = self.cast_to(
                        self.emit_expr(stmt.value), sig.return_type
                    )
                break
            self.emit_stmt(stmt)
        return result


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def lower_instruction(isa: ElaboratedISA, instr: ElabInstruction) -> Operation:
    emitter = _BehaviorEmitter(isa, instr.fields)
    block = emitter.emit_behavior(instr.behavior, "instruction")
    region = Region([block])
    return Operation(
        "coredsl.instruction", [], [],
        {
            "name": instr.name,
            "pattern": instr.encoding.pattern,
            "fields": sorted(instr.fields),
        },
        regions=[region],
    )


def lower_always(isa: ElaboratedISA, always: ElabAlways) -> Operation:
    emitter = _BehaviorEmitter(isa, {})
    block = emitter.emit_behavior(always.body, "always")
    region = Region([block])
    return Operation(
        "coredsl.always", [], [], {"name": always.name}, regions=[region]
    )


def lower_isa(isa: ElaboratedISA) -> LoweredISAX:
    """Lower every instruction and always-block of an elaborated ISA to the
    coredsl/hwarith IR level (paper Figure 5b)."""
    instructions = {
        name: lower_instruction(isa, instr)
        for name, instr in isa.instructions.items()
    }
    always_blocks = {
        name: lower_always(isa, always)
        for name, always in isa.always_blocks.items()
    }
    return LoweredISAX(isa, instructions, always_blocks)
