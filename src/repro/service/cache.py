"""Content-addressed on-disk artifact cache for batch compilation.

Records are JSON documents keyed by the job's content digest
(:meth:`repro.service.jobs.CompileJob.cache_key`): source text +
virtual datasheet + scheduler options.  Layout::

    <root>/ab/abcdef....json

The two-character fan-out keeps directories small for large grids.
Writes go through a temporary file in the same directory followed by
``os.replace``, so concurrent writers (the executor's worker processes, or
several batch invocations sharing one cache) can never expose a torn
record; the worst case is both doing the same work and one rename winning.

The cache keeps hit/miss/put/evict accounting and supports a bounded
``max_entries`` with least-recently-used eviction: every ``get`` hit
touches the record's mtime, and eviction drops the oldest mtime first with
a deterministic filename tie-break (mtime granularity is coarse on some
filesystems, so equal-mtime victims must not depend on directory order).

:class:`ShardedArtifactCache` layers N independent shards over this store,
routed by content digest, each with its own eviction budget — the warm
tier the compile server serves thousands of concurrent clients from
(eviction pressure in one shard cannot wipe the whole working set).
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import pathlib
import re
import tempfile
from typing import List, Optional

#: Keys are content digests; a key that could name a path component
#: (separators, dot segments) must never reach filesystem layout code.
_SAFE_KEY_RE = re.compile(r"[0-9a-zA-Z][0-9a-zA-Z_-]*")


@dataclasses.dataclass
class CacheStats:
    """Running accounting for one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits, "misses": self.misses, "puts": self.puts,
            "evictions": self.evictions, "hit_rate": round(self.hit_rate, 4),
        }


class ArtifactCache:
    """A content-addressed store of JSON artifact records."""

    def __init__(self, root: os.PathLike,
                 max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = pathlib.Path(root)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- key/path mapping ---------------------------------------------------
    def path_for(self, key: str) -> pathlib.Path:
        if len(key) < 3:
            raise ValueError(f"cache key too short: {key!r}")
        if not _SAFE_KEY_RE.fullmatch(key):
            raise ValueError(f"unsafe cache key: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def _entries(self) -> List[pathlib.Path]:
        return [p for p in self.root.glob("*/*.json")]

    def __len__(self) -> int:
        return len(self._entries())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    # -- lookup/store -------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Return the cached record for ``key`` or None on a miss.

        Unreadable/corrupt records (e.g. from a crashed writer on a
        filesystem without atomic rename) count as misses and are removed.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        # LRU touch: a hit refreshes the record's mtime so hot entries
        # survive `_evict_to` even when they were written long ago.
        with contextlib.suppress(OSError):
            os.utime(path, None)
        return record

    def put(self, key: str, record: dict) -> pathlib.Path:
        """Atomically store ``record`` under ``key``; returns its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(record, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        self.stats.puts += 1
        if self.max_entries is not None:
            self._evict_to(self.max_entries)
        return path

    # -- maintenance --------------------------------------------------------
    def _evict_to(self, limit: int) -> None:
        entries = self._entries()
        if len(entries) <= limit:
            return
        # LRU by mtime; the filename (== cache key) breaks ties so that
        # coarse-grained mtimes still evict deterministically.
        entries.sort(key=lambda p: (p.stat().st_mtime, p.name))
        for victim in entries[:len(entries) - limit]:
            victim.unlink(missing_ok=True)
            self.stats.evictions += 1

    def clear(self) -> int:
        """Remove every record; returns how many were dropped."""
        dropped = 0
        for entry in self._entries():
            entry.unlink(missing_ok=True)
            dropped += 1
        return dropped


class ShardedArtifactCache:
    """A digest-sharded warm cache tier over :class:`ArtifactCache`.

    Keys route to ``int(key[:8], 16) % shards``, so one content digest
    always lands in the same shard (stable across restarts and across
    processes sharing the directory).  Each shard is an independent
    :class:`ArtifactCache` under ``<root>/shard-NN`` with its own
    ``per_shard_entries`` eviction budget: hot traffic concentrated on a
    few digests can evict at most its own shard, and shards can be served
    concurrently without a global lock (disk writes are already atomic).

    Accounting aggregates across shards (plus per-shard breakdown via
    :meth:`stats_by_shard`) — the compile server folds it into
    ``/v1/metrics``.
    """

    def __init__(self, root: os.PathLike, shards: int = 8,
                 per_shard_entries: Optional[int] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = pathlib.Path(root)
        self.shards: List[ArtifactCache] = [
            ArtifactCache(self.root / f"shard-{index:02d}",
                          max_entries=per_shard_entries)
            for index in range(shards)
        ]

    def shard_for(self, key: str) -> ArtifactCache:
        if len(key) < 8:
            raise ValueError(f"cache key too short: {key!r}")
        return self.shards[int(key[:8], 16) % len(self.shards)]

    def shard_index(self, key: str) -> int:
        return self.shards.index(self.shard_for(key))

    def get(self, key: str) -> Optional[dict]:
        return self.shard_for(key).get(key)

    def put(self, key: str, record: dict) -> pathlib.Path:
        return self.shard_for(key).put(key, record)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, key: str) -> bool:
        return key in self.shard_for(key)

    def clear(self) -> int:
        return sum(shard.clear() for shard in self.shards)

    @property
    def stats(self) -> CacheStats:
        """Aggregate accounting over every shard (fresh object per call)."""
        total = CacheStats()
        for shard in self.shards:
            total.hits += shard.stats.hits
            total.misses += shard.stats.misses
            total.puts += shard.stats.puts
            total.evictions += shard.stats.evictions
        return total

    def stats_by_shard(self) -> List[dict]:
        return [
            {"shard": index, "entries": len(shard),
             **shard.stats.to_dict()}
            for index, shard in enumerate(self.shards)
        ]

    def to_dict(self) -> dict:
        doc = self.stats.to_dict()
        doc["shards"] = len(self.shards)
        doc["entries"] = len(self)
        doc["by_shard"] = self.stats_by_shard()
        return doc
