"""Phase-level instrumentation for the batch compilation service.

Every job records wall-clock seconds per compilation phase (the
:data:`repro.hls.longnail.PHASES` boundaries) plus the ILP scheduling
statistics of every functionality it produced — operation count, makespan,
objective value, chain breakers, and which solver engine actually ran.
:class:`BatchMetrics` aggregates one executor run and dumps it as JSON for
the benchmark harness.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Dict, List, Optional

from repro.hls.longnail import PHASES


class PhaseRecorder:
    """Accumulating ``(phase, seconds)`` observer for ``compile_isax``."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}

    def __call__(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds

    def to_dict(self) -> Dict[str, float]:
        return {phase: round(self.seconds.get(phase, 0.0), 6)
                for phase in PHASES}


@dataclasses.dataclass
class JobMetrics:
    """Instrumentation for one executed (or cache-served) job."""

    job_id: str
    isax: str
    core: str
    status: str                        # "ok" | "failed"
    cached: bool
    attempts: int
    seconds: float                     # end-to-end wall time for the job
    phases: Dict[str, float]           # per-phase seconds (compile jobs)
    ilp: List[dict]                    # per-functionality scheduler stats
    lint: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Optimizer report (``OptimizerReport.to_dict``); empty at -O0.
    optimizer: Dict[str, object] = dataclasses.field(default_factory=dict)
    error: Optional[str] = None

    def to_dict(self) -> dict:
        doc = {
            "job_id": self.job_id,
            "isax": self.isax,
            "core": self.core,
            "status": self.status,
            "cached": self.cached,
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
            "phases": {k: round(v, 6) for k, v in self.phases.items()},
            "ilp": self.ilp,
            "lint": self.lint,
            "optimizer": self.optimizer,
        }
        if self.error:
            doc["error"] = self.error
        return doc


@dataclasses.dataclass
class BatchMetrics:
    """All instrumentation produced by one executor run."""

    jobs: List[JobMetrics] = dataclasses.field(default_factory=list)
    cache_stats: Optional[dict] = None
    workers: int = 1
    #: Extra section contributed by the long-lived compile server
    #: (queue/coalesce/latency counters); absent for plain batch runs.
    server: Optional[dict] = None

    def add(self, job: JobMetrics) -> None:
        self.jobs.append(job)

    # -- aggregates ---------------------------------------------------------
    @property
    def ok(self) -> int:
        return sum(1 for j in self.jobs if j.status == "ok")

    @property
    def failed(self) -> int:
        return sum(1 for j in self.jobs if j.status != "ok")

    @property
    def cached(self) -> int:
        return sum(1 for j in self.jobs if j.cached)

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {phase: 0.0 for phase in PHASES}
        for job in self.jobs:
            for phase, seconds in job.phases.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return {k: round(v, 6) for k, v in totals.items()}

    def scheduler_totals(self) -> Dict[str, object]:
        """Aggregate solver stats over every scheduled graph in the batch:
        engine usage, graph sizes, schedule-cache hit rate, solve time."""
        engines: Dict[str, int] = {}
        graphs = operations = dependences = components = 0
        hits = misses = 0
        seconds = 0.0
        for job in self.jobs:
            for entry in job.ilp:
                graphs += 1
                engine = entry.get("engine", "unknown")
                engines[engine] = engines.get(engine, 0) + 1
                operations += entry.get("operations", 0)
                dependences += entry.get("dependences", 0)
                components += entry.get("components", 0)
                hits += entry.get("schedule_cache_hits", 0)
                misses += entry.get("schedule_cache_misses", 0)
                seconds += entry.get("solve_seconds", 0.0)
        lookups = hits + misses
        return {
            "graphs": graphs,
            "engines": engines,
            "operations": operations,
            "dependences": dependences,
            "components": components,
            "schedule_cache_hits": hits,
            "schedule_cache_misses": misses,
            "schedule_cache_hit_rate": (
                round(hits / lookups, 4) if lookups else 0.0
            ),
            "solve_seconds": round(seconds, 6),
        }

    def optimizer_totals(self) -> Dict[str, object]:
        """Optimizer activity summed over every job in the batch: graphs
        rewritten, node counts before/after, per-pass op counts and time."""
        jobs = graphs = 0
        nodes_before = nodes_after = removed = rewritten = 0
        seconds = 0.0
        passes: Dict[str, Dict[str, float]] = {}
        for job in self.jobs:
            report = job.optimizer or {}
            if not report:
                continue
            jobs += 1
            graphs += int(report.get("graphs", 0))
            nodes_before += int(report.get("nodes_before", 0))
            nodes_after += int(report.get("nodes_after", 0))
            removed += int(report.get("ops_removed", 0))
            rewritten += int(report.get("ops_rewritten", 0))
            seconds += float(report.get("seconds", 0.0))
            for name, stats in (report.get("passes") or {}).items():
                entry = passes.setdefault(
                    name, {"runs": 0, "ops_removed": 0,
                           "ops_rewritten": 0, "seconds": 0.0},
                )
                entry["runs"] += int(stats.get("runs", 0))
                entry["ops_removed"] += int(stats.get("ops_removed", 0))
                entry["ops_rewritten"] += int(stats.get("ops_rewritten", 0))
                entry["seconds"] += float(stats.get("seconds", 0.0))
        reduction = (100.0 * (nodes_before - nodes_after) / nodes_before
                     if nodes_before else 0.0)
        for entry in passes.values():
            entry["seconds"] = round(entry["seconds"], 6)
        return {
            "jobs": jobs,
            "graphs": graphs,
            "nodes_before": nodes_before,
            "nodes_after": nodes_after,
            "node_reduction_pct": round(reduction, 2),
            "ops_removed": removed,
            "ops_rewritten": rewritten,
            "seconds": round(seconds, 6),
            "passes": passes,
        }

    def lint_totals(self) -> Dict[str, int]:
        """Lint findings summed over every job in the batch, by severity."""
        totals: Dict[str, int] = {"error": 0, "warning": 0, "note": 0}
        for job in self.jobs:
            for severity, count in job.lint.items():
                totals[severity] = totals.get(severity, 0) + count
        return totals

    def to_dict(self) -> dict:
        doc = {
            "workers": self.workers,
            "jobs_total": len(self.jobs),
            "jobs_ok": self.ok,
            "jobs_failed": self.failed,
            "jobs_cached": self.cached,
            "phase_totals_s": self.phase_totals(),
            "scheduler": self.scheduler_totals(),
            "optimizer": self.optimizer_totals(),
            "lint_totals": self.lint_totals(),
            "cache": self.cache_stats,
            "jobs": [job.to_dict() for job in self.jobs],
        }
        if self.server is not None:
            doc["server"] = self.server
        return doc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def dump(self, path: os.PathLike) -> pathlib.Path:
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target
