"""The batch compilation job model.

A :class:`CompileJob` is one cell of the portability grid the paper's
headline claim implies: *one* CoreDSL ISAX source compiled for *one* host
core under one scheduler configuration.  The job is pure data — source
text, core name (or an inline datasheet), scheduler engine and target
cycle time — so it can be hashed for the artifact cache and shipped to a
worker process unchanged.

Compilation proceeds through the explicit phase boundaries of
:data:`repro.hls.longnail.PHASES`:

    parse -> lower -> schedule -> hwgen -> emit

and the executor records wall-time per phase per job
(:mod:`repro.service.metrics`).

Grids come from :func:`job_grid` (cross product of ISAXes x cores x cycle
scales) or from a YAML manifest via :func:`load_manifest`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.opt.pipeline import OptOptions
from repro.scaiev.cores import core_datasheet
from repro.scaiev.datasheet import VirtualDatasheet
from repro.utils import yaml_lite
from repro.utils.diagnostics import CoreDSLError

#: Bump when the cached artifact record layout changes; part of every cache
#: key so stale-format entries simply miss.  "2" added the optimizer
#: configuration (opt_level / opt_passes) to records and keys.
CACHE_FORMAT_VERSION = "2"


def digest(*parts: str) -> str:
    """Stable content digest over an ordered sequence of strings."""
    hasher = hashlib.sha256()
    for part in parts:
        data = part.encode("utf-8")
        hasher.update(str(len(data)).encode("ascii"))
        hasher.update(b":")
        hasher.update(data)
    return hasher.hexdigest()


@dataclasses.dataclass(frozen=True)
class CompileJob:
    """One (ISAX, core, scheduler-options) compile request."""

    isax: str                       # label (manifest/grid name)
    source: str                     # CoreDSL source text
    core: str                       # core name, or "" when datasheet inline
    engine: str = "auto"
    cycle_time_ns: Optional[float] = None
    top: Optional[str] = None
    datasheet_yaml: Optional[str] = None   # overrides `core` when set
    opt_level: int = 0                     # -O level (0/1/2)
    opt_passes: Tuple[str, ...] = ()       # "+name"/"-name" overrides

    def opt_options(self) -> OptOptions:
        """The optimizer configuration this job compiles under."""
        return OptOptions.from_flags(self.opt_level, self.opt_passes)

    @property
    def job_id(self) -> str:
        suffix = "" if self.cycle_time_ns is None \
            else f"@{self.cycle_time_ns:g}ns"
        return f"{self.isax}/{self.core_label}{suffix}"

    @property
    def core_label(self) -> str:
        if self.datasheet_yaml is not None:
            return VirtualDatasheet.from_yaml(self.datasheet_yaml).core_name
        return self.core

    @property
    def source_digest(self) -> str:
        return digest(self.source)

    def resolve_datasheet(self) -> VirtualDatasheet:
        if self.datasheet_yaml is not None:
            return VirtualDatasheet.from_yaml(self.datasheet_yaml)
        return core_datasheet(self.core)

    def cache_key(self) -> str:
        """Content-addressed key: source text + datasheet + scheduler
        options.  Editing any of them (even re-deriving the datasheet from
        a changed core description) produces a different key."""
        datasheet = self.resolve_datasheet()
        return digest(
            CACHE_FORMAT_VERSION,
            self.source,
            datasheet.to_yaml(),
            self.engine,
            repr(self.cycle_time_ns),
            repr(self.top),
            self.opt_options().fingerprint(),
        )

    def to_payload(self) -> dict:
        """Plain-dict form shipped to worker processes."""
        return {
            "isax": self.isax,
            "source": self.source,
            "core": self.core,
            "engine": self.engine,
            "cycle_time_ns": self.cycle_time_ns,
            "top": self.top,
            "datasheet_yaml": self.datasheet_yaml,
            "opt_level": self.opt_level,
            "opt_passes": list(self.opt_passes),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CompileJob":
        return cls(
            isax=payload["isax"],
            source=payload["source"],
            core=payload.get("core", ""),
            engine=payload.get("engine", "auto"),
            cycle_time_ns=payload.get("cycle_time_ns"),
            top=payload.get("top"),
            datasheet_yaml=payload.get("datasheet_yaml"),
            opt_level=int(payload.get("opt_level", 0)),
            opt_passes=tuple(payload.get("opt_passes") or ()),
        )


def _resolve_source(name: str, sources: Optional[Dict[str, str]]) -> str:
    if sources and name in sources:
        return sources[name]
    from repro.isaxes import ALL_ISAXES

    if name not in ALL_ISAXES:
        raise CoreDSLError(
            f"unknown ISAX {name!r}; available: "
            + ", ".join(sorted(ALL_ISAXES))
        )
    return ALL_ISAXES[name]


def job_grid(
    isaxes: Sequence[str],
    cores: Sequence[str],
    cycle_scales: Sequence[Optional[float]] = (None,),
    engine: str = "auto",
    sources: Optional[Dict[str, str]] = None,
    opt_level: int = 0,
    opt_passes: Sequence[str] = (),
) -> List[CompileJob]:
    """Cross product (ISAX x core x cycle scale) -> deterministic job list.

    ``cycle_scales`` multiply each core's native cycle time; ``None`` keeps
    the core's f_max target.  ``sources`` maps ISAX labels to CoreDSL text
    and overrides the built-in Table 3 set.  ``opt_level``/``opt_passes``
    select the optimizer pipeline every job compiles under.
    """
    OptOptions.from_flags(opt_level, opt_passes)   # validates early
    jobs: List[CompileJob] = []
    for isax in isaxes:
        source = _resolve_source(isax, sources)
        for core in cores:
            datasheet = core_datasheet(core)   # validates the name early
            for scale in cycle_scales:
                cycle = None if scale is None \
                    else datasheet.cycle_time_ns * scale
                jobs.append(CompileJob(
                    isax=isax, source=source, core=core,
                    engine=engine, cycle_time_ns=cycle,
                    opt_level=opt_level, opt_passes=tuple(opt_passes),
                ))
    return jobs


def load_manifest(text: str,
                  sources: Optional[Dict[str, str]] = None) -> List[CompileJob]:
    """Parse a batch manifest (YAML) into a job list.

    Two styles, combinable in one file:

    * grid keys — ``isaxes``, ``cores``, plus optional ``cycle_scales``
      and ``engine``; expanded via :func:`job_grid`,
    * an explicit ``jobs`` sequence of ``{isax, core}`` mappings with
      optional ``cycle_time``, ``engine`` and ``top`` per entry.
    """
    doc = yaml_lite.loads(text)
    if not isinstance(doc, dict):
        raise CoreDSLError("batch manifest must be a YAML mapping")
    jobs: List[CompileJob] = []
    doc_level = int(doc.get("opt_level") or 0)
    doc_passes = tuple(doc.get("opt_passes") or ())
    if "isaxes" in doc or "cores" in doc:
        isaxes = doc.get("isaxes") or []
        cores = doc.get("cores") or []
        if not isaxes or not cores:
            raise CoreDSLError(
                "manifest grid needs both 'isaxes' and 'cores'"
            )
        scales = doc.get("cycle_scales") or [None]
        jobs.extend(job_grid(
            isaxes, cores, cycle_scales=scales,
            engine=doc.get("engine", "auto"), sources=sources,
            opt_level=doc_level, opt_passes=doc_passes,
        ))
    for entry in doc.get("jobs") or []:
        if not isinstance(entry, dict) or "isax" not in entry \
                or "core" not in entry:
            raise CoreDSLError(
                "manifest job entries need 'isax' and 'core' keys"
            )
        core_datasheet(entry["core"])          # validates the name early
        cycle = entry.get("cycle_time")
        jobs.append(CompileJob(
            isax=entry["isax"],
            source=_resolve_source(entry["isax"], sources),
            core=entry["core"],
            engine=entry.get("engine", "auto"),
            cycle_time_ns=float(cycle) if cycle is not None else None,
            top=entry.get("top"),
            opt_level=int(entry.get("opt_level", doc_level)),
            opt_passes=tuple(entry.get("opt_passes") or doc_passes),
        ))
    if not jobs:
        raise CoreDSLError("batch manifest describes no jobs")
    return jobs
