"""Parallel (ISAX x core) fan-out over a process pool.

The executor takes a list of :class:`TaskSpec` — a picklable unit of work
naming a module-level *runner* function plus a JSON-able payload — and
returns one :class:`JobOutcome` per spec **in input order**, regardless of
completion order, so grid sweeps stay deterministic.

Features:

* **artifact cache short-circuit** — specs carrying a content digest are
  served from :class:`repro.service.cache.ArtifactCache` without touching
  a worker,
* **per-job timeout** — a job blocking longer than ``timeout_s`` is marked
  failed and the pool is torn down (a stuck solver cannot wedge the whole
  batch),
* **retry-once-on-failure** (configurable ``retries``) — transient
  failures get a fresh round in a fresh pool, separated by exponential
  backoff with deterministic jitter (:func:`retry_backoff_s`) so a flaky
  shared resource is not hammered in lock-step,
* ``workers <= 1`` degrades to in-process serial execution through the
  *same* code path, which is what the unit tests and the default
  :func:`repro.eval.dse.explore` use.

The compile runner (:func:`run_compile_payload`) executes one
:class:`repro.service.jobs.CompileJob` through the full Longnail flow with
per-phase instrumentation and returns a JSON-able artifact record.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import importlib
import time
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.hls.longnail import compile_isax
from repro.service.cache import ArtifactCache
from repro.service.jobs import CompileJob
from repro.service.metrics import BatchMetrics, JobMetrics, PhaseRecorder
from repro.utils.diagnostics import count_by_severity

#: Runner reference for plain compile jobs.
COMPILE_RUNNER = "repro.service.executor:run_compile_payload"


def retry_backoff_s(token: str, attempt: int, base_s: float,
                    cap_s: float = 30.0) -> float:
    """Backoff before retry ``attempt`` (1-based): exponential growth with
    deterministic jitter.

    The raw delay doubles per attempt (``base_s * 2**(attempt-1)``, capped
    at ``cap_s``) and is then scaled into ``[0.5, 1.0)`` of itself by a
    jitter derived from ``sha256(token:attempt)`` — so two jobs retrying at
    the same moment desynchronise, yet the same job retries after the same
    delay on every run (reproducible batches, testable schedules).
    """
    if base_s <= 0.0 or attempt <= 0:
        return 0.0
    raw = min(cap_s, base_s * (2.0 ** (attempt - 1)))
    seed = hashlib.sha256(f"{token}:{attempt}".encode("utf-8")).digest()
    jitter = 0.5 + int.from_bytes(seed[:8], "big") / 2.0 ** 65
    return raw * jitter


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit: runner reference + payload (+ cache key)."""

    runner: str                 # "package.module:function"
    payload: dict               # JSON-able; handed to the runner verbatim
    key: Optional[str] = None   # content digest; None disables caching
    label: str = ""             # display/diagnostic name


@dataclasses.dataclass
class JobOutcome:
    """Result of one spec, cached or executed."""

    spec: TaskSpec
    status: str                 # "ok" | "failed"
    cached: bool
    attempts: int
    seconds: float
    result: Optional[dict] = None
    error: Optional[str] = None
    backoff_seconds: float = 0.0   # total retry backoff this job waited

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _resolve_runner(runner: str):
    module_name, _, func_name = runner.partition(":")
    if not module_name or not func_name:
        raise ValueError(f"runner must be 'module:function', got {runner!r}")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


def _pool_call(runner: str, payload: dict) -> dict:
    """Top-level (hence picklable) worker entry point."""
    start = time.perf_counter()
    value = _resolve_runner(runner)(payload)
    return {"seconds": time.perf_counter() - start, "value": value}


class BatchExecutor:
    """Fans a job list out over ``concurrent.futures`` worker processes."""

    def __init__(self, workers: int = 1,
                 cache: Optional[ArtifactCache] = None,
                 timeout_s: Optional[float] = None,
                 retries: int = 1,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 30.0) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        self.workers = workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s

    def _backoff_token(self, spec: TaskSpec, index: int) -> str:
        return spec.key or spec.label or f"{spec.runner}#{index}"

    # -- generic spec execution --------------------------------------------
    def run_specs(self, specs: Sequence[TaskSpec]) -> List[JobOutcome]:
        outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None and spec.key:
                lookup_start = time.perf_counter()
                record = self.cache.get(spec.key)
                if record is not None:
                    outcomes[index] = JobOutcome(
                        spec=spec, status="ok", cached=True, attempts=0,
                        seconds=time.perf_counter() - lookup_start,
                        result=record,
                    )
                    continue
            pending.append(index)

        attempts: Dict[int, int] = {i: 0 for i in pending}
        errors: Dict[int, str] = {}
        timings: Dict[int, float] = {i: 0.0 for i in pending}
        backoffs: Dict[int, float] = {i: 0.0 for i in pending}
        remaining = pending
        while remaining and min(attempts[i] for i in remaining) <= self.retries:
            if any(attempts[i] > 0 for i in remaining):
                # Retry round: per-job exponential backoff (deterministic
                # jitter); the rounds are batched so one sleep covers the
                # longest delay of the round.
                delays = {
                    i: retry_backoff_s(
                        self._backoff_token(specs[i], i), attempts[i],
                        self.backoff_base_s, self.backoff_cap_s,
                    )
                    for i in remaining
                }
                for i, delay in delays.items():
                    backoffs[i] += delay
                pause = max(delays.values())
                if pause > 0:
                    time.sleep(pause)
            round_results = self._run_round(
                [(i, specs[i]) for i in remaining]
            )
            still_failing: List[int] = []
            for index in remaining:
                ok, value, seconds = round_results[index]
                attempts[index] += 1
                timings[index] += seconds
                if ok:
                    outcomes[index] = JobOutcome(
                        spec=specs[index], status="ok", cached=False,
                        attempts=attempts[index], seconds=timings[index],
                        result=value, backoff_seconds=backoffs[index],
                    )
                    if self.cache is not None and specs[index].key:
                        self.cache.put(specs[index].key, value)
                else:
                    errors[index] = value
                    if attempts[index] <= self.retries:
                        still_failing.append(index)
                    else:
                        outcomes[index] = JobOutcome(
                            spec=specs[index], status="failed", cached=False,
                            attempts=attempts[index], seconds=timings[index],
                            error=value, backoff_seconds=backoffs[index],
                        )
            remaining = still_failing
        return [outcome for outcome in outcomes if outcome is not None]

    def _run_round(self, items: List[Tuple[int, TaskSpec]]
                   ) -> Dict[int, Tuple[bool, Any, float]]:
        if self.workers <= 1 or len(items) == 1:
            return self._run_round_inline(items)
        return self._run_round_pool(items)

    def _run_round_inline(self, items: List[Tuple[int, TaskSpec]]
                          ) -> Dict[int, Tuple[bool, Any, float]]:
        results: Dict[int, Tuple[bool, Any, float]] = {}
        for index, spec in items:
            start = time.perf_counter()
            try:
                value = _resolve_runner(spec.runner)(spec.payload)
                results[index] = (True, value,
                                  time.perf_counter() - start)
            except Exception as err:  # noqa: BLE001 — reported per job
                results[index] = (
                    False,
                    f"{type(err).__name__}: {err}\n"
                    + traceback.format_exc(limit=4),
                    time.perf_counter() - start,
                )
        return results

    def _run_round_pool(self, items: List[Tuple[int, TaskSpec]]
                        ) -> Dict[int, Tuple[bool, Any, float]]:
        results: Dict[int, Tuple[bool, Any, float]] = {}
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(items))
        )
        timed_out = False
        try:
            futures = {
                index: pool.submit(_pool_call, spec.runner, spec.payload)
                for index, spec in items
            }
            # Iterating in submission order keeps the result list
            # deterministic; `timeout_s` bounds the *additional* wait per
            # job (later jobs have been running concurrently meanwhile).
            for index, spec in items:
                wait_start = time.perf_counter()
                try:
                    wrapped = futures[index].result(timeout=self.timeout_s)
                    results[index] = (True, wrapped["value"],
                                      wrapped["seconds"])
                except concurrent.futures.TimeoutError:
                    timed_out = True
                    results[index] = (
                        False,
                        f"timed out after {self.timeout_s:g}s",
                        time.perf_counter() - wait_start,
                    )
                except Exception as err:  # noqa: BLE001 — reported per job
                    results[index] = (
                        False,
                        f"{type(err).__name__}: {err}",
                        time.perf_counter() - wait_start,
                    )
        finally:
            # After a timeout the stuck worker still holds the job; drop
            # the whole pool rather than reuse a clogged one.
            pool.shutdown(wait=not timed_out, cancel_futures=True)
        return results

    # -- compile-grid convenience ------------------------------------------
    def run_compile_jobs(self, jobs: Sequence[CompileJob]
                         ) -> Tuple[List[JobOutcome], BatchMetrics]:
        """Run a compile grid; returns (outcomes, phase-level metrics)."""
        specs = [
            TaskSpec(runner=COMPILE_RUNNER, payload=job.to_payload(),
                     key=job.cache_key(), label=job.job_id)
            for job in jobs
        ]
        outcomes = self.run_specs(specs)
        metrics = BatchMetrics(
            workers=self.workers,
            cache_stats=(self.cache.stats.to_dict()
                         if self.cache is not None else None),
        )
        for job, outcome in zip(jobs, outcomes):
            record = outcome.result or {}
            metrics.add(JobMetrics(
                job_id=job.job_id,
                isax=job.isax,
                core=job.core_label,
                status=outcome.status,
                cached=outcome.cached,
                attempts=outcome.attempts,
                seconds=outcome.seconds,
                phases=record.get("phases", {}),
                ilp=record.get("ilp", []),
                lint=record.get("lint_counts", {}),
                optimizer=record.get("optimizer", {}),
                error=outcome.error,
            ))
        return outcomes, metrics


def run_compile_payload(payload: dict) -> dict:
    """Execute one compile job end-to-end; returns the artifact record.

    This is the runner the pool workers invoke; everything in and out is
    plain JSON-able data.
    """
    job = CompileJob.from_payload(payload)
    recorder = PhaseRecorder()
    datasheet = job.resolve_datasheet()
    artifact = compile_isax(
        job.source, datasheet, top=job.top, engine=job.engine,
        cycle_time_ns=job.cycle_time_ns, phase_hook=recorder,
        opt=job.opt_options(),
    )
    emit_start = time.perf_counter()
    verilog = artifact.verilog
    config_yaml = artifact.config_yaml
    recorder("emit", time.perf_counter() - emit_start)

    ilp_stats = []
    functionalities = []
    for name, functionality in artifact.functionalities.items():
        schedule = functionality.schedule
        functionalities.append({
            "name": name,
            "kind": functionality.kind,
            "mode": functionality.mode.value,
            "makespan": schedule.makespan,
        })
        entry = {
            "functionality": name,
            "engine": schedule.engine,
            "operations": len(schedule.graph.operations),
            "dependences": len(schedule.problem.dependences),
            "makespan": schedule.makespan,
            "objective": schedule.objective,
            "chain_breakers": schedule.chain_breakers,
        }
        if schedule.stats is not None:
            entry.update({
                "components": schedule.stats.components,
                "schedule_cache_hits": schedule.stats.cache_hits,
                "schedule_cache_misses": schedule.stats.cache_misses,
                "solve_seconds": round(schedule.stats.solve_seconds, 6),
                "verified": schedule.stats.verified,
            })
        ilp_stats.append(entry)

    return {
        "isax": artifact.name,
        "job_isax": job.isax,
        "core": artifact.core_name,
        "engine": job.engine,
        "cycle_time_ns": job.cycle_time_ns,
        "source_digest": job.source_digest,
        "verilog": verilog,
        "config_yaml": config_yaml,
        "functionalities": functionalities,
        "phases": recorder.to_dict(),
        "ilp": ilp_stats,
        "lint": [diag.to_dict() for diag in artifact.diagnostics],
        "lint_counts": count_by_severity(artifact.diagnostics),
        "optimizer": (artifact.optimizer.to_dict()
                      if artifact.optimizer is not None else {}),
    }
