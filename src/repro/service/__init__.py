"""Batch compilation service (scaling the one-shot driver).

The paper's portability claim — one CoreDSL ISAX, many host cores — makes
the real workload a *grid* of (ISAX, core, cycle-time) compilations.  This
package turns :func:`repro.hls.longnail.compile_isax` into a batch engine:

* :mod:`repro.service.jobs` — the job model and grid/manifest builders,
* :mod:`repro.service.cache` — content-addressed on-disk artifact cache,
* :mod:`repro.service.executor` — process-pool fan-out with per-job
  timeout, retry and deterministic ordering,
* :mod:`repro.service.metrics` — per-phase / per-job instrumentation.

CLI entry point: ``repro-longnail batch``.
"""

from repro.service.cache import ArtifactCache, CacheStats, ShardedArtifactCache
from repro.service.executor import (
    BatchExecutor,
    JobOutcome,
    TaskSpec,
    retry_backoff_s,
    run_compile_payload,
)
from repro.service.jobs import CompileJob, job_grid, load_manifest
from repro.service.metrics import BatchMetrics, JobMetrics, PhaseRecorder

__all__ = [
    "ArtifactCache",
    "BatchExecutor",
    "BatchMetrics",
    "CacheStats",
    "CompileJob",
    "JobMetrics",
    "JobOutcome",
    "PhaseRecorder",
    "ShardedArtifactCache",
    "TaskSpec",
    "job_grid",
    "load_manifest",
    "retry_backoff_s",
    "run_compile_payload",
]
