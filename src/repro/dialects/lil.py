"""The ``lil`` dialect — "Longnail Intermediate Language" (paper Section 4.1c).

Provides (1) container graphs representing each instruction/always-block as a
flat control-data-flow graph, and (2) explicit operations for the SCAIE-V
sub-interfaces of Table 1, making them schedulable alongside the computation.

Interface operations and their SCAIE-V counterparts:

===================  =======================  ===========================
operation            SCAIE-V sub-interface    operands -> results
===================  =======================  ===========================
lil.instr_word       RdInstr                  -> i32
lil.read_rs1/_rs2    RdRS1 / RdRS2            -> i32
lil.read_pc          RdPC                     -> i32
lil.read_mem         RdMem                    (addr, pred) -> i<size>
lil.write_rd         WrRD                     (value, pred)
lil.write_pc         WrPC                     (newPC, pred)
lil.write_mem        WrMem                    (addr, value, pred)
lil.read_custreg     RdCustReg                (index, pred) -> iDW
lil.write_custreg    WrCustReg.addr/.data     (index, value, pred)
===================  =======================  ===========================

Scalar custom registers omit the index operand (``has_index`` attribute is
False); SCAIE-V still receives a ``.addr`` schedule entry for hazard
handling, matching the paper's Figure 8 discussion.

Operations lowered from inside a ``spawn`` block carry ``spawn: true`` to
preserve their provenance (Section 4.1c).  ``lil.rom`` represents constant
registers internalized into the ISAX module.  ``lil.sink`` is the graph
terminator (visible in Figure 5c).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.core import Graph, IRError, OpDef, Operation, register_op

#: Graph attribute keys.
KIND_INSTRUCTION = "instruction"
KIND_ALWAYS = "always"


def _verify_pred_last(num_data: int):
    """Interface ops have ``num_data`` payload operands plus a trailing i1
    predicate."""

    def verify(op: Operation) -> None:
        if len(op.operands) != num_data + 1:
            raise IRError(
                f"'{op.name}' expects {num_data} data operands plus a "
                f"predicate, has {len(op.operands)}"
            )
        if op.operands[-1].width != 1:
            raise IRError(f"'{op.name}' predicate must be i1")

    return verify


def _verify_custreg(op: Operation) -> None:
    if op.attr("reg") is None:
        raise IRError(f"'{op.name}' needs a 'reg' attribute")
    expected = 1 + (1 if op.attr("has_index") else 0)
    if op.name == "lil.write_custreg":
        expected += 1
    if len(op.operands) != expected:
        raise IRError(
            f"'{op.name}' expects {expected} operands "
            f"(has_index={bool(op.attr('has_index'))}), has {len(op.operands)}"
        )


def _verify_read_mem(op: Operation) -> None:
    _verify_pred_last(1)(op)
    if op.attr("size_bits") not in (8, 16, 32):
        raise IRError("'lil.read_mem' size_bits must be 8, 16 or 32")
    if op.result.width != op.attr("size_bits"):
        raise IRError("'lil.read_mem' result width must equal size_bits")


def _verify_write_mem(op: Operation) -> None:
    _verify_pred_last(2)(op)
    if op.attr("size_bits") not in (8, 16, 32):
        raise IRError("'lil.write_mem' size_bits must be 8, 16 or 32")


register_op(OpDef("lil.instr_word", has_side_effects=True))
register_op(OpDef("lil.read_rs1", has_side_effects=True))
register_op(OpDef("lil.read_rs2", has_side_effects=True))
register_op(OpDef("lil.read_pc", has_side_effects=True))
register_op(OpDef("lil.read_mem", has_side_effects=True,
                  verifier=_verify_read_mem))
register_op(OpDef("lil.write_rd", num_results=0, has_side_effects=True,
                  verifier=_verify_pred_last(1)))
register_op(OpDef("lil.write_pc", num_results=0, has_side_effects=True,
                  verifier=_verify_pred_last(1)))
register_op(OpDef("lil.write_mem", num_results=0, has_side_effects=True,
                  verifier=_verify_write_mem))
register_op(OpDef("lil.read_custreg", has_side_effects=True,
                  verifier=_verify_custreg))
register_op(OpDef("lil.write_custreg", num_results=0, has_side_effects=True,
                  verifier=_verify_custreg))
register_op(OpDef("lil.rom"))
register_op(OpDef("lil.sink", num_results=0, has_side_effects=True,
                  is_terminator=True))

#: lil interface op name -> SCAIE-V sub-interface name (custom-register ops
#: are resolved per-register, see :mod:`repro.scaiev.interfaces`).
INTERFACE_OF = {
    "lil.instr_word": "RdInstr",
    "lil.read_rs1": "RdRS1",
    "lil.read_rs2": "RdRS2",
    "lil.read_pc": "RdPC",
    "lil.read_mem": "RdMem",
    "lil.write_rd": "WrRD",
    "lil.write_pc": "WrPC",
    "lil.write_mem": "WrMem",
}

#: Interface ops that change architectural state.
WRITE_OPS = ("lil.write_rd", "lil.write_pc", "lil.write_mem", "lil.write_custreg")
#: Interface ops usable in tightly-coupled/decoupled mode (paper Section 3.2).
DECOUPLABLE_OPS = ("lil.write_rd", "lil.read_mem", "lil.write_mem")


def is_interface_op(op: Operation) -> bool:
    return op.name in INTERFACE_OF or op.name in (
        "lil.read_custreg", "lil.write_custreg"
    )


def interface_name(op: Operation) -> Optional[str]:
    """SCAIE-V sub-interface name for an interface operation."""
    if op.name in INTERFACE_OF:
        return INTERFACE_OF[op.name]
    if op.name == "lil.read_custreg":
        return f"Rd{op.attr('reg')}"
    if op.name == "lil.write_custreg":
        return f"Wr{op.attr('reg')}"
    return None


def make_graph(name: str, kind: str, **attrs) -> Graph:
    """Create a lil graph container for an instruction or always-block."""
    attributes = {"kind": kind}
    attributes.update(attrs)
    return Graph(name, attributes)
