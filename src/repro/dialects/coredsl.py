"""The ``coredsl`` dialect, original to Longnail (paper Section 4.1).

Models instructions, always-blocks, architectural-state accesses, and the
"additional arithmetic operations such as concatenation and bit-range
extraction, which are not available in the corresponding upstream dialects".

Container operations:

* ``coredsl.instruction`` — attributes ``name``, ``pattern`` (mask/match
  string), ``fields``; one region holding the behavior.
* ``coredsl.always`` — attribute ``name``; one region.

State access (``reg`` attribute names the state element; an optional
``pred`` operand guards writes; the trailing operand order is fixed and
recorded in per-op attributes):

* ``coredsl.field`` — read an encoding field.
* ``coredsl.get`` / ``coredsl.set`` — element access (index operand for
  register files / address spaces).
* ``coredsl.get_range`` / ``coredsl.set_range`` — multi-element access on
  address spaces (``MEM[a+3:a]``), ``count`` attribute gives element count.

Terminators: ``coredsl.end`` (default) and ``coredsl.spawn``, which carries
a region holding the decoupled part of the behavior (Section 2.5).
"""

from __future__ import annotations

from repro.ir.core import IRError, OpDef, Operation, register_op


def _verify_container(op: Operation) -> None:
    if len(op.regions) != 1:
        raise IRError(f"'{op.name}' must carry exactly one region")
    if op.attr("name") is None:
        raise IRError(f"'{op.name}' needs a 'name' attribute")
    block = op.regions[0].entry
    if not block.operations:
        raise IRError(f"'{op.name}' region must end in a terminator")
    last = block.operations[-1]
    if not last.opdef.is_terminator:
        raise IRError(
            f"'{op.name}' region must end in a terminator, found '{last.name}'"
        )


def _verify_state_op(op: Operation) -> None:
    if op.attr("reg") is None:
        raise IRError(f"'{op.name}' needs a 'reg' attribute")


def _verify_operand_count(expected: int):
    def verify(op: Operation) -> None:
        if len(op.operands) != expected:
            raise IRError(
                f"'{op.name}' expects {expected} operands, has {len(op.operands)}"
            )
    return verify


def _verify_extract(op: Operation) -> None:
    hi, lo = op.attr("hi"), op.attr("lo")
    if hi is None or lo is None or hi < lo:
        raise IRError(f"'coredsl.extract' has invalid range [{hi}:{lo}]")
    if op.result.width != hi - lo + 1:
        raise IRError("'coredsl.extract' result width must equal hi-lo+1")


register_op(OpDef("coredsl.instruction", num_results=0, has_side_effects=True,
                  verifier=_verify_container))
register_op(OpDef("coredsl.always", num_results=0, has_side_effects=True,
                  verifier=_verify_container))

register_op(OpDef("coredsl.field"))
register_op(OpDef("coredsl.get", verifier=_verify_state_op,
                  has_side_effects=False))
register_op(OpDef("coredsl.get_range", verifier=_verify_state_op))
register_op(OpDef("coredsl.set", num_results=0, has_side_effects=True,
                  verifier=_verify_state_op))
register_op(OpDef("coredsl.set_range", num_results=0, has_side_effects=True,
                  verifier=_verify_state_op))

register_op(OpDef("coredsl.cast", verifier=_verify_operand_count(1)))
register_op(OpDef("coredsl.concat", verifier=_verify_operand_count(2)))
register_op(OpDef("coredsl.extract", verifier=_verify_extract))
register_op(OpDef("coredsl.mux", verifier=_verify_operand_count(3)))
register_op(OpDef("coredsl.neg", verifier=_verify_operand_count(1)))
register_op(OpDef("coredsl.not", verifier=_verify_operand_count(1)))
register_op(OpDef("coredsl.and", verifier=_verify_operand_count(2)))
register_op(OpDef("coredsl.or", verifier=_verify_operand_count(2)))
register_op(OpDef("coredsl.xor", verifier=_verify_operand_count(2)))
register_op(OpDef("coredsl.shl", verifier=_verify_operand_count(2)))
register_op(OpDef("coredsl.shr", verifier=_verify_operand_count(2)))

register_op(OpDef("coredsl.end", num_results=0, is_terminator=True,
                  has_side_effects=True))
register_op(OpDef("coredsl.spawn", num_results=0, is_terminator=True,
                  has_side_effects=True))
