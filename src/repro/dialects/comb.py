"""The ``comb`` dialect: signless combinational logic (CIRCT's comb).

Conventions (enforced by verifiers):

* arithmetic/bitwise/shift/mux operands have the width of the result —
  the hwarith->comb lowering inserts explicit zero/sign extensions first,
* ``comb.concat`` takes its operands MSB-first,
* ``comb.icmp`` carries a ``predicate`` attribute and produces ``i1``.

Each operation also has an evaluation function (used by the constant folder
and by the RTL simulator) operating on unsigned bit-pattern ints.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.ir.core import IRError, OpDef, Operation, register_op
from repro.utils.bits import mask, to_signed, to_unsigned

ICMP_PREDICATES = (
    "eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge",
)


# ---------------------------------------------------------------------------
# Verifiers
# ---------------------------------------------------------------------------

def _verify_same_width(op: Operation) -> None:
    width = op.result.width
    for operand in op.operands:
        if operand.width != width:
            raise IRError(
                f"'{op.name}' operand width {operand.width} != result width "
                f"{width}"
            )


def _verify_binary(op: Operation) -> None:
    if len(op.operands) != 2:
        raise IRError(f"'{op.name}' expects 2 operands, has {len(op.operands)}")
    _verify_same_width(op)


def _verify_icmp(op: Operation) -> None:
    if len(op.operands) != 2:
        raise IRError("'comb.icmp' expects 2 operands")
    if op.operands[0].width != op.operands[1].width:
        raise IRError("'comb.icmp' operands must have equal widths")
    if op.result.width != 1:
        raise IRError("'comb.icmp' result must be i1")
    if op.attr("predicate") not in ICMP_PREDICATES:
        raise IRError(f"invalid icmp predicate {op.attr('predicate')!r}")


def _verify_mux(op: Operation) -> None:
    if len(op.operands) != 3:
        raise IRError("'comb.mux' expects (cond, true, false)")
    if op.operands[0].width != 1:
        raise IRError("'comb.mux' condition must be i1")
    if op.operands[1].width != op.result.width or op.operands[2].width != op.result.width:
        raise IRError("'comb.mux' value widths must match the result")


def _verify_extract(op: Operation) -> None:
    if len(op.operands) != 1:
        raise IRError("'comb.extract' expects 1 operand")
    low = op.attr("low")
    if low is None or low < 0:
        raise IRError("'comb.extract' needs a non-negative 'low' attribute")
    if low + op.result.width > op.operands[0].width:
        raise IRError(
            f"'comb.extract' range [{low}+:{op.result.width}] exceeds operand "
            f"width {op.operands[0].width}"
        )


def _verify_concat(op: Operation) -> None:
    if not op.operands:
        raise IRError("'comb.concat' needs at least one operand")
    total = sum(operand.width for operand in op.operands)
    if total != op.result.width:
        raise IRError(
            f"'comb.concat' result width {op.result.width} != sum of operand "
            f"widths {total}"
        )


def _verify_replicate(op: Operation) -> None:
    if len(op.operands) != 1:
        raise IRError("'comb.replicate' expects 1 operand")
    if op.result.width % op.operands[0].width != 0:
        raise IRError("'comb.replicate' result width must be a multiple of input")


def _verify_constant(op: Operation) -> None:
    if op.operands:
        raise IRError("'comb.constant' takes no operands")
    value = op.attr("value")
    if value is None or value < 0 or value > mask(op.result.width):
        raise IRError(
            f"'comb.constant' value {value!r} out of range for "
            f"i{op.result.width}"
        )


# ---------------------------------------------------------------------------
# Evaluation (shared by folder and simulator)
# ---------------------------------------------------------------------------

def _eval_divu(a: int, b: int, width: int) -> int:
    return a // b if b else mask(width)  # div-by-zero yields all-ones (RISC-V)


def _eval_divs(a: int, b: int, width: int) -> int:
    sa, sb = to_signed(a, width), to_signed(b, width)
    if sb == 0:
        return mask(width)
    q = abs(sa) // abs(sb)
    return to_unsigned(-q if (sa < 0) != (sb < 0) else q, width)


def _eval_modu(a: int, b: int, width: int) -> int:
    return a % b if b else a


def _eval_mods(a: int, b: int, width: int) -> int:
    sa, sb = to_signed(a, width), to_signed(b, width)
    if sb == 0:
        return a
    q = abs(sa) // abs(sb)
    q = -q if (sa < 0) != (sb < 0) else q
    return to_unsigned(sa - q * sb, width)


def _eval_shl(a: int, b: int, width: int) -> int:
    return to_unsigned(a << b, width) if b < width else 0


def _eval_shru(a: int, b: int, width: int) -> int:
    return a >> b if b < width else 0


def _eval_shrs(a: int, b: int, width: int) -> int:
    sa = to_signed(a, width)
    shift = min(b, width - 1)
    return to_unsigned(sa >> shift, width)


_BINARY_EVAL: Dict[str, Callable[[int, int, int], int]] = {
    "comb.add": lambda a, b, w: to_unsigned(a + b, w),
    "comb.sub": lambda a, b, w: to_unsigned(a - b, w),
    "comb.mul": lambda a, b, w: to_unsigned(a * b, w),
    "comb.divu": _eval_divu,
    "comb.divs": _eval_divs,
    "comb.modu": _eval_modu,
    "comb.mods": _eval_mods,
    "comb.and": lambda a, b, w: a & b,
    "comb.or": lambda a, b, w: a | b,
    "comb.xor": lambda a, b, w: a ^ b,
    "comb.shl": _eval_shl,
    "comb.shru": _eval_shru,
    "comb.shrs": _eval_shrs,
}

# Signed predicates sign-extend each operand from its *own* width: verified
# IR guarantees equal widths, but ops are evaluated before verification too
# (hand-built netlists, fuzz reducers), and borrowing operand 0's width for
# operand 1 would silently mis-sign the comparison.
_ICMP_EVAL: Dict[str, Callable[[int, int, int, int], bool]] = {
    "eq": lambda a, b, wa, wb: a == b,
    "ne": lambda a, b, wa, wb: a != b,
    "ult": lambda a, b, wa, wb: a < b,
    "ule": lambda a, b, wa, wb: a <= b,
    "ugt": lambda a, b, wa, wb: a > b,
    "uge": lambda a, b, wa, wb: a >= b,
    "slt": lambda a, b, wa, wb: to_signed(a, wa) < to_signed(b, wb),
    "sle": lambda a, b, wa, wb: to_signed(a, wa) <= to_signed(b, wb),
    "sgt": lambda a, b, wa, wb: to_signed(a, wa) > to_signed(b, wb),
    "sge": lambda a, b, wa, wb: to_signed(a, wa) >= to_signed(b, wb),
}


def evaluate(op: Operation, operand_values: List[int]) -> int:
    """Evaluate a comb operation on unsigned operand values."""
    name = op.name
    width = op.result.width
    if name == "comb.constant":
        # The attribute is validated at construction/verify time, but mask
        # defensively: an out-of-range value must never leak into dataflow.
        return op.attr("value") & mask(width)
    if name in _BINARY_EVAL:
        a, b = operand_values
        return _BINARY_EVAL[name](a, b, width)
    if name == "comb.not":
        return to_unsigned(~operand_values[0], width)
    if name == "comb.icmp":
        a, b = operand_values
        return int(_ICMP_EVAL[op.attr("predicate")](
            a, b, op.operands[0].width, op.operands[1].width))
    if name == "comb.mux":
        cond, true_value, false_value = operand_values
        return true_value if cond else false_value
    if name == "comb.extract":
        return (operand_values[0] >> op.attr("low")) & mask(width)
    if name == "comb.concat":
        out = 0
        for operand, value in zip(op.operands, operand_values):
            out = (out << operand.width) | to_unsigned(value, operand.width)
        return out
    if name == "comb.replicate":
        chunk_width = op.operands[0].width
        chunk = to_unsigned(operand_values[0], chunk_width)
        times = width // chunk_width
        out = 0
        for _ in range(times):
            out = (out << chunk_width) | chunk
        return out
    if name == "comb.rom":
        table = op.attr("values")
        index = operand_values[0]
        return table[index] & mask(width) if index < len(table) else 0
    raise IRError(f"no evaluation rule for '{name}'")


def _fold(op: Operation, operand_values: List[Optional[int]]) -> Optional[int]:
    if any(value is None for value in operand_values):
        return None
    return evaluate(op, operand_values)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

register_op(OpDef("comb.constant", verifier=_verify_constant,
                  folder=lambda op, vals: op.attr("value") & mask(op.result.width)))
for _name in _BINARY_EVAL:
    register_op(OpDef(_name, verifier=_verify_binary, folder=_fold))
register_op(OpDef("comb.not", verifier=_verify_same_width, folder=_fold))
register_op(OpDef("comb.icmp", verifier=_verify_icmp, folder=_fold))
register_op(OpDef("comb.mux", verifier=_verify_mux, folder=_fold))
register_op(OpDef("comb.extract", verifier=_verify_extract, folder=_fold))
register_op(OpDef("comb.concat", verifier=_verify_concat, folder=_fold))
register_op(OpDef("comb.replicate", verifier=_verify_replicate, folder=_fold))
#: ROM lookup: constant registers internalized into the ISAX module
#: (paper Section 4.5); 'values' attribute holds the table.
register_op(OpDef("comb.rom", folder=_fold))

BINARY_OPS = tuple(_BINARY_EVAL)
