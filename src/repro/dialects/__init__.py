"""IR dialects mirroring the ones named in paper Section 4.1.

* :mod:`repro.dialects.coredsl` — instructions, always-blocks, state access,
  bitwidth-aware extras (concat, extract, shifts, bitwise logic).
* :mod:`repro.dialects.hwarith` — overflow-free arithmetic on ui/si types.
* :mod:`repro.dialects.comb` — signless combinational logic (CIRCT comb).
* :mod:`repro.dialects.lil` — the "Longnail Intermediate Language": flat
  CDFG containers plus explicit SCAIE-V sub-interface operations.
* :mod:`repro.dialects.hw` — hardware modules, ports and registers
  (CIRCT hw + seq).

Importing this package registers every operation with the IR registry.
"""

from repro.dialects import comb, coredsl, hw, hwarith, lil  # noqa: F401

__all__ = ["comb", "coredsl", "hw", "hwarith", "lil"]
