"""The ``hwarith`` dialect (CIRCT): bitwidth-aware arithmetic on signed and
unsigned integer types without over-/underflow.

The paper notes this dialect "captures CoreDSL's type system and operators
perfectly" (Section 4.1).  Values at this level carry ``signed`` flags; the
result types are computed by the frontend type checker and recorded on the
result values, so verifiers only check structural properties.
"""

from __future__ import annotations

from repro.ir.core import IRError, OpDef, Operation, register_op

#: Sign-aware comparison predicates; the signedness of the comparison is
#: derived from the operand types during lowering.
ICMP_PREDICATES = ("eq", "ne", "lt", "le", "gt", "ge")


def _verify_binary(op: Operation) -> None:
    if len(op.operands) != 2:
        raise IRError(f"'{op.name}' expects 2 operands")
    for operand in op.operands:
        if operand.signed is None:
            raise IRError(f"'{op.name}' requires sign-typed operands")


def _verify_constant(op: Operation) -> None:
    if op.operands:
        raise IRError("'hwarith.constant' takes no operands")
    if op.attr("value") is None:
        raise IRError("'hwarith.constant' needs a 'value' attribute")


def _verify_cast(op: Operation) -> None:
    if len(op.operands) != 1:
        raise IRError("'hwarith.cast' expects 1 operand")


def _verify_icmp(op: Operation) -> None:
    if len(op.operands) != 2:
        raise IRError("'hwarith.icmp' expects 2 operands")
    if op.attr("predicate") not in ICMP_PREDICATES:
        raise IRError(f"invalid hwarith.icmp predicate {op.attr('predicate')!r}")
    if op.result.width != 1 or op.result.signed:
        raise IRError("'hwarith.icmp' result must be ui1")


register_op(OpDef("hwarith.constant", verifier=_verify_constant))
register_op(OpDef("hwarith.add", verifier=_verify_binary))
register_op(OpDef("hwarith.sub", verifier=_verify_binary))
register_op(OpDef("hwarith.mul", verifier=_verify_binary))
register_op(OpDef("hwarith.div", verifier=_verify_binary))
register_op(OpDef("hwarith.mod", verifier=_verify_binary))
register_op(OpDef("hwarith.cast", verifier=_verify_cast))
register_op(OpDef("hwarith.icmp", verifier=_verify_icmp))
