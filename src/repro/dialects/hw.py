"""The ``hw``/``seq`` dialects: RTL modules, ports and registers.

The synthesized microarchitecture (paper Section 4.5) is captured as an
:class:`HWModule`: a named set of ports plus a body graph mixing ``comb``
operations with:

* ``hw.input {name}``  — materializes an input port as an SSA value,
* ``hw.output {name}`` — drives an output port from an SSA value,
* ``seq.compreg {name}`` — a clocked register ``(data, enable) -> iW``;
  enable low holds the current value (the "stallable pipeline registers"
  of Figure 5d).

The RTL simulator (:mod:`repro.sim.rtl_sim`) and the SystemVerilog printer
(:mod:`repro.hls.verilog`) both consume this representation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.ir.core import Graph, IRError, OpDef, Operation, register_op


def _verify_named(op: Operation) -> None:
    if not op.attr("name"):
        raise IRError(f"'{op.name}' needs a 'name' attribute")


def _verify_output(op: Operation) -> None:
    _verify_named(op)
    if len(op.operands) != 1:
        raise IRError("'hw.output' expects exactly one operand")


def _verify_compreg(op: Operation) -> None:
    _verify_named(op)
    if len(op.operands) not in (1, 2):
        raise IRError("'seq.compreg' expects (data) or (data, enable)")
    if op.operands[0].width != op.result.width:
        raise IRError("'seq.compreg' data width must match result width")
    if len(op.operands) == 2 and op.operands[1].width != 1:
        raise IRError("'seq.compreg' enable must be i1")


register_op(OpDef("hw.input", has_side_effects=True, verifier=_verify_named))
register_op(OpDef("hw.output", num_results=0, has_side_effects=True,
                  verifier=_verify_output))
register_op(OpDef("seq.compreg", has_side_effects=True, verifier=_verify_compreg))


@dataclasses.dataclass
class Port:
    """A module port.  ``direction`` is "in" or "out"; ``stage`` records the
    pipeline stage the port is active in (the numerical suffixes of paper
    Figure 5d), and ``role`` ties it back to the scheduled interface op."""

    name: str
    direction: str
    width: int
    stage: Optional[int] = None
    role: Optional[str] = None

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise IRError(f"invalid port direction {self.direction!r}")


class HWModule:
    """A hardware module: ports + a flat body graph of comb/seq operations."""

    def __init__(self, name: str):
        self.name = name
        self.ports: List[Port] = []
        self.body = Graph(name)
        self.attributes: Dict[str, object] = {}

    def add_input(self, name: str, width: int, stage: Optional[int] = None,
                  role: Optional[str] = None):
        """Declare an input port and return the SSA value reading it."""
        self._check_unique(name)
        self.ports.append(Port(name, "in", width, stage, role))
        op = Operation("hw.input", [], [(width, None)], {"name": name})
        self.body.append(op)
        return op.result

    def add_output(self, name: str, value, stage: Optional[int] = None,
                   role: Optional[str] = None) -> None:
        """Declare an output port driven by ``value``."""
        self._check_unique(name)
        self.ports.append(Port(name, "out", value.width, stage, role))
        op = Operation("hw.output", [value], [], {"name": name})
        self.body.append(op)

    def _check_unique(self, name: str) -> None:
        if any(p.name == name for p in self.ports):
            raise IRError(f"duplicate port '{name}' on module '{self.name}'")

    def port(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise IRError(f"module '{self.name}' has no port '{name}'")

    @property
    def inputs(self) -> List[Port]:
        return [p for p in self.ports if p.direction == "in"]

    @property
    def outputs(self) -> List[Port]:
        return [p for p in self.ports if p.direction == "out"]

    def registers(self) -> List[Operation]:
        return [op for op in self.body.operations if op.name == "seq.compreg"]

    def verify(self) -> None:
        self.body.verify()
        output_names = {p.name for p in self.outputs}
        driven = {
            op.attr("name")
            for op in self.body.operations
            if op.name == "hw.output"
        }
        if output_names != driven:
            raise IRError(
                f"module '{self.name}': outputs {sorted(output_names - driven)} "
                "are not driven"
            )

    def __repr__(self) -> str:
        return (
            f"<HWModule {self.name}: {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {len(self.body.operations)} ops>"
        )
