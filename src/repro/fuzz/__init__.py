"""Generative differential verification for the Longnail flow.

The benchmark ISAXes (paper Table 3) exercise a fixed, hand-picked slice of
CoreDSL; this package turns the existing oracles — the interpreter-vs-RTL
co-simulation harness and the fastpath-vs-MILP scheduler cross-check — into
a scalable correctness engine:

* :mod:`repro.fuzz.generator` — seeded grammar walk emitting well-typed
  CoreDSL programs (every program parses and type-checks by construction),
* :mod:`repro.fuzz.oracles` — the per-program differential oracle stack,
* :mod:`repro.fuzz.reduce` — AST-level delta-debugging of failing programs,
* :mod:`repro.fuzz.corpus` — deduplicated on-disk corpus of reproducers,
* :mod:`repro.fuzz.campaign` — campaign driver fanning seeds through the
  :mod:`repro.service` executor.

Entry points: ``repro-longnail fuzz`` on the command line, or

    from repro.fuzz import FuzzBudget, generate_program, run_oracles
    program = generate_program(seed=7, budget=FuzzBudget())
    report = run_oracles(program.source)
"""

from repro.fuzz.campaign import CampaignResult, FuzzConfig, run_campaign
from repro.fuzz.corpus import FuzzCorpus
from repro.fuzz.generator import FuzzBudget, FuzzProgram, generate_program
from repro.fuzz.oracles import (
    ALL_ORACLES,
    DEFAULT_ORACLES,
    OracleFailure,
    OracleReport,
    run_oracles,
)
from repro.fuzz.reduce import reduce_program

__all__ = [
    "ALL_ORACLES",
    "CampaignResult",
    "DEFAULT_ORACLES",
    "FuzzBudget",
    "FuzzConfig",
    "FuzzCorpus",
    "FuzzProgram",
    "OracleFailure",
    "OracleReport",
    "generate_program",
    "reduce_program",
    "run_campaign",
    "run_oracles",
]
