"""The per-program differential oracle stack.

The oracles, run per core (paper Sections 4.4 and 5.3 provide the first
two as fixed-corpus spot checks; here they become programmable):

* **schedule** — compile with the LP-free fastpath *and* the MILP engine
  and assert both reach the same weighted objective (start times plus
  width-weighted pipeline-register lifetimes) on every functionality.
  Alternative optima make raw start-time vectors incomparable, so the
  objective — the quantity both engines minimize — is the equality that
  must hold.
* **cosim** — run :func:`repro.sim.cosim.verify_artifact`, executing the
  CoreDSL interpreter against the generated SystemVerilog netlist on
  random stimulus.
* **determinism** — compile the same source twice and require byte-identical
  SystemVerilog and config YAML (any iteration-order leak in lowering,
  scheduling or hwgen shows up here first).
* **simengine** — run the interpreting and the compiled RTL-simulation
  engines (:mod:`repro.sim.compile`) over the same random stimulus on every
  generated module and require identical output traces, register counts and
  final register state.
* **batchsim** — the numpy lane-parallel engine
  (:mod:`repro.sim.batch`) must match the scalar engines byte for byte on
  every generated module (three-engine ``crosscheck_engines``), and a
  ``verify_artifact`` run with ``sim_engine="batched"`` — the trials of
  each functionality evaluated as lanes of one numpy batch — must reach
  the same PASS verdict as the golden model.
* **irverify** — run the IR verifier (:mod:`repro.analysis.verifier`) over
  every functionality's lil graph, solved schedule and hardware module;
  any error-severity ``IVxxx`` finding on a valid program is a
  lowering/scheduling bug (warning-severity range notes such as
  IV008/IV009 are legitimate on generated programs and don't fail the
  oracle).
* **rangesound** — run the abstract-interpretation engine
  (:mod:`repro.analysis.absint`) over every generated module and execute
  random stimulus through the reference interpreter semantics: every
  concrete SSA value must lie inside its predicted interval and respect
  its known-bits masks.  A violation is an unsound transfer function —
  the one bug class that would silently corrupt the linter, the
  optimizer, and the batched simulator at once.
* **optequiv** (opt-in via ``oracles``) — recompile at ``-O2`` and require
  the optimized artifact's architectural trace
  (:func:`repro.opt.equiv.architectural_trace`) to be byte-identical to the
  unoptimized one: the optimizer must never change observable behaviour.
* **discover** (opt-in via ``oracles``) — smoke the automatic ISAX
  discovery pipeline (:mod:`repro.discover`): a random kernel seeded from
  the fuzzed program's digest is mined, and every emitted candidate must
  compile, lint clean, verify its IR and stay ``-O2``-trace-equivalent.
  The fuzzed CoreDSL source only supplies entropy here; the subject under
  test is the kernel-to-CoreDSL emitter and its toolchain contract.

Elaboration errors (parse/typecheck) are *not* oracle failures: generated
programs are well-typed by construction, so an elaboration error is a
generator bug and propagates as :class:`CoreDSLError` to the caller.
Errors raised later — lowering legality, scheduler infeasibility — are
reported as ``kind="compile"`` failures.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.verifier import verify_artifact_ir
from repro.frontend.elaboration import elaborate
from repro.hls.longnail import compile_isax
from repro.scheduling import ilp
from repro.sim.compile import crosscheck_engines
from repro.sim.cosim import verify_artifact

if TYPE_CHECKING:                              # imports used only in hints
    from repro.dialects.hw import HWModule
    from repro.ir.core import Value

#: Cores every program is checked against by default (the paper's four
#: evaluation cores; CVA5 stays opt-in, as everywhere else in the repo).
DEFAULT_CORES: Tuple[str, ...] = ("ORCA", "Piccolo", "PicoRV32", "VexRiscv")

#: The classic oracle stack run when no explicit selection is given.
DEFAULT_ORACLES: Tuple[str, ...] = (
    "compile", "schedule", "irverify", "cosim", "simengine", "batchsim",
    "rangesound", "determinism",
)

#: Every oracle kind, including the opt-in optimizer-equivalence and
#: ISAX-discovery smoke checks.
ALL_ORACLES: Tuple[str, ...] = DEFAULT_ORACLES + ("optequiv", "discover")


def _resolve_oracles(oracles: Optional[Sequence[str]]) -> Tuple[str, ...]:
    if not oracles:
        return DEFAULT_ORACLES
    if "all" in oracles:
        return ALL_ORACLES
    unknown = sorted(set(oracles) - set(ALL_ORACLES))
    if unknown:
        raise ValueError(
            f"unknown oracle kinds {unknown}; available: "
            + ", ".join(ALL_ORACLES) + ", all")
    # Keep canonical order regardless of how the flags were given.
    return tuple(k for k in ALL_ORACLES if k in set(oracles))


@dataclasses.dataclass
class OracleFailure:
    """One oracle violation; picklable and JSON-able."""

    kind: str  # "compile" | "schedule" | "cosim" | "determinism"
               # | "simengine" | "batchsim" | "rangesound" | "irverify"
               # | "optequiv" | "discover"
    core: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}/{self.core}] {self.detail}"


@dataclasses.dataclass
class OracleReport:
    """Aggregate outcome of :func:`run_oracles` for one program."""

    cores: Tuple[str, ...]
    failures: List[OracleFailure]
    functionalities: int = 0    # schedules cross-checked (summed over cores)
    trials: int = 0             # cosim trials per core
    cosim_seed: int = 0
    vcd_paths: List[str] = dataclasses.field(default_factory=list)
    oracles: Tuple[str, ...] = DEFAULT_ORACLES

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({f.kind for f in self.failures}))

    def __str__(self) -> str:
        status = ("PASS" if self.ok
                  else f"FAIL ({', '.join(self.kinds)})")
        return (f"oracles on {len(self.cores)} cores: "
                f"{self.functionalities} schedules cross-checked, "
                f"{self.trials} cosim trials/core "
                f"(seed={self.cosim_seed}), {status}")


def check_range_soundness(module: "HWModule", cycles: int = 16,
                          seed: int = 0) -> Optional[str]:
    """Concretely validate the abstract-interpretation engine on a module.

    Replays ``cycles`` of random stimulus through the reference
    interpreter semantics (the same evaluation order and register model
    :class:`repro.sim.rtl_sim.RTLSimulator` uses) and checks every SSA
    value against its predicted :class:`~repro.analysis.absint.AbsVal`.
    Returns ``None`` when sound, else a mismatch description.  Shared by
    the ``rangesound`` fuzz oracle and the Hypothesis soundness suite.
    """
    from repro.analysis.absint import analyze_module
    from repro.dialects import comb
    from repro.sim.compile import cached_schedule, random_stimulus
    from repro.utils.bits import mask

    facts = analyze_module(module)
    order = cached_schedule(module)
    register_ops = [op for op in order if op.name == "seq.compreg"]
    regs = {op: 0 for op in register_ops}
    for cycle, vector in enumerate(random_stimulus(module, cycles, seed)):
        values: Dict[Value, int] = {}
        for op in order:
            if op.name == "hw.input":
                result = op.results[0]
                values[result] = vector.get(op.attr("name"), 0) \
                    & mask(result.width)
                continue                     # environment values: top
            if op.name == "hw.output":
                continue
            if op.name == "seq.compreg":
                values[op.results[0]] = regs[op]
                continue
            result = op.results[0]
            concrete = comb.evaluate(
                op, [values[operand] for operand in op.operands])
            values[result] = concrete
            fact = facts.get(result)
            if not fact.contains(concrete):
                return (f"cycle {cycle}: '{op.name}' in module "
                        f"'{module.name}' produced {concrete:#x}, outside "
                        f"its predicted {fact!r}")
        for op in register_ops:
            data = values[op.operands[0]]
            enable = (values[op.operands[1]]
                      if len(op.operands) == 2 else 1)
            if enable:
                regs[op] = data
    return None


def _discover_oracle(source: str, core: str, trials: int, cosim_seed: int,
                     sim_engine: str,
                     max_candidates: int = 3) -> List[OracleFailure]:
    """Smoke the discovery pipeline against one core.

    The fuzzed program's content digest seeds
    :func:`repro.discover.kernel.random_kernel`, so every corpus entry
    exercises a different mined subgraph while staying reproducible from
    ``(source, cosim_seed)`` alone.  Each emitted candidate must compile,
    lint without errors, pass the IR verifier, and keep its ``-O2``
    architectural trace identical to ``-O0``.
    """
    import hashlib

    from repro.discover.emit import EmitError, emit_candidate
    from repro.discover.enumerate import enumerate_candidates
    from repro.discover.kernel import resolve_kernel
    from repro.opt.equiv import compare_artifacts

    entropy = int(hashlib.sha256(source.encode()).hexdigest()[:8], 16)
    seed = (entropy ^ cosim_seed) % 100_000
    kernel = resolve_kernel("random", seed=seed)

    failures: List[OracleFailure] = []
    candidates = enumerate_candidates(kernel)[:max_candidates]
    if not candidates:
        return [OracleFailure(
            kind="discover", core=core,
            detail=f"random kernel (seed={seed}) yielded no candidates")]
    for candidate in candidates:
        label = candidate.label()
        try:
            emitted = emit_candidate(kernel, candidate)
        except EmitError as exc:
            failures.append(OracleFailure(
                kind="discover", core=core,
                detail=f"{label}: emit failed: {exc}"))
            continue
        try:
            plain = compile_isax(emitted.source, core, engine="fastpath",
                                 schedule_cache=False)
            optimized = compile_isax(emitted.source, core,
                                     engine="fastpath",
                                     schedule_cache=False, opt=2)
        except Exception as exc:
            failures.append(OracleFailure(
                kind="discover", core=core,
                detail=f"{label}: compile failed: "
                       f"{type(exc).__name__}: {exc}"))
            continue
        lint_errors = [d for d in plain.diagnostics
                       if getattr(d, "severity", "") == "error"]
        if lint_errors:
            failures.append(OracleFailure(
                kind="discover", core=core,
                detail=f"{label}: lint: {lint_errors[0]}"))
        for diag in verify_artifact_ir(plain):
            if not diag.is_error:
                continue
            failures.append(OracleFailure(
                kind="discover", core=core,
                detail=f"{label}: {diag.render().splitlines()[0]}"))
        mismatch = compare_artifacts(
            plain, optimized, trials=max(2, trials // 2),
            seed=cosim_seed, sim_engine=sim_engine)
        if mismatch is not None:
            failures.append(OracleFailure(
                kind="discover", core=core, detail=f"{label}: {mismatch}"))
    return failures


def run_oracles(source: str,
                cores: Optional[Sequence[str]] = None,
                trials: int = 8,
                cosim_seed: int = 0,
                vcd_dir: Optional[str] = None,
                sim_engine: str = "auto",
                oracles: Optional[Sequence[str]] = None) -> OracleReport:
    """Run the oracle stack on one CoreDSL source string.

    ``oracles`` selects which oracles run (default:
    :data:`DEFAULT_ORACLES`; the literal ``"all"`` enables everything,
    including the opt-in ``optequiv`` optimizer-equivalence check).
    Compile failures are always reported — a program the toolchain cannot
    compile fails every selection.

    Raises :class:`repro.utils.diagnostics.CoreDSLError` if the program
    does not elaborate (generator-validity errors are the caller's
    problem, not an oracle verdict).
    """
    cores = tuple(cores) if cores else DEFAULT_CORES
    selected = _resolve_oracles(oracles)
    # Elaborate once, standalone: separates "program is invalid" (raises)
    # from "toolchain failed on a valid program" (compile failure below).
    elaborate(source)

    failures: List[OracleFailure] = []
    vcd_paths: List[str] = []
    functionalities = 0
    for core in cores:
        try:
            fast = compile_isax(source, core, engine="fastpath",
                                schedule_cache=False)
            milp = (compile_isax(source, core, engine="milp",
                                 schedule_cache=False)
                    if "schedule" in selected else None)
        except Exception as exc:  # lowering legality, infeasible schedule
            failures.append(OracleFailure(
                kind="compile", core=core,
                detail=f"{type(exc).__name__}: {exc}"))
            continue

        # Oracle 1: engine-independent schedule quality.
        if milp is not None:
            for name, f_fast in fast.functionalities.items():
                functionalities += 1
                f_milp = milp.functionalities[name]
                w_fast = ilp.weighted_objective_value(f_fast.schedule.problem)
                w_milp = ilp.weighted_objective_value(f_milp.schedule.problem)
                if abs(w_fast - w_milp) > 1e-6:
                    failures.append(OracleFailure(
                        kind="schedule", core=core,
                        detail=(f"{name}: fastpath objective {w_fast} != "
                                f"milp objective {w_milp}")))

        # Oracle 2: every IR invariant holds on the compiled artifact.
        # Warning-severity range notes (IV008/IV009) are legitimate on
        # generated programs; only structural errors fail the oracle.
        if "irverify" in selected:
            for diag in verify_artifact_ir(fast):
                if not diag.is_error:
                    continue
                failures.append(OracleFailure(
                    kind="irverify", core=core,
                    detail=diag.render().splitlines()[0]))

        # Oracle 3: interpreter vs RTL co-simulation.
        if "cosim" in selected:
            report = verify_artifact(fast, trials=trials, seed=cosim_seed,
                                     vcd_dir=vcd_dir, sim_engine=sim_engine)
            vcd_paths.extend(report.vcd_paths)
            for result in report.failures:
                failures.append(OracleFailure(
                    kind="cosim", core=core, detail=str(result)))

        # Oracle 4: compiled vs interpreted RTL-simulation engines.
        if "simengine" in selected:
            for name, functionality in fast.functionalities.items():
                mismatch = crosscheck_engines(
                    functionality.module, cycles=max(trials, 8),
                    seed=cosim_seed)
                if mismatch is not None:
                    failures.append(OracleFailure(
                        kind="simengine", core=core,
                        detail=f"{name}: {mismatch}"))

        # Oracle: the batched engine is a drop-in for the scalar ones —
        # lane-exact on random stimulus, and the whole cosim trial set of
        # each functionality evaluated as one numpy batch still matches
        # the golden model.
        if "batchsim" in selected:
            for name, functionality in fast.functionalities.items():
                mismatch = crosscheck_engines(
                    functionality.module, cycles=max(trials, 8),
                    seed=cosim_seed,
                    engines=("interp", "compiled", "batched"))
                if mismatch is not None:
                    failures.append(OracleFailure(
                        kind="batchsim", core=core,
                        detail=f"{name}: {mismatch}"))
            batched = verify_artifact(fast, trials=trials, seed=cosim_seed,
                                      sim_engine="batched")
            for result in batched.failures:
                failures.append(OracleFailure(
                    kind="batchsim", core=core,
                    detail=f"batched cosim {result.functionality}: "
                           + "; ".join(f"{m.kind}: {m.detail}"
                                       for m in result.mismatches)))

        # Oracle: abstract interpretation is sound — every concretely
        # simulated value lies inside its predicted interval/known bits.
        if "rangesound" in selected:
            for name, functionality in fast.functionalities.items():
                mismatch = check_range_soundness(
                    functionality.module, cycles=max(trials, 8),
                    seed=cosim_seed)
                if mismatch is not None:
                    failures.append(OracleFailure(
                        kind="rangesound", core=core,
                        detail=f"{name}: {mismatch}"))

        # Oracle 5: byte-identical artifacts across two runs.
        if "determinism" in selected:
            again = compile_isax(source, core, engine="fastpath",
                                 schedule_cache=False)
            if again.verilog != fast.verilog:
                failures.append(OracleFailure(
                    kind="determinism", core=core,
                    detail="SystemVerilog differs between two "
                           "identical runs"))
            if again.config_yaml != fast.config_yaml:
                failures.append(OracleFailure(
                    kind="determinism", core=core,
                    detail="config YAML differs between two identical runs"))

        # Oracle 6 (opt-in): the -O2 optimizer preserves the architectural
        # trace bit-for-bit.
        if "optequiv" in selected:
            from repro.opt.equiv import compare_artifacts

            try:
                optimized = compile_isax(source, core, engine="fastpath",
                                         schedule_cache=False, opt=2)
            except Exception as exc:
                failures.append(OracleFailure(
                    kind="optequiv", core=core,
                    detail=f"-O2 compile failed: "
                           f"{type(exc).__name__}: {exc}"))
            else:
                mismatch = compare_artifacts(
                    fast, optimized, trials=max(2, trials // 2),
                    seed=cosim_seed, sim_engine=sim_engine)
                if mismatch is not None:
                    failures.append(OracleFailure(
                        kind="optequiv", core=core, detail=mismatch))

        # Oracle 7 (opt-in): ISAX discovery smoke — mined candidates from
        # a seeded random kernel must clear the toolchain gates.
        if "discover" in selected:
            failures.extend(_discover_oracle(
                source, core, trials=trials, cosim_seed=cosim_seed,
                sim_engine=sim_engine))

    return OracleReport(cores=cores, failures=failures,
                        functionalities=functionalities, trials=trials,
                        cosim_seed=cosim_seed, vcd_paths=vcd_paths,
                        oracles=selected)
