"""Seeded generator of well-typed CoreDSL programs.

The generator performs a grammar walk that mirrors the type rules of
:mod:`repro.frontend.types` while it builds source text, so every emitted
program parses and type-checks *by construction*:

* expression nodes carry their :class:`~repro.frontend.types.IntType` and
  combine through the same result-type functions the checker uses
  (``add_result``, ``concat_result``, ...),
* every assignment either declares a variable with the expression's exact
  type or narrows through an explicit cast,
* state accesses respect the SCAIE-V one-use-per-sub-interface rule (at
  most one main-memory access, one read/write per custom register, reads
  of ``X`` only through ``rs1``/``rs2``, writes only through ``rd``),
* shift amounts are either compile-time constants or cast to a small
  unsigned type so result widths stay bounded,
* ``for`` bounds are compile-time constants and range subscripts use
  either constant bounds or the same-variable affine form ``x[i+K:i]``.

Division and modulo are deliberately excluded: the golden interpreter
rejects division by zero while hardware returns a value, so they are not
differential-testable with random operands.
"""

from __future__ import annotations

import dataclasses
from random import Random
from typing import FrozenSet, List, Optional, Tuple

from repro.frontend import types as ty
from repro.frontend.types import IntType

#: Widest intermediate the generator lets an expression grow to before it
#: inserts a narrowing cast (well below ``ty.MAX_SYNTH_WIDTH``).
_WIDTH_CAP = 96

_COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
_COMPOUND_OPS = ("+=", "-=", "&=", "|=", "^=")


class _Env:
    """Readable values in scope; ``mutable`` excludes read-only names
    (encoding fields), which may appear in expressions but never as
    assignment targets."""

    def __init__(self):
        self.values: List[Tuple[str, IntType]] = []
        self.mutable: List[Tuple[str, IntType]] = []

    def add(self, name: str, t: IntType, mutable: bool = True) -> None:
        self.values.append((name, t))
        if mutable:
            self.mutable.append((name, t))


@dataclasses.dataclass(frozen=True)
class FuzzBudget:
    """Size/feature budget for one generated program."""

    instructions: int = 2       # max instructions per program
    statements: int = 5         # max body statements per behavior
    depth: int = 3              # max expression nesting depth
    functions: int = 1          # max helper functions
    registers: int = 2          # max custom scalar registers
    allow_memory: bool = True
    allow_spawn: bool = True
    allow_always: bool = True
    allow_rom: bool = True

    @classmethod
    def scaled(cls, statements: int) -> "FuzzBudget":
        """Budget from a single knob (the CLI's ``--budget N``)."""
        return cls(
            instructions=max(1, min(4, statements // 3 + 1)),
            statements=max(1, statements),
            depth=3 if statements < 12 else 4,
        )


@dataclasses.dataclass(frozen=True)
class FuzzProgram:
    """One generated program plus its provenance."""

    seed: int
    source: str
    name: str                      # InstructionSet name
    features: FrozenSet[str]       # language features exercised


class _Gen:
    """One seeded generation run (never reused across programs)."""

    def __init__(self, seed: int, budget: FuzzBudget):
        self.rng = Random(seed)
        self.seed = seed
        self.budget = budget
        self.features: set = set()
        self.fresh = 0
        # (name, return type, [param types]) of generated helper functions.
        self.functions: List[Tuple[str, IntType, List[IntType]]] = []
        # (name, element type) of custom scalar registers.
        self.registers: List[Tuple[str, IntType]] = []
        self.rom: Optional[Tuple[str, int, int]] = None   # name, width, size
        self.array_reg: Optional[Tuple[str, int]] = None  # name, size

    # ------------------------------------------------------------- helpers
    def var(self, prefix: str = "v") -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    @staticmethod
    def fmt_type(t: IntType) -> str:
        return f"{'signed' if t.is_signed else 'unsigned'}<{t.width}>"

    def cast(self, text: str, target: IntType) -> Tuple[str, IntType]:
        return f"({self.fmt_type(target)}) ({text})", target

    def capped(self, text: str, t: IntType) -> Tuple[str, IntType]:
        if t.width > _WIDTH_CAP:
            return self.cast(text, ty.unsigned(32))
        return text, t

    # --------------------------------------------------------- expressions
    def literal(self) -> Tuple[str, IntType]:
        if self.rng.random() < 0.4:
            width = self.rng.randint(1, 8)
            value = self.rng.randrange(1 << width)
            return f"{width}'d{value}", ty.unsigned(width)
        value = self.rng.randrange(256)
        return str(value), ty.literal_type(value)

    def leaf(self, env: List[Tuple[str, IntType]]) -> Tuple[str, IntType]:
        if env and self.rng.random() < 0.7:
            return self.rng.choice(env)
        return self.literal()

    def expr(self, depth: int,
             env: List[Tuple[str, IntType]]) -> Tuple[str, IntType]:
        if depth <= 0:
            return self.leaf(env)
        kind = self.rng.choice(
            ("arith", "arith", "bitwise", "shift", "concat", "cond",
             "cast", "unary", "subscript", "call", "leaf")
        )
        if kind == "arith":
            op = self.rng.choice(("+", "-", "*"))
            lt, ltype = self.expr(depth - 1, env)
            rt, rtype = self.expr(depth - 1, env)
            result = {"+": ty.add_result, "-": ty.sub_result,
                      "*": ty.mul_result}[op](ltype, rtype)
            return self.capped(f"({lt} {op} {rt})", result)
        if kind == "bitwise":
            op = self.rng.choice(("&", "|", "^"))
            lt, ltype = self.expr(depth - 1, env)
            rt, rtype = self.expr(depth - 1, env)
            return self.capped(f"({lt} {op} {rt})",
                               ty.bitwise_result(ltype, rtype))
        if kind == "shift":
            return self.shift(depth, env)
        if kind == "concat":
            lt, ltype = self.expr(depth - 1, env)
            rt, rtype = self.expr(depth - 1, env)
            self.features.add("concat")
            if ltype.is_signed or rtype.is_signed:
                self.features.add("signed_concat")
            return self.capped(f"({lt} :: {rt})",
                               ty.concat_result(ltype, rtype))
        if kind == "cond":
            cond, _ = self.compare(depth - 1, env)
            tt, ttype = self.expr(depth - 1, env)
            ft, ftype = self.expr(depth - 1, env)
            self.features.add("cond_expr")
            return self.capped(f"({cond} ? {tt} : {ft})",
                               ty.common_supertype(ttype, ftype))
        if kind == "cast":
            text, _ = self.expr(depth - 1, env)
            width = self.rng.choice((1, 4, 8, 16, 32))
            target = IntType(width, self.rng.random() < 0.4)
            return self.cast(text, target)
        if kind == "unary":
            text, t = self.expr(depth - 1, env)
            if self.rng.random() < 0.5:
                return self.capped(f"(- {text})", ty.neg_result(t))
            return f"(~ {text})", ty.not_result(t)
        if kind == "subscript":
            node = self.subscript(env)
            if node is not None:
                return node
            return self.leaf(env)
        if kind == "call":
            node = self.call(depth, env)
            if node is not None:
                return node
            return self.leaf(env)
        return self.leaf(env)

    def shift(self, depth: int,
              env: List[Tuple[str, IntType]]) -> Tuple[str, IntType]:
        lt, ltype = self.expr(depth - 1, env)
        op = self.rng.choice(("<<", ">>"))
        if self.rng.random() < 0.6:
            amount = self.rng.randint(0, 4)
            if op == "<<":
                result = ty.shl_result(ltype, ty.literal_type(amount),
                                       shift_const=amount)
            else:
                result = ty.shr_result(ltype, ty.literal_type(amount))
            return self.capped(f"({lt} {op} {amount})", result)
        # Dynamic shift amount, cast small so the result width stays bounded.
        raw, _ = self.expr(depth - 1, env)
        rt, rtype = self.cast(raw, ty.unsigned(3))
        self.features.add("dyn_shift")
        if op == "<<":
            result = ty.shl_result(ltype, rtype)
        else:
            result = ty.shr_result(ltype, rtype)
        return self.capped(f"({lt} {op} {rt})", result)

    def compare(self, depth: int,
                env: List[Tuple[str, IntType]]) -> Tuple[str, IntType]:
        lt, _ = self.expr(depth, env)
        rt, _ = self.expr(depth, env)
        text = f"({lt} {self.rng.choice(_COMPARE_OPS)} {rt})"
        if self.rng.random() < 0.2:
            other, _ = self.compare(0, env)
            text = f"({text} {self.rng.choice(('&&', '||'))} {other})"
        return text, ty.BOOL

    def subscript(self,
                  env: List[Tuple[str, IntType]]) -> Optional[Tuple[str, IntType]]:
        candidates = [(n, t) for n, t in env if t.width >= 2]
        if not candidates:
            return None
        name, t = self.rng.choice(candidates)
        mode = self.rng.choice(("bit", "range", "range", "full", "single"))
        if mode == "bit":
            self.features.add("bit_subscript")
            return f"({name}[{self.rng.randrange(t.width)}])", ty.BOOL
        self.features.add("range_subscript")
        if mode == "full":
            hi, lo = t.width - 1, 0
        elif mode == "single":
            hi = lo = self.rng.randrange(t.width)
        else:
            lo = self.rng.randrange(t.width)
            hi = self.rng.randint(lo, t.width - 1)
        return f"({name}[{hi}:{lo}])", ty.slice_result(hi, lo)

    def call(self, depth: int,
             env: List[Tuple[str, IntType]]) -> Optional[Tuple[str, IntType]]:
        if not self.functions:
            return None
        name, ret, params = self.rng.choice(self.functions)
        args = []
        # Functions are inlined by the frontend; a call nested inside the
        # arguments of another call to the same function trips the inliner's
        # recursion guard, so argument expressions never contain calls.
        saved, self.functions = self.functions, []
        try:
            for param in params:
                raw, _ = self.expr(depth - 1, env)
                args.append(self.cast(raw, param)[0])
        finally:
            self.functions = saved
        self.features.add("function")
        return f"{name}({', '.join(args)})", ret

    # ---------------------------------------------------------- statements
    def stmt(self, env: _Env, indent: str) -> List[str]:
        """One statement; may extend ``env`` with a new local."""
        kind = self.rng.choice(
            ("decl", "decl", "assign", "compound", "if", "for")
        )
        if kind == "decl" or not env.mutable:
            text, t = self.expr(self.budget.depth, env.values)
            name = self.var()
            env.add(name, t)
            return [f"{indent}{self.fmt_type(t)} {name} = {text};"]
        if kind == "assign":
            name, t = self.rng.choice(env.mutable)
            text, _ = self.cast(
                self.expr(self.budget.depth, env.values)[0], t)
            return [f"{indent}{name} = {text};"]
        if kind == "compound":
            name, _ = self.rng.choice(env.mutable)
            op = self.rng.choice(_COMPOUND_OPS)
            text, _ = self.expr(self.budget.depth - 1, env.values)
            return [f"{indent}{name} {op} {text};"]
        if kind == "if":
            return self.if_stmt(env, indent)
        return self.for_stmt(env, indent)

    def mutate_stmt(self, env: _Env, indent: str) -> str:
        """An assignment/compound to an existing local (no declarations);
        used inside branch and loop bodies to keep scoping trivial."""
        name, t = self.rng.choice(env.mutable)
        if self.rng.random() < 0.5:
            text, _ = self.cast(
                self.expr(self.budget.depth - 1, env.values)[0], t)
            return f"{indent}{name} = {text};"
        op = self.rng.choice(_COMPOUND_OPS)
        text, _ = self.expr(self.budget.depth - 1, env.values)
        return f"{indent}{name} {op} {text};"

    def if_stmt(self, env: _Env, indent: str) -> List[str]:
        cond, _ = self.compare(self.budget.depth - 1, env.values)
        lines = [f"{indent}if {cond} {{",
                 self.mutate_stmt(env, indent + "  ")]
        if self.rng.random() < 0.5:
            lines += [f"{indent}}} else {{",
                      self.mutate_stmt(env, indent + "  ")]
        lines.append(f"{indent}}}")
        return lines

    def for_stmt(self, env: _Env, indent: str) -> List[str]:
        self.features.add("for_loop")
        ivar = self.var("i")
        trips = self.rng.randint(2, 4)
        acc_name, _ = self.rng.choice(env.mutable)
        # Accumulate a same-variable affine slice ``x[i+K:i]`` when a wide
        # enough operand exists (paper Section 2.4's dotprod idiom).
        wide = [(n, t) for n, t in env.values if t.width >= trips + 4]
        if wide and self.rng.random() < 0.7:
            src, src_t = self.rng.choice(wide)
            span = self.rng.randint(1, min(4, src_t.width - trips))
            term = f"({src}[{ivar}+{span - 1}:{ivar}])"
        else:
            term, _ = self.expr(1, env.values)
        op = self.rng.choice(("+=", "^=", "|="))
        return [
            f"{indent}for (int {ivar} = 0; {ivar} < {trips}; "
            f"{ivar} += 1) {{",
            f"{indent}  {acc_name} {op} {term};",
            f"{indent}}}",
        ]

    # ----------------------------------------------------- top-level parts
    def gen_state(self) -> List[str]:
        lines: List[str] = []
        want = self.rng.randint(0, self.budget.registers)
        if self.budget.allow_always and self.rng.random() < 0.5:
            want = max(want, 1)
        for index in range(want):
            # The first register is 32 bits wide so always-blocks can
            # compare it against the PC (the zol idiom).
            width = 32 if index == 0 else self.rng.choice((5, 8, 12, 16, 32))
            name = f"FR{index}"
            self.registers.append((name, ty.unsigned(width)))
            lines.append(f"    register unsigned<{width}> {name};")
            self.features.add("custom_reg")
        if self.budget.allow_rom and self.rng.random() < 0.3:
            values = ", ".join(
                f"0x{self.rng.randrange(256):02x}" for _ in range(16)
            )
            self.rom = ("FTAB", 8, 16)
            lines.append(
                f"    const unsigned<8> FTAB[16] = {{ {values} }};")
            self.features.add("rom")
        if self.rng.random() < 0.2:
            self.array_reg = ("FARR", 4)
            lines.append("    register unsigned<32> FARR[4];")
            self.features.add("custom_array")
        return lines

    def gen_function(self, index: int) -> List[str]:
        name = f"fzf{index}"
        params = [IntType(self.rng.choice((8, 16, 32)),
                          self.rng.random() < 0.3)
                  for _ in range(self.rng.randint(1, 2))]
        ret = ty.unsigned(self.rng.choice((16, 32)))
        env = [(f"p{k}", t) for k, t in enumerate(params)]
        sig = ", ".join(f"{self.fmt_type(t)} {n}" for n, t in env)
        lines = [f"    {self.fmt_type(ret)} {name}({sig}) {{"]
        for _ in range(self.rng.randint(0, 2)):
            text, t = self.expr(self.budget.depth - 1, env)
            local = self.var()
            env.append((local, t))
            lines.append(f"      {self.fmt_type(t)} {local} = {text};")
        body, _ = self.expr(self.budget.depth, env)
        lines.append(f"      return {self.cast(body, ret)[0]};")
        lines.append("    }")
        self.functions.append((name, ret, params))
        return lines

    def gen_instruction(self, index: int) -> List[str]:
        name = f"fz{self.seed}_{index}"
        itype = self.rng.random() < 0.4          # I-type (immediate) layout
        spawn = self.budget.allow_spawn and self.rng.random() < 0.25
        f7 = self.rng.randrange(128)
        if itype:
            encoding = (f"uimm[11:0] :: rs1[4:0] :: 3'd{index} :: "
                        "rd[4:0] :: 7'b0001011")
            self.features.add("imm_field")
        else:
            encoding = (f"7'd{f7} :: rs2[4:0] :: rs1[4:0] :: 3'd{index} :: "
                        "rd[4:0] :: 7'b0001011")
        lines = [f"    {name} {{",
                 f"      encoding: {encoding};",
                 "      behavior: {"]
        ind = "        "
        env = _Env()

        # Prologue: one read per interface, results bound to locals.
        env.add("va", ty.unsigned(32))
        lines.append(f"{ind}unsigned<32> va = X[rs1];")
        if not itype and self.rng.random() < 0.8:
            env.add("vb", ty.unsigned(32))
            lines.append(f"{ind}unsigned<32> vb = X[rs2];")
        if itype:
            env.add("uimm", ty.unsigned(12), mutable=False)
        env.add("rd", ty.unsigned(5), mutable=False)
        mem_read = mem_write = False
        if not spawn:
            for reg_name, reg_type in self.registers:
                if self.rng.random() < 0.5:
                    local = self.var("vr")
                    env.add(local, reg_type)
                    lines.append(
                        f"{ind}{self.fmt_type(reg_type)} {local} "
                        f"= {reg_name};")
            if self.rom is not None and self.rng.random() < 0.7:
                rom_name, rom_width, rom_size = self.rom
                bits = rom_size.bit_length() - 1
                local = self.var("vt")
                env.add(local, ty.unsigned(rom_width))
                lines.append(
                    f"{ind}unsigned<{rom_width}> {local} = "
                    f"{rom_name}[(va[{bits - 1}:0])];")
            if self.array_reg is not None and self.rng.random() < 0.6:
                local = self.var("vA")
                env.add(local, ty.unsigned(32))
                lines.append(
                    f"{ind}unsigned<32> {local} = "
                    f"{self.array_reg[0]}[(rs1[1:0])];")
            if self.budget.allow_memory and self.rng.random() < 0.35:
                mem_read = True
                self.features.add("mem_read")
                span, width = self.rng.choice(((3, 32), (1, 16), (0, 8)))
                local = self.var("vm")
                env.add(local, ty.unsigned(width))
                source = (f"MEM[va+{span}:va]" if span else "MEM[va]")
                lines.append(
                    f"{ind}unsigned<{width}> {local} = {source};")

        if spawn:
            self.features.add("spawn")
            lines.append(f"{ind}spawn {{")
            ind += "  "

        for _ in range(self.rng.randint(1, self.budget.statements)):
            lines.extend(self.stmt(env, ind))

        # Epilogue: at most one write per interface; X[rd] is always last.
        rd_extra = ""
        if not spawn:
            if self.registers and self.rng.random() < 0.5:
                reg_name, reg_type = self.rng.choice(self.registers)
                text, _ = self.cast(
                    self.expr(self.budget.depth, env.values)[0], reg_type)
                lines.append(f"{ind}{reg_name} = {text};")
                if self.rng.random() < 0.5:
                    # Write-then-read: the shadow environment must forward
                    # the pending value (paper Section 3.1).
                    self.features.add("wr_then_rd")
                    local = self.var("vq")
                    lines.append(
                        f"{ind}{self.fmt_type(reg_type)} {local} "
                        f"= {reg_name};")
                    rd_extra = f"{local} ^ "
            if self.array_reg is not None and self.rng.random() < 0.4:
                text, _ = self.cast(
                    self.expr(self.budget.depth, env.values)[0],
                    ty.unsigned(32))
                lines.append(
                    f"{ind}{self.array_reg[0]}[(rd[1:0])] = {text};")
            if (self.budget.allow_memory and not mem_read
                    and self.rng.random() < 0.25):
                mem_write = True
                self.features.add("mem_write")
                span, width = self.rng.choice(((3, 32), (0, 8)))
                text, _ = self.cast(
                    self.expr(self.budget.depth, env.values)[0],
                    ty.unsigned(width))
                target = (f"MEM[va+{span}:va]" if span else "MEM[va]")
                lines.append(f"{ind}{target} = {text};")
            if not mem_write and self.rng.random() < 0.15:
                # The predicate must be decode-time (an encoding field):
                # values derived from loads arrive after the WrPC window
                # closes on in-order cores such as ORCA.
                self.features.add("pc_write")
                lines.append(f"{ind}if ((rs1[0])) {{")
                lines.append(
                    f"{ind}  PC = (unsigned<32>) (PC + 8);")
                lines.append(f"{ind}}}")
        body, _ = self.expr(self.budget.depth, env.values)
        text, _ = self.cast(f"{rd_extra}{body}", ty.unsigned(32))
        lines.append(f"{ind}X[rd] = {text};")

        if spawn:
            ind = ind[:-2]
            lines.append(f"{ind}}}")
        lines.append("      }")
        lines.append("    }")
        return lines

    def gen_always(self) -> List[str]:
        self.features.add("always")
        reg_name, reg_type = self.registers[0]
        lines = [f"    fza{self.seed} {{"]
        if self.rng.random() < 0.5:
            # The zol idiom: compare a custom register against the PC and
            # redirect when it matches.
            lines.append(
                f"      if ({reg_name} != 0 && {reg_name} == PC) {{")
            lines.append(
                "        PC = (unsigned<32>) (PC + 4);")
        else:
            lines.append(f"      if ({reg_name} != 0) {{")
        lines.append(
            f"        {reg_name} = "
            f"({self.fmt_type(reg_type)}) ({reg_name} - 1);")
        lines.append("      }")
        lines.append("    }")
        return lines

    # -------------------------------------------------------------- driver
    def program(self) -> FuzzProgram:
        name = f"fuzz_s{self.seed}"
        state_lines = self.gen_state()
        function_lines: List[str] = []
        for index in range(self.rng.randint(0, self.budget.functions)):
            function_lines.extend(self.gen_function(index))
        instr_lines: List[str] = []
        for index in range(self.rng.randint(1, self.budget.instructions)):
            instr_lines.extend(self.gen_instruction(index))
        always_lines: List[str] = []
        if (self.budget.allow_always and self.registers
                and self.rng.random() < 0.4):
            always_lines = self.gen_always()

        parts = ['import "RV32I.core_desc"', "",
                 f"InstructionSet {name} extends RV32I {{"]
        if state_lines:
            parts.append("  architectural_state {")
            parts.extend(state_lines)
            parts.append("  }")
        if function_lines:
            parts.append("  functions {")
            parts.extend(function_lines)
            parts.append("  }")
        parts.append("  instructions {")
        parts.extend(instr_lines)
        parts.append("  }")
        if always_lines:
            parts.append("  always {")
            parts.extend(always_lines)
            parts.append("  }")
        parts.append("}")
        return FuzzProgram(
            seed=self.seed,
            source="\n".join(parts) + "\n",
            name=name,
            features=frozenset(self.features),
        )


def generate_program(seed: int,
                     budget: Optional[FuzzBudget] = None) -> FuzzProgram:
    """Generate one well-typed CoreDSL program from ``seed``.

    The same seed and budget always produce byte-identical source (the
    corpus and the replay path depend on this).
    """
    return _Gen(seed, budget or FuzzBudget()).program()
