"""On-disk corpus of deduplicated fuzz reproducers.

Layout (rooted at ``fuzz-out/`` by default)::

    fuzz-out/
      stats.json                    # campaign-level stats, rewritten per run
      reproducers/
        cosim-3fa9c1d2e4b8.core_desc    # one reduced program per unique bug
        cosim-3fa9c1d2e4b8.json         # metadata: seed, cores, oracle detail

Deduplication key: oracle kind + a *canonicalized* digest of the reduced
program.  The generator stamps the seed into every identifier
(``fuzz_s15``, ``fz15_0`` ...), so two seeds hitting the same bug reduce to
programs that differ only in those stamps; canonicalization rewrites them
to a fixed placeholder before hashing.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Dict, List, Optional, Tuple

_SEED_STAMPS = (
    (re.compile(r"fuzz_s\d+"), "fuzz_sN"),
    (re.compile(r"\bfz\d+_"), "fzN_"),
    (re.compile(r"\bfza\d+\b"), "fzaN"),
)

#: Digest prefix length used in reproducer file names.
_DIGEST_LEN = 12


def canonical_digest(kind: str, source: str) -> str:
    """Content digest that is stable across generator seed stamps."""
    text = source
    for pattern, replacement in _SEED_STAMPS:
        text = pattern.sub(replacement, text)
    payload = f"{kind}\n{text}".encode()
    return hashlib.sha256(payload).hexdigest()[:_DIGEST_LEN]


class FuzzCorpus:
    """Reproducer store with kind+digest deduplication."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.reproducer_dir = os.path.join(root, "reproducers")

    # -- queries -----------------------------------------------------------
    def entries(self) -> List[str]:
        """Reproducer basenames (``<kind>-<digest>``) currently on disk."""
        if not os.path.isdir(self.reproducer_dir):
            return []
        return sorted(
            name[:-len(".core_desc")]
            for name in os.listdir(self.reproducer_dir)
            if name.endswith(".core_desc"))

    def __len__(self) -> int:
        return len(self.entries())

    # -- updates -----------------------------------------------------------
    def add(self, kind: str, source: str,
            meta: Optional[Dict] = None) -> Tuple[str, bool]:
        """Store a reduced reproducer.  Returns ``(name, is_new)``;
        duplicates (same oracle kind, same canonical program) are dropped."""
        digest = canonical_digest(kind, source)
        name = f"{kind}-{digest}"
        program_path = os.path.join(self.reproducer_dir,
                                    f"{name}.core_desc")
        if os.path.exists(program_path):
            return name, False
        os.makedirs(self.reproducer_dir, exist_ok=True)
        with open(program_path, "w") as handle:
            handle.write(source)
        if meta is not None:
            with open(os.path.join(self.reproducer_dir,
                                   f"{name}.json"), "w") as handle:
                json.dump(meta, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return name, True

    def write_stats(self, stats: Dict) -> str:
        os.makedirs(self.root, exist_ok=True)
        path = os.path.join(self.root, "stats.json")
        with open(path, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
