"""Campaign driver: fan seeds through the executor, reduce, and persist.

One seed = one :class:`~repro.service.executor.TaskSpec` running
:func:`run_fuzz_payload` (generate the program, run the oracle stack) in a
worker process; reduction of the (rare) failures happens in the parent so
the delta-debugging predicate can reuse the in-process compile caches.
Failures are deduplicated into a :class:`~repro.fuzz.corpus.FuzzCorpus`
and summarized in ``<out>/stats.json``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fuzz.corpus import FuzzCorpus
from repro.fuzz.generator import FuzzBudget, generate_program
from repro.fuzz.oracles import DEFAULT_CORES, run_oracles
from repro.fuzz.reduce import reduce_program
from repro.service.executor import BatchExecutor, TaskSpec

#: Runner reference used in the per-seed task specs.
FUZZ_RUNNER = "repro.fuzz.campaign:run_fuzz_payload"


@dataclasses.dataclass
class FuzzConfig:
    """Knobs for one fuzzing campaign."""

    seeds: int = 50
    seed_start: int = 0
    budget: Optional[FuzzBudget] = None      # None => FuzzBudget() defaults
    cores: Tuple[str, ...] = ()              # () => DEFAULT_CORES
    trials: int = 8                          # cosim trials per core
    cosim_seed: int = 0
    sim_engine: str = "auto"                 # RTL sim engine for the oracles
    workers: int = 1                         # <=1 => inline, no process pool
    out_dir: str = "fuzz-out"
    reduce: bool = True
    max_reduce_steps: int = 500
    oracles: Tuple[str, ...] = ()            # () => DEFAULT_ORACLES

    def resolved_cores(self) -> Tuple[str, ...]:
        return tuple(self.cores) if self.cores else DEFAULT_CORES

    def resolved_budget(self) -> FuzzBudget:
        return self.budget if self.budget is not None else FuzzBudget()


@dataclasses.dataclass
class SeedOutcome:
    """What happened to one seed (flattened from the worker record)."""

    seed: int
    status: str                 # "pass" | "fail" | "invalid" | "error"
    failures: List[Dict] = dataclasses.field(default_factory=list)
    source: str = ""
    detail: str = ""            # invalid/error message


@dataclasses.dataclass
class CampaignResult:
    """Aggregate outcome of :func:`run_campaign`."""

    config: FuzzConfig
    outcomes: List[SeedOutcome]
    reproducers: List[str]      # corpus entry names added or re-hit
    new_reproducers: List[str]  # subset of the above that were new
    stats_path: str
    seconds: float

    @property
    def programs(self) -> int:
        return len(self.outcomes)

    @property
    def failing_seeds(self) -> List[int]:
        return [o.seed for o in self.outcomes if o.status == "fail"]

    @property
    def invalid_seeds(self) -> List[int]:
        return [o.seed for o in self.outcomes
                if o.status in ("invalid", "error")]

    @property
    def ok(self) -> bool:
        return not self.failing_seeds and not self.invalid_seeds

    def __str__(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (f"fuzz campaign: {self.programs} programs, "
                f"{len(self.failing_seeds)} failing, "
                f"{len(self.invalid_seeds)} invalid, "
                f"{len(self.new_reproducers)} new reproducers, "
                f"{self.seconds:.1f}s, {status}")


def run_fuzz_payload(payload: dict) -> dict:
    """Executor runner: generate one program and run the oracle stack.

    JSON-able in, JSON-able out (this crosses the process-pool pickle
    boundary).  Programs that fail to elaborate are reported as
    ``invalid`` — the generator's well-typedness guarantee is itself under
    test here.
    """
    seed = int(payload["seed"])
    budget = FuzzBudget(**payload.get("budget") or {})
    cores = tuple(payload.get("cores") or ()) or None
    program = generate_program(seed, budget)
    record = {
        "seed": seed,
        "source": program.source,
        "features": sorted(program.features),
    }
    try:
        report = run_oracles(
            program.source, cores=cores,
            trials=int(payload.get("trials", 8)),
            cosim_seed=int(payload.get("cosim_seed", 0)),
            sim_engine=str(payload.get("sim_engine", "auto")),
            oracles=tuple(payload.get("oracles") or ()) or None)
    except Exception as exc:
        record["invalid"] = f"{type(exc).__name__}: {exc}"
        return record
    record["functionalities"] = report.functionalities
    record["failures"] = [dataclasses.asdict(f) for f in report.failures]
    return record


def _reduction_predicate(config: FuzzConfig,
                         failure: Dict) -> Callable[[str], bool]:
    """The failure reproduces iff the oracle stack — restricted to the
    originally-failing core — still reports a failure of the same kind."""
    kind, core = failure["kind"], failure["core"]

    def predicate(text: str) -> bool:
        try:
            report = run_oracles(text, cores=(core,), trials=config.trials,
                                 cosim_seed=config.cosim_seed,
                                 sim_engine=config.sim_engine,
                                 oracles=tuple(config.oracles) or None)
        except Exception:
            return False        # candidate no longer elaborates: invalid
        return any(f.kind == kind for f in report.failures)

    return predicate


def _flatten(outcome, seed: int) -> SeedOutcome:
    if not outcome.ok:
        return SeedOutcome(seed=seed, status="error",
                           detail=outcome.error or "executor failure")
    record = outcome.result
    if "invalid" in record:
        return SeedOutcome(seed=seed, status="invalid",
                           source=record.get("source", ""),
                           detail=record["invalid"])
    failures = record.get("failures", [])
    return SeedOutcome(
        seed=seed, status="fail" if failures else "pass",
        failures=failures, source=record.get("source", ""))


def run_campaign(config: FuzzConfig,
                 log: Optional[Callable[[str], None]] = None,
                 executor: Optional[BatchExecutor] = None) -> CampaignResult:
    """Run one fuzzing campaign and persist reproducers + stats."""
    emit = log or (lambda message: None)
    start = time.perf_counter()
    budget = config.resolved_budget()
    cores = config.resolved_cores()
    seeds = range(config.seed_start, config.seed_start + config.seeds)

    specs = [
        TaskSpec(
            runner=FUZZ_RUNNER,
            payload={
                "seed": seed,
                "budget": dataclasses.asdict(budget),
                "cores": list(cores),
                "trials": config.trials,
                "cosim_seed": config.cosim_seed,
                "sim_engine": config.sim_engine,
                "oracles": list(config.oracles),
            },
            label=f"fuzz seed {seed}",
        )
        for seed in seeds
    ]
    emit(f"fuzzing {len(specs)} seeds on {', '.join(cores)} "
         f"({config.workers} workers)")
    executor = executor or BatchExecutor(workers=config.workers)
    job_outcomes = executor.run_specs(specs)

    outcomes = [_flatten(outcome, seed)
                for seed, outcome in zip(seeds, job_outcomes)]

    corpus = FuzzCorpus(config.out_dir)
    reproducers: List[str] = []
    new_reproducers: List[str] = []
    for seed_outcome in outcomes:
        if seed_outcome.status != "fail":
            continue
        emit(f"seed {seed_outcome.seed}: "
             f"{len(seed_outcome.failures)} oracle failure(s)")
        # One reproducer per distinct oracle kind seen on this seed.
        for kind in sorted({f["kind"] for f in seed_outcome.failures}):
            failure = next(f for f in seed_outcome.failures
                           if f["kind"] == kind)
            reduced = seed_outcome.source
            if config.reduce:
                try:
                    reduced = reduce_program(
                        seed_outcome.source,
                        _reduction_predicate(config, failure),
                        max_steps=config.max_reduce_steps)
                except ValueError:
                    # Flaky failure: keep the unreduced program.
                    pass
            name, is_new = corpus.add(kind, reduced, meta={
                "seed": seed_outcome.seed,
                "kind": kind,
                "core": failure["core"],
                "detail": failure["detail"],
                "cosim_seed": config.cosim_seed,
                "trials": config.trials,
                "sim_engine": config.sim_engine,
                "original_bytes": len(seed_outcome.source),
                "reduced_bytes": len(reduced),
            })
            reproducers.append(name)
            if is_new:
                new_reproducers.append(name)
                emit(f"  new reproducer {name} "
                     f"({len(seed_outcome.source)} -> {len(reduced)} bytes)")
            else:
                emit(f"  duplicate of {name}")

    seconds = time.perf_counter() - start
    by_status: Dict[str, int] = {}
    for seed_outcome in outcomes:
        by_status[seed_outcome.status] = (
            by_status.get(seed_outcome.status, 0) + 1)
    stats_path = corpus.write_stats({
        "seeds": config.seeds,
        "seed_start": config.seed_start,
        "cores": list(cores),
        "budget": dataclasses.asdict(budget),
        "trials": config.trials,
        "cosim_seed": config.cosim_seed,
        "sim_engine": config.sim_engine,
        "oracles": list(config.oracles),
        "status_counts": by_status,
        "failing_seeds": [o.seed for o in outcomes if o.status == "fail"],
        "invalid_seeds": [o.seed for o in outcomes
                          if o.status in ("invalid", "error")],
        "reproducers": sorted(set(reproducers)),
        "new_reproducers": sorted(new_reproducers),
        "corpus_size": len(corpus),
        "seconds": round(seconds, 3),
    })
    return CampaignResult(config=config, outcomes=outcomes,
                          reproducers=reproducers,
                          new_reproducers=new_reproducers,
                          stats_path=stats_path, seconds=seconds)
