"""Delta-debugging reducer for failing CoreDSL programs.

Works at the AST level (never on raw text): parse the program once, then
repeatedly apply structural shrink passes — drop whole definitions, remove
statement chunks ddmin-style, unwrap ``if``/``for``/``spawn`` bodies — and
keep any candidate for which the caller's *predicate* still reproduces the
failure.  Candidates that no longer elaborate simply fail the predicate
(the oracles raise on invalid programs), so the reducer needs no use-def
analysis of its own: deleting a declaration whose uses remain is rejected
the same way as deleting the statement that triggers the bug.

Every candidate edit is addressed by an index path and applied to a fresh
resolution of the working tree, so a rejected (and rolled-back) edit can
never leave stale AST references behind.  Passes run to a fixed point.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_description
from repro.fuzz.unparse import unparse

#: ``predicate(source) -> bool`` — True iff the failure still reproduces.
Predicate = Callable[[str], bool]

#: Definition lists a :class:`~repro.frontend.ast_nodes.ISABody` carries,
#: in the order the reducer tries to empty them.
_DEF_ATTRS = ("instructions", "always_blocks", "functions", "state")


def _stmts_in(stmt: Optional[ast.Stmt]) -> List[ast.Stmt]:
    if stmt is None:
        return []
    if isinstance(stmt, ast.BlockStmt):
        return stmt.statements
    return [stmt]


def _blocks_of(stmt: Optional[ast.Stmt]) -> List[ast.BlockStmt]:
    """All statement lists reachable from ``stmt``, outermost first."""
    found: List[ast.BlockStmt] = []
    if stmt is None:
        return found
    if isinstance(stmt, ast.BlockStmt):
        found.append(stmt)
        for inner in stmt.statements:
            found.extend(_blocks_of(inner))
    elif isinstance(stmt, ast.IfStmt):
        found.extend(_blocks_of(stmt.then_body))
        found.extend(_blocks_of(stmt.else_body))
    elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.SpawnStmt)):
        found.extend(_blocks_of(stmt.body))
    elif isinstance(stmt, ast.SwitchStmt):
        for case in stmt.cases:
            found.extend(_blocks_of(case.body))
    return found


def _isa_bodies(desc: ast.Description) -> List[ast.ISABody]:
    bodies = [isa.body for isa in desc.instruction_sets]
    bodies.extend(core.body for core in desc.cores)
    return [b for b in bodies if b is not None]


def _all_blocks(desc: ast.Description) -> List[ast.BlockStmt]:
    """Every statement list in the description, in a stable order (the
    order is a pure function of tree shape, so an index into this list
    stays valid across a deepcopy)."""
    blocks: List[ast.BlockStmt] = []
    for body in _isa_bodies(desc):
        for instr in body.instructions:
            blocks.extend(_blocks_of(instr.behavior))
        for always in body.always_blocks:
            blocks.extend(_blocks_of(always.body))
        for func in body.functions:
            blocks.extend(_blocks_of(func.body))
    return blocks


class _Reducer:
    def __init__(self, source: str, predicate: Predicate) -> None:
        self.predicate = predicate
        self.best_source = source
        self.work = parse_description(source)

    def _try_edit(self, mutate: Callable[[ast.Description], None]) -> bool:
        """Apply ``mutate`` to the working tree; keep the result iff the
        failure still reproduces, else roll back."""
        snapshot = copy.deepcopy(self.work)
        try:
            mutate(self.work)
            text = unparse(self.work)
            if self.predicate(text):
                self.best_source = text
                return True
        except Exception:
            pass
        self.work = snapshot
        return False

    # -- passes (each returns True after the first accepted edit) ----------
    def _drop_definitions(self) -> bool:
        for attr in _DEF_ATTRS:
            for body_index, body in enumerate(_isa_bodies(self.work)):
                for item_index in range(len(getattr(body, attr))):
                    def mutate(desc, a=attr, b=body_index, i=item_index):
                        del getattr(_isa_bodies(desc)[b], a)[i]
                    if self._try_edit(mutate):
                        return True
        return False

    def _remove_statement_chunks(self) -> bool:
        for block_index, block in enumerate(_all_blocks(self.work)):
            n = len(block.statements)
            if n == 0:
                continue
            size = max(n // 2, 1)
            while True:
                for start in range(0, n, size):
                    def mutate(desc, b=block_index, s=start, k=size):
                        del _all_blocks(desc)[b].statements[s:s + k]
                    if self._try_edit(mutate):
                        return True
                if size == 1:
                    break
                size = max(size // 2, 1)
        return False

    def _unwrap_compounds(self) -> bool:
        for block_index, block in enumerate(_all_blocks(self.work)):
            for stmt_index, stmt in enumerate(block.statements):
                edits: List[Callable[[ast.Description], None]] = []
                if isinstance(stmt, ast.IfStmt):
                    if stmt.else_body is not None:
                        def drop_else(desc, b=block_index, s=stmt_index):
                            _all_blocks(desc)[b].statements[s].else_body = None
                        edits.append(drop_else)

                    def unwrap_then(desc, b=block_index, s=stmt_index):
                        target = _all_blocks(desc)[b].statements
                        target[s:s + 1] = _stmts_in(target[s].then_body)
                    edits.append(unwrap_then)
                elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt,
                                       ast.SpawnStmt)):
                    def unwrap_body(desc, b=block_index, s=stmt_index):
                        target = _all_blocks(desc)[b].statements
                        target[s:s + 1] = _stmts_in(target[s].body)
                    edits.append(unwrap_body)
                for edit in edits:
                    if self._try_edit(edit):
                        return True
        return False

    # -- driver ------------------------------------------------------------
    def run(self, max_steps: int) -> str:
        passes = (self._drop_definitions, self._remove_statement_chunks,
                  self._unwrap_compounds)
        steps = 0
        progress = True
        while progress and steps < max_steps:
            progress = False
            for reduction_pass in passes:
                while reduction_pass():
                    progress = True
                    steps += 1
                    if steps >= max_steps:
                        return self.best_source
        return self.best_source


def reduce_program(source: str, predicate: Predicate,
                   max_steps: int = 500) -> str:
    """Shrink ``source`` while ``predicate`` keeps returning True.

    ``predicate`` receives candidate source text and must return True iff
    the original failure still reproduces (e.g. "run_oracles reports a
    cosim failure on VexRiscv").  The original source must satisfy the
    predicate; otherwise ValueError is raised.  Returns the smallest
    accepted source (at worst the input itself).
    """
    if not predicate(source):
        raise ValueError("predicate does not hold on the original program")
    return _Reducer(source, predicate).run(max_steps)
