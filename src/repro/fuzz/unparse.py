"""AST -> CoreDSL source text, for the delta-debugging reducer.

The reducer (:mod:`repro.fuzz.reduce`) works on the parsed AST — dropping
statements, unwrapping ``if``/``spawn`` bodies, deleting whole definitions —
and each candidate must go back through the full pipeline as *source*, since
the oracles consume source text.  The printer is deliberately conservative:
every compound expression is parenthesized, so operator precedence can never
change the meaning of a round-tripped program.  Parentheses collapse during
parsing, which makes ``parse(unparse(parse(s)))`` a fixed point.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast_nodes as ast


class UnparseError(Exception):
    """An AST shape the printer does not know how to render."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def unparse_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLiteral):
        if expr.explicit_type is not None:
            t = expr.explicit_type
            mask = (1 << t.width) - 1
            return f"{t.width}'d{expr.value & mask}"
        return str(expr.value)
    if isinstance(expr, ast.BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.BinaryOp):
        return (f"({unparse_expr(expr.lhs)} {expr.op} "
                f"{unparse_expr(expr.rhs)})")
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op} {unparse_expr(expr.operand)})"
    if isinstance(expr, ast.Conditional):
        return (f"({unparse_expr(expr.cond)} ? "
                f"{unparse_expr(expr.true_value)} : "
                f"{unparse_expr(expr.false_value)})")
    if isinstance(expr, ast.Cast):
        sign = "signed" if expr.target_signed else "unsigned"
        if expr.width_expr is not None:
            head = f"({sign}<{unparse_expr(expr.width_expr)}>)"
        elif expr.target_width is not None:
            head = f"({sign}<{expr.target_width}>)"
        else:
            head = f"({sign})"
        return f"({head} ({unparse_expr(expr.operand)}))"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.IndexExpr):
        return f"{unparse_expr(expr.base)}[{unparse_expr(expr.index)}]"
    if isinstance(expr, ast.RangeExpr):
        return (f"{unparse_expr(expr.base)}[{unparse_expr(expr.hi)}:"
                f"{unparse_expr(expr.lo)}]")
    raise UnparseError(f"cannot unparse expression {type(expr).__name__}")


def _type_spec(is_signed: bool, width_expr: Optional[ast.Expr],
               width: Optional[int] = None) -> str:
    sign = "signed" if is_signed else "unsigned"
    if width_expr is not None:
        return f"{sign}<{unparse_expr(width_expr)}>"
    if width is not None:
        return f"{sign}<{width}>"
    return sign


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

def _stmt_head(stmt: ast.Stmt) -> str:
    """A statement rendered on one line without the trailing semicolon —
    used for ``for`` init/step clauses."""
    if isinstance(stmt, ast.VarDecl):
        head = f"{_type_spec(stmt.is_signed, stmt.width_expr)} {stmt.name}"
        if stmt.init is not None:
            head += f" = {unparse_expr(stmt.init)}"
        return head
    if isinstance(stmt, ast.Assign):
        return (f"{unparse_expr(stmt.target)} {stmt.op} "
                f"{unparse_expr(stmt.value)}")
    if isinstance(stmt, ast.ExprStmt):
        return unparse_expr(stmt.expr)
    raise UnparseError(f"cannot unparse clause {type(stmt).__name__}")


def unparse_stmt(stmt: ast.Stmt, indent: str = "") -> List[str]:
    if isinstance(stmt, ast.BlockStmt):
        lines: List[str] = []
        for inner in stmt.statements:
            lines.extend(unparse_stmt(inner, indent))
        return lines
    if isinstance(stmt, (ast.VarDecl, ast.Assign, ast.ExprStmt)):
        return [f"{indent}{_stmt_head(stmt)};"]
    if isinstance(stmt, ast.IfStmt):
        lines = [f"{indent}if ({unparse_expr(stmt.cond)}) {{"]
        lines.extend(unparse_stmt(stmt.then_body, indent + "  "))
        if stmt.else_body is not None:
            lines.append(f"{indent}}} else {{")
            lines.extend(unparse_stmt(stmt.else_body, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(stmt, ast.ForStmt):
        init = _stmt_head(stmt.init) if stmt.init is not None else ""
        cond = unparse_expr(stmt.cond) if stmt.cond is not None else ""
        step = _stmt_head(stmt.step) if stmt.step is not None else ""
        lines = [f"{indent}for ({init}; {cond}; {step}) {{"]
        lines.extend(unparse_stmt(stmt.body, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(stmt, ast.WhileStmt):
        if stmt.is_do_while:
            lines = [f"{indent}do {{"]
            lines.extend(unparse_stmt(stmt.body, indent + "  "))
            lines.append(f"{indent}}} while ({unparse_expr(stmt.cond)});")
            return lines
        lines = [f"{indent}while ({unparse_expr(stmt.cond)}) {{"]
        lines.extend(unparse_stmt(stmt.body, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(stmt, ast.SwitchStmt):
        lines = [f"{indent}switch ({unparse_expr(stmt.value)}) {{"]
        for case in stmt.cases:
            if case.label is None:
                lines.append(f"{indent}  default: {{")
            else:
                lines.append(
                    f"{indent}  case {unparse_expr(case.label)}: {{")
            lines.extend(unparse_stmt(case.body, indent + "    "))
            lines.append(f"{indent}  }} break;")
        lines.append(f"{indent}}}")
        return lines
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            return [f"{indent}return;"]
        return [f"{indent}return {unparse_expr(stmt.value)};"]
    if isinstance(stmt, ast.SpawnStmt):
        lines = [f"{indent}spawn {{"]
        lines.extend(unparse_stmt(stmt.body, indent + "  "))
        lines.append(f"{indent}}}")
        return lines
    raise UnparseError(f"cannot unparse statement {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# Definitions
# ---------------------------------------------------------------------------

def _unparse_encoding(components: List[ast.EncodingComponent]) -> str:
    parts = []
    for comp in components:
        if isinstance(comp, ast.EncBits):
            parts.append(f"{comp.width}'b{comp.value:0{comp.width}b}")
        else:
            parts.append(f"{comp.name}[{comp.hi}:{comp.lo}]")
    return " :: ".join(parts)


def _unparse_state(decl: ast.StateDecl, indent: str) -> str:
    t = _type_spec(decl.is_signed, decl.width_expr, decl.width)
    head = f"{indent}"
    if decl.storage != "param":
        head += f"{decl.storage} "
    head += f"{t} {decl.name}"
    if decl.array_size_expr is not None:
        head += f"[{unparse_expr(decl.array_size_expr)}]"
    elif decl.array_size is not None:
        head += f"[{decl.array_size}]"
    for attr in decl.attributes:
        head += f" [[{attr}]]"
    if decl.init_list is not None:
        head += " = { " + ", ".join(
            unparse_expr(e) for e in decl.init_list) + " }"
    elif decl.init is not None:
        head += f" = {unparse_expr(decl.init)}"
    return head + ";"


def _unparse_function(func: ast.FunctionDef, indent: str) -> List[str]:
    ret = (_type_spec(func.return_signed, func.return_width_expr)
           if func.return_width_expr is not None else "void")
    params = ", ".join(
        f"{_type_spec(p.is_signed, p.width_expr)} {p.name}"
        for p in func.params)
    lines = [f"{indent}{ret} {func.name}({params}) {{"]
    lines.extend(unparse_stmt(func.body, indent + "  "))
    lines.append(f"{indent}}}")
    return lines


def _unparse_isa_body(body: ast.ISABody, indent: str) -> List[str]:
    lines: List[str] = []
    if body.state:
        lines.append(f"{indent}architectural_state {{")
        for decl in body.state:
            lines.append(_unparse_state(decl, indent + "  "))
        lines.append(f"{indent}}}")
    if body.functions:
        lines.append(f"{indent}functions {{")
        for func in body.functions:
            lines.extend(_unparse_function(func, indent + "  "))
        lines.append(f"{indent}}}")
    if body.instructions:
        lines.append(f"{indent}instructions {{")
        for instr in body.instructions:
            lines.append(f"{indent}  {instr.name} {{")
            lines.append(f"{indent}    encoding: "
                         f"{_unparse_encoding(instr.encoding)};")
            lines.append(f"{indent}    behavior: {{")
            lines.extend(unparse_stmt(instr.behavior, indent + "      "))
            lines.append(f"{indent}    }}")
            lines.append(f"{indent}  }}")
        lines.append(f"{indent}}}")
    if body.always_blocks:
        lines.append(f"{indent}always {{")
        for block in body.always_blocks:
            lines.append(f"{indent}  {block.name} {{")
            lines.extend(unparse_stmt(block.body, indent + "    "))
            lines.append(f"{indent}  }}")
        lines.append(f"{indent}}}")
    return lines


def unparse(description: ast.Description) -> str:
    """Render a parsed CoreDSL description back to source text."""
    lines: List[str] = []
    for imp in description.imports:
        lines.append(f'import "{imp}"')
    if description.imports:
        lines.append("")
    for isa in description.instruction_sets:
        head = f"InstructionSet {isa.name}"
        if isa.extends:
            head += f" extends {isa.extends}"
        lines.append(head + " {")
        lines.extend(_unparse_isa_body(isa.body, "  "))
        lines.append("}")
    for core in description.cores:
        provides = ", ".join(core.provides)
        lines.append(f"Core {core.name} provides {provides} {{")
        lines.extend(_unparse_isa_body(core.body, "  "))
        lines.append("}")
    return "\n".join(lines) + "\n"
