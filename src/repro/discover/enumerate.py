"""Convex, I/O-constrained subgraph enumeration over a kernel dataflow.

This is the classic instruction-set-extension identification step
(Atasu/Pozzi-style): a candidate custom instruction is a **connected,
convex** set of operation nodes whose register interface fits the ISAX
datapath — at most two register reads and one register write, mirroring
the two read ports / one write port the SCAIE-V interface exposes.

Interface accounting, per candidate set ``S``:

- constants fold into the instruction for free;
- a **load** inside ``S`` costs no register read: its address stream is
  promoted to an auto-incremented custom-state pointer (the AUTOINC
  pattern from the hand-written benchmark ISAXes);
- a loop **carry** (e.g. the accumulator) is promoted to custom state —
  free on both sides — iff its update node is in ``S`` and every reader
  of the carried value is in ``S`` (otherwise outside readers would need
  a register after all); promotion can be disabled to mine pure
  combinational candidates;
- every other externally produced value is a register read;
- every value consumed outside ``S`` (plus an unpromoted carry update)
  is a register write.

Legality filters: no stores (the workload kernels are reductions), at
most ``max_mem`` loads per candidate (the scoreboard serialises memory
transfers), and no intra-iteration control flow exists in the IR by
construction.

Candidates are deduplicated by a canonical Weisfeiler-Lehman-style
digest, so isomorphic subgraphs (e.g. the four identical lane MACs of
the audio kernel) are priced exactly once.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.discover.kernel import BINARY_OPS, Kernel, KNode, LEAF_OPS

#: operations whose operand order does not matter for isomorphism
_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor"})


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One legal candidate instruction mined from a kernel."""

    nodes: Tuple[int, ...]            # covered op-node ids, sorted
    inputs: Tuple[int, ...]           # external value node ids -> rs1/rs2
    output: Optional[int]             # node id written to rd (or None)
    carries: Tuple[str, ...]          # carry names promoted to custom state
    loads: Tuple[int, ...]            # load node ids inside the candidate
    digest: str                       # canonical (isomorphism-class) digest

    @property
    def size(self) -> int:
        return len(self.nodes)

    def label(self) -> str:
        return "c" + self.digest[:10]


class _Analysis:
    """Precomputed structure shared by every subset check."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.by_id = kernel.node_by_id
        self.users = kernel.users()
        self.op_ids = [n.id for n in kernel.op_nodes()]
        self.op_set = set(self.op_ids)
        # ancestors[v] = every node reachable walking operand edges from v
        self.ancestors: Dict[int, Set[int]] = {}
        for node in kernel.nodes:              # topological by construction
            anc: Set[int] = set()
            for operand in node.operands:
                anc.add(operand)
                anc |= self.ancestors[operand]
            self.ancestors[node.id] = anc
        self.descendants: Dict[int, Set[int]] = {n.id: set()
                                                 for n in kernel.nodes}
        for node in reversed(kernel.nodes):
            desc: Set[int] = set()
            for user in self.users[node.id]:
                desc.add(user)
                desc |= self.descendants[user]
            self.descendants[node.id] = desc
        # undirected adjacency restricted to op nodes (for connectivity)
        self.adjacent: Dict[int, Set[int]] = {i: set() for i in self.op_ids}
        for node in kernel.op_nodes():
            for operand in node.operands:
                if operand in self.op_set:
                    self.adjacent[node.id].add(operand)
                    self.adjacent[operand].add(node.id)
        self.carry_leaf: Dict[str, int] = {}
        for node in kernel.nodes:
            if node.op == "carry":
                self.carry_leaf[node.attr("name")] = node.id

    def is_convex(self, subset: FrozenSet[int]) -> bool:
        # S is convex iff no node outside S lies on a path between two
        # members: i.e. nobody outside has both an ancestor and a
        # descendant inside S.
        for node_id in self.op_set - subset:
            if (self.ancestors[node_id] & subset
                    and self.descendants[node_id] & subset):
                return False
        return True

    def is_connected(self, subset: FrozenSet[int]) -> bool:
        if not subset:
            return False
        seen = set()
        stack = [next(iter(subset))]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.adjacent[current] & subset - seen)
        return seen == subset


def classify_io(kernel: Kernel, subset: FrozenSet[int],
                analysis: Optional[_Analysis] = None,
                promote_state: bool = True):
    """Interface accounting for a subset; returns ``(inputs, outputs,
    promoted_carries, loads)`` with inputs/outputs as sorted node-id lists.
    """
    analysis = analysis or _Analysis(kernel)
    by_id = analysis.by_id
    promoted: List[str] = []
    if promote_state:
        for name, spec in kernel.carries.items():
            leaf = analysis.carry_leaf[name]
            readers = analysis.users[leaf]
            if spec.update in subset and all(r in subset for r in readers):
                promoted.append(name)
    promoted_leaves = {analysis.carry_leaf[name] for name in promoted}
    promoted_updates = {kernel.carries[name].update for name in promoted}

    inputs: List[int] = []
    for node_id in sorted(subset):
        for operand in by_id[node_id].operands:
            if operand in subset or operand in promoted_leaves:
                continue
            source = by_id[operand]
            if source.op == "const":
                continue
            if operand not in inputs:
                inputs.append(operand)

    outputs: List[int] = []
    carry_updates = {spec.update: name
                     for name, spec in kernel.carries.items()}
    for node_id in sorted(subset):
        externally_read = any(user not in subset
                              for user in analysis.users[node_id])
        # An unpromoted carry update has no in-graph user (the carry leaf
        # reads it next iteration) but must still land in a register.
        is_result = (node_id in carry_updates
                     and node_id not in promoted_updates)
        if externally_read or is_result:
            outputs.append(node_id)

    loads = [i for i in sorted(subset) if by_id[i].op == "load"]
    return sorted(inputs), outputs, sorted(promoted), loads


def canonical_digest(kernel: Kernel, subset: FrozenSet[int],
                     inputs: Sequence[int], promoted: Sequence[str]) -> str:
    """Structure-only digest: isomorphic candidates collide on purpose.

    Iterative WL hashing over the covered nodes; external inputs hash by
    arrival kind (register/carry/load-stream), not by node id, and
    commutative operators sort their operand hashes.
    """
    by_id = kernel.node_by_id
    promoted_leaves = {kernel.carries[name].update for name in promoted}

    def node_hash(node_id: int, memo: Dict[int, str]) -> str:
        if node_id in memo:
            return memo[node_id]
        node = by_id[node_id]
        if node_id not in subset:
            if node.op == "const":
                seed = f"const:{node.attr('value')}"
            elif node.op == "carry":
                seed = "state" if node.attr("name") in promoted else "reg"
            else:
                seed = "reg"
            memo[node_id] = hashlib.sha256(seed.encode()).hexdigest()
            return memo[node_id]
        parts = [node_hash(op, memo) for op in node.operands]
        if node.op in _COMMUTATIVE:
            parts.sort()
        # Positional constants ("lo" of an extract, a shift "amount") are
        # wiring, not datapath: lane 0 and lane 2 of a packed-SIMD MAC
        # cost the same and must dedup to one candidate.  Widths stay in
        # the digest — they change the datapath.
        attrs = [f"{k}={v}" for k, v in node.attrs
                 if k not in ("array", "name", "lo", "amount")]
        if node.op == "load":
            spec = kernel.arrays[node.attr("array")]
            attrs.append(f"stride={spec.stride}")
        if node.op == "table":
            table = kernel.tables[node.attr("table")]
            attrs.append("table=" + hashlib.sha256(
                bytes(table)).hexdigest()[:16])
        seed = node.op + "(" + ",".join(parts) + ";" + ",".join(attrs) + ")"
        memo[node_id] = hashlib.sha256(seed.encode()).hexdigest()
        return memo[node_id]

    memo: Dict[int, str] = {}
    promoted_mark = "+".join(sorted(promoted)) if promoted else ""
    roots = sorted(node_hash(i, memo) for i in subset)
    blob = ("|".join(roots) + "#" + promoted_mark).encode()
    # mark promoted carries: folding the accumulator changes the interface
    del promoted_leaves
    return hashlib.sha256(blob).hexdigest()


def enumerate_candidates(kernel: Kernel,
                         max_nodes: int = 32,
                         max_inputs: int = 2,
                         max_outputs: int = 1,
                         max_mem: int = 1,
                         promote_state: bool = True,
                         enum_budget: int = 4000) -> List[Candidate]:
    """Enumerate legal candidates, deduplicated by canonical digest.

    Grows connected subsets breadth-first from every op node; convexity
    and the register-interface constraints gate *emission*, not growth
    (a 3-input subset can become 2-input after absorbing a neighbour).
    ``enum_budget`` caps the number of distinct subsets visited so the
    walk stays bounded on adversarial graphs.
    """
    analysis = _Analysis(kernel)
    visited: Set[FrozenSet[int]] = set()
    # Bottom-up growth finds every small candidate; the near-total covers
    # (the headline material: fold the whole loop body into one
    # instruction) sit beyond any affordable breadth-first horizon, so
    # seed them directly: the full op set minus combinations of the
    # memory ops and carry updates.
    full = frozenset(analysis.op_ids)
    loads_all = frozenset(i for i in full
                          if analysis.by_id[i].op == "load")
    updates = frozenset(spec.update for spec in kernel.carries.values())
    macro_seeds = [full, full - loads_all, full - updates,
                   full - loads_all - updates]
    for load_id in sorted(loads_all):
        macro_seeds.append(full - {load_id})
        macro_seeds.append(full - {load_id} - updates)
    queue: List[FrozenSet[int]] = [s for s in macro_seeds if s]
    queue.extend(frozenset({i}) for i in analysis.op_ids)
    by_digest: Dict[str, Candidate] = {}

    while queue:
        subset = queue.pop(0)
        if subset in visited or len(visited) >= enum_budget:
            continue
        visited.add(subset)

        if len(subset) < max_nodes:
            frontier: Set[int] = set()
            for member in subset:
                frontier |= analysis.adjacent[member]
            for neighbour in sorted(frontier - subset):
                grown = subset | {neighbour}
                if grown not in visited:
                    queue.append(grown)

        if len(subset) > max_nodes:
            continue
        if not analysis.is_connected(subset):
            continue
        if not analysis.is_convex(subset):
            continue
        inputs, outputs, promoted, loads = classify_io(
            kernel, subset, analysis, promote_state=promote_state)
        if len(inputs) > max_inputs or len(outputs) > max_outputs:
            continue
        if len(loads) > max_mem:
            continue
        digest = canonical_digest(kernel, subset, inputs, promoted)
        if digest in by_digest:
            continue
        by_digest[digest] = Candidate(
            nodes=tuple(sorted(subset)),
            inputs=tuple(inputs),
            output=outputs[0] if outputs else None,
            carries=tuple(promoted),
            loads=tuple(loads),
            digest=digest,
        )

    # Deterministic, largest-coverage-first order: big candidates are the
    # interesting Pareto material and should survive any pricing budget.
    return sorted(by_digest.values(),
                  key=lambda c: (-c.size, c.digest))


def select_node(kernel: Kernel, candidate: Candidate) -> KNode:
    """The candidate's "root": deepest covered node (diagnostics only)."""
    by_id = kernel.node_by_id
    return by_id[max(candidate.nodes)]


def describe(kernel: Kernel, candidate: Candidate) -> str:
    """Human-readable one-liner, e.g. ``load+add [in=0 out=0 state=ACC]``."""
    by_id = kernel.node_by_id
    ops = "+".join(sorted({by_id[i].op for i in candidate.nodes}))
    state = ",".join(candidate.carries) or "-"
    out = "rd" if candidate.output is not None else "-"
    return (f"{ops} [nodes={candidate.size} in={len(candidate.inputs)} "
            f"out={out} state={state} mem={len(candidate.loads)}]")


def leaf_ops_of(kernel: Kernel) -> List[KNode]:
    return [n for n in kernel.nodes if n.op in LEAF_OPS]


__all__ = [
    "Candidate",
    "classify_io",
    "canonical_digest",
    "describe",
    "enumerate_candidates",
    "BINARY_OPS",
]
