"""Candidate graph -> CoreDSL backend.

Turns one mined :class:`~repro.discover.enumerate.Candidate` into a
self-contained CoreDSL ``InstructionSet`` on the custom-0 opcode
(``7'b0001011``), styled after the hand-written benchmark ISAXes in
:mod:`repro.isaxes.sources` so the emitted source is valid — and lint
clean — by construction:

- each covered load gets an auto-incremented ``ADDR<k>`` custom register
  plus a ``*_ld<k>`` setup instruction (the AUTOINC pattern);
- each promoted carry gets an ``ACC_<name>`` custom register, seeded
  from ``rs1`` by a ``*_st_<name>`` setup and read back by ``*_get``;
- the ``*_step`` instruction evaluates the covered dataflow once:
  locals in topological order, explicit ``(unsigned<32>)`` casts on
  every width-changing operation, ``MEM[ADDR+3:ADDR]`` word loads, and
  pointer bumps by the stream stride;
- with ``fold_loop`` a ``*_loop`` setup plus an always block replicate
  the ZOL redirect (PULP-style zero-overhead loop), so the rewritten
  kernel needs no counter or branch instructions at all.

Every instruction takes a distinct ``funct3`` (no encoding overlap,
LN010/LN011), encodes only the operand fields its behavior reads
(LN007), and avoids compound assignments in behaviors (LN001).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.discover.enumerate import Candidate
from repro.discover.kernel import BINARY_OPS, Kernel

OPCODE = "7'b0001011"


class EmitError(Exception):
    """Candidate cannot be expressed as a single ISAX instruction."""


@dataclasses.dataclass(frozen=True)
class SetupInfo:
    """One setup instruction and what its ``rs1`` must carry."""

    mnemonic: str
    kind: str               # "load" or "carry"
    target: str             # array name or carry name


@dataclasses.dataclass(frozen=True)
class EmittedISAX:
    """CoreDSL for one candidate plus the binding info codegen needs."""

    set_name: str
    prefix: str
    source: str
    setups: Tuple[SetupInfo, ...]
    step: str                           # step-instruction mnemonic
    step_inputs: Tuple[int, ...]        # node ids bound to rs1[, rs2]
    step_output: Optional[int]          # node id written to rd (or None)
    get: Optional[str]                  # accumulator readout mnemonic
    loop: Optional[str]                 # zero-overhead-loop setup mnemonic
    fold_loop: bool


def _encoding(funct3: int, *, rs1: bool, rs2: bool, rd: bool,
              imm: bool = False) -> str:
    """An R/I-shaped encoding holding exactly the fields the behavior
    uses; absent fields become zero literals of the same width."""
    f3 = f"3'b{funct3:03b}"
    if imm:
        return f"uimmL[11:0] :: uimmS[4:0] :: {f3} :: 5'b00000 :: {OPCODE}"
    rd_bits = "rd[4:0]" if rd else "5'd0"
    if rs2:
        rs1_bits = "rs1[4:0]" if rs1 else "5'd0"
        return (f"7'd0 :: rs2[4:0] :: {rs1_bits} :: {f3} "
                f":: {rd_bits} :: {OPCODE}")
    if rs1:
        return f"12'd0 :: rs1[4:0] :: {f3} :: {rd_bits} :: {OPCODE}"
    return f"12'd0 :: 5'd0 :: {f3} :: {rd_bits} :: {OPCODE}"


def _emit_node_expr(kernel: Kernel, node_id: int,
                    value_of: Dict[int, str]) -> Tuple[str, List[str]]:
    """Expression (and any helper lines) computing one covered node into
    an ``unsigned<32>`` local.  All semantics match
    :func:`repro.discover.kernel.eval_node` bit for bit."""
    node = kernel.node_by_id[node_id]
    op = node.op
    operands = [value_of[i] for i in node.operands]
    if op in BINARY_OPS:
        a, b = operands
        symbol = {"add": "+", "sub": "-", "mul": "*",
                  "and": "&", "or": "|", "xor": "^"}[op]
        if op in ("and", "or", "xor"):
            return f"{a} {symbol} {b}", []
        return f"(unsigned<32>) ({a} {symbol} {b})", []
    if op == "shl":
        return f"(unsigned<32>) ({operands[0]} << {node.attr('amount')})", []
    if op == "shru":
        return f"{operands[0]} >> {node.attr('amount')}", []
    if op == "shrs":
        amount = node.attr("amount")
        return (f"(unsigned<32>) (((signed) {operands[0]}) >> {amount})",
                [])
    if op == "extract":
        lo = node.attr("lo")
        width = node.attr("width")
        if lo == 0 and width == 32:
            return operands[0], []
        return f"(unsigned<32>) {operands[0]}[{lo + width - 1}:{lo}]", []
    if op == "sext":
        width = node.attr("width")
        if width == 32:
            return operands[0], []
        # two certainly-supported steps: reinterpret the low bits as
        # signed<w>, then widen with sign extension via a signed local.
        helper = (f"signed<32> s{node_id} = "
                  f"(signed) {operands[0]}[{width - 1}:0];")
        return f"(unsigned) s{node_id}", [helper]
    if op == "table":
        table = kernel.tables[node.attr("table")]
        bits = max(1, (len(table) - 1).bit_length())
        return (f"(unsigned<32>) TBL_{node.attr('table')}"
                f"[{operands[0]}[{bits - 1}:0]]"), []
    raise EmitError(f"op {op!r} has no CoreDSL emission")


def emit_candidate(kernel: Kernel, candidate: Candidate,
                   fold_loop: bool = False,
                   prefix: Optional[str] = None) -> EmittedISAX:
    """Emit a complete CoreDSL instruction set for one candidate."""
    by_id = kernel.node_by_id
    prefix = prefix or ("m" + candidate.digest[:6])
    subset = set(candidate.nodes)

    if candidate.output is None and not candidate.carries:
        raise EmitError("candidate has no architecturally visible effect")
    if len(candidate.inputs) > 2:
        raise EmitError("more than two register inputs")

    # ---- architectural state ---------------------------------------------
    state_lines: List[str] = []
    load_addr: Dict[int, str] = {}
    for index, load_id in enumerate(candidate.loads):
        load_addr[load_id] = f"ADDR{index}"
        state_lines.append(f"    register unsigned<32> ADDR{index};")
    carry_state: Dict[str, str] = {}
    for name in candidate.carries:
        carry_state[name] = f"ACC_{name}"
        state_lines.append(f"    register unsigned<32> ACC_{name};")
    tables_used = sorted({by_id[i].attr("table") for i in subset
                          if by_id[i].op == "table"})
    for table_name in tables_used:
        values = kernel.tables[table_name]
        rows = []
        for start in range(0, len(values), 12):
            chunk = ", ".join(f"0x{v:02x}"
                              for v in values[start:start + 12])
            rows.append("      " + chunk)
        state_lines.append(
            f"    const unsigned<8> TBL_{table_name}[{len(values)}] = {{\n"
            + ",\n".join(rows) + "\n    };")
    if fold_loop:
        state_lines.append(
            "    register unsigned<32> LSTART, LEND, LCOUNT;")

    # ---- instructions -----------------------------------------------------
    instructions: List[str] = []
    funct3 = 0

    def add_instruction(mnemonic: str, encoding: str,
                        body: List[str]) -> None:
        lines = [f"    {mnemonic} {{",
                 f"      encoding: {encoding};",
                 "      behavior: {"]
        lines += [f"        {line}" for line in body]
        lines += ["      }", "    }"]
        instructions.append("\n".join(lines))

    setups: List[SetupInfo] = []
    for index, load_id in enumerate(candidate.loads):
        mnemonic = f"{prefix}_ld{index}"
        add_instruction(
            mnemonic,
            _encoding(funct3, rs1=True, rs2=False, rd=False),
            [f"{load_addr[load_id]} = X[rs1];"])
        setups.append(SetupInfo(mnemonic=mnemonic, kind="load",
                                target=by_id[load_id].attr("array")))
        funct3 += 1
    for name in candidate.carries:
        mnemonic = f"{prefix}_st_{name.lower()}"
        add_instruction(
            mnemonic,
            _encoding(funct3, rs1=True, rs2=False, rd=False),
            [f"{carry_state[name]} = X[rs1];"])
        setups.append(SetupInfo(mnemonic=mnemonic, kind="carry",
                                target=name))
        funct3 += 1

    # the step instruction: one full evaluation of the covered dataflow
    value_of: Dict[int, str] = {}
    body: List[str] = []
    for position, input_id in enumerate(candidate.inputs):
        field = "rs1" if position == 0 else "rs2"
        body.append(f"unsigned<32> v{input_id} = X[{field}];")
        value_of[input_id] = f"v{input_id}"

    def external_value(node_id: int) -> str:
        node = by_id[node_id]
        if node.op == "const":
            return f"v{node_id}"
        if node.op == "carry":
            return carry_state[node.attr("name")]
        raise EmitError(
            f"node {node_id} ({node.op}) reaches the step instruction "
            f"without an input binding")

    for node_id in candidate.nodes:            # ids are topological
        node = by_id[node_id]
        for operand in node.operands:
            if operand in value_of or operand in subset:
                continue
            source = by_id[operand]
            if source.op == "const":
                body.append(f"unsigned<32> v{operand} = "
                            f"0x{source.attr('value'):x};")
                value_of[operand] = f"v{operand}"
            else:
                value_of[operand] = external_value(operand)
        if node.op == "load":
            addr = load_addr[node_id]
            body.append(f"unsigned<32> v{node_id} = "
                        f"MEM[{addr}+3:{addr}];")
        else:
            expr, helpers = _emit_node_expr(kernel, node_id, value_of)
            body.extend(helpers)
            body.append(f"unsigned<32> v{node_id} = {expr};")
        value_of[node_id] = f"v{node_id}"

    for name in candidate.carries:
        update = kernel.carries[name].update
        body.append(f"{carry_state[name]} = {value_of[update]};")
    for load_id in candidate.loads:
        spec = kernel.arrays[by_id[load_id].attr("array")]
        addr = load_addr[load_id]
        body.append(f"{addr} = (unsigned<32>) ({addr} + {spec.stride});")
    if candidate.output is not None:
        body.append(f"X[rd] = {value_of[candidate.output]};")

    step = f"{prefix}_step"
    add_instruction(
        step,
        _encoding(funct3,
                  rs1=len(candidate.inputs) >= 1,
                  rs2=len(candidate.inputs) >= 2,
                  rd=candidate.output is not None),
        body)
    funct3 += 1

    # accumulator readout (only needed when the result carry is promoted)
    get: Optional[str] = None
    if kernel.result in candidate.carries:
        get = f"{prefix}_get"
        add_instruction(
            get,
            _encoding(funct3, rs1=False, rs2=False, rd=True),
            [f"X[rd] = {carry_state[kernel.result]};"])
        funct3 += 1

    loop: Optional[str] = None
    always_block = ""
    if fold_loop:
        loop = f"{prefix}_loop"
        add_instruction(
            loop,
            _encoding(funct3, rs1=False, rs2=False, rd=False, imm=True),
            ["LSTART = (unsigned<32>) (PC + 4);",
             "LEND = (unsigned<32>) (PC + (uimmS :: 1'b0));",
             "LCOUNT = uimmL;"])
        funct3 += 1
        always_block = "\n".join([
            "  always {",
            f"    {prefix}_zol {{",
            "      if (LCOUNT != 0 && LEND == PC) {",
            "        PC = LSTART;",
            "        --LCOUNT;",
            "      }",
            "    }",
            "  }",
        ])

    if funct3 > 8:
        raise EmitError(
            f"candidate needs {funct3} instructions; funct3 holds 8")

    set_name = f"disc_{prefix}"
    parts = [f'import "RV32I.core_desc"',
             "",
             f"// Auto-discovered from kernel {kernel.name!r}: "
             f"{len(candidate.nodes)} covered ops, digest "
             f"{candidate.digest[:12]}.",
             f"InstructionSet {set_name} extends RV32I {{"]
    if state_lines:
        parts.append("  architectural_state {")
        parts.extend(state_lines)
        parts.append("  }")
    parts.append("  instructions {")
    parts.append("\n".join(instructions))
    parts.append("  }")
    if always_block:
        parts.append(always_block)
    parts.append("}")

    return EmittedISAX(
        set_name=set_name,
        prefix=prefix,
        source="\n".join(parts) + "\n",
        setups=tuple(setups),
        step=step,
        step_inputs=tuple(candidate.inputs),
        step_output=candidate.output,
        get=get,
        loop=loop,
        fold_loop=fold_loop,
    )
