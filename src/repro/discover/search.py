"""Discovery orchestration: enumerate -> price -> Pareto -> report.

:func:`discover` is the one entry point behind the ``repro-longnail
discover`` CLI subcommand, the server's ``POST /v1/discover`` task and
the ``benchmarks/bench_discovery.py`` artifact: it enumerates candidate
instructions from a registered kernel, prices every (candidate,
fold-variant) through the real toolchain via the service executor (or a
compile server), keeps the verified survivors, and selects the Pareto
front on *measured speedup vs. silicon area* — the same two axes the
paper's Section 7 outlook names for automated design-space exploration.

The winner (highest speedup; area breaks ties) is written to disk as a
ready-to-use ``.core_desc`` next to the JSON report.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.discover.enumerate import enumerate_candidates
from repro.discover.kernel import resolve_kernel
from repro.discover.pricing import PricingRequest, price_candidates
from repro.service.cache import ArtifactCache
from repro.service.executor import BatchExecutor


@dataclasses.dataclass
class DiscoveryConfig:
    """Everything one discovery search needs (JSON-able end to end)."""

    kernel: str
    params: Dict[str, int] = dataclasses.field(default_factory=dict)
    core: str = "VexRiscv"
    opt: int = 2
    trials: int = 5
    seed: int = 0
    max_nodes: int = 32
    max_inputs: int = 2
    max_outputs: int = 1
    max_mem: int = 1
    promote_state: bool = True
    try_fold: bool = True
    budget: int = 24                    # max priced variants
    enum_budget: int = 4000
    workers: int = 1
    cache_dir: Optional[str] = None
    server_url: Optional[str] = None
    priority: str = "batch"

    def to_payload(self) -> dict:
        payload = dataclasses.asdict(self)
        # a search running *on* a server must not recurse into another
        payload.pop("server_url", None)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "DiscoveryConfig":
        if "kernel" not in payload:
            raise ValueError("discover payload needs a 'kernel' name")
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items()
                  if k in known and k != "server_url"}
        params = kwargs.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("'params' must be an object")
        kwargs["params"] = {str(k): int(v) for k, v in params.items()}
        return cls(**kwargs)


def dominates(a: dict, b: dict) -> bool:
    """Pareto dominance on (speedup up, area down)."""
    no_worse = (a["speedup"] >= b["speedup"]
                and a["area_um2"] <= b["area_um2"])
    better = (a["speedup"] > b["speedup"]
              or a["area_um2"] < b["area_um2"])
    return no_worse and better


def pareto_front(records: Sequence[dict]) -> List[dict]:
    """Non-dominated verified records, fastest first."""
    priced = [r for r in records if r.get("ok") and "speedup" in r]
    front = [r for r in priced
             if not any(dominates(q, r) for q in priced if q is not r)]
    return sorted(front, key=lambda r: (-r["speedup"], r["area_um2"]))


@dataclasses.dataclass
class DiscoveryReport:
    """Outcome of one :func:`discover` run."""

    config: DiscoveryConfig
    kernel_fingerprint: str
    candidates_enumerated: int
    variants_priced: int
    records: List[dict]
    pareto: List[dict]
    winner: Optional[dict]
    pricing_stats: dict
    elapsed_s: float

    @property
    def verified(self) -> List[dict]:
        return [r for r in self.records if r.get("ok")]

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_payload(),
            "kernel_fingerprint": self.kernel_fingerprint,
            "candidates_enumerated": self.candidates_enumerated,
            "variants_priced": self.variants_priced,
            "records": self.records,
            "pareto": self.pareto,
            "winner": self.winner,
            "pricing_stats": self.pricing_stats,
            "elapsed_s": self.elapsed_s,
        }


def discover(config: DiscoveryConfig,
             executor: Optional[BatchExecutor] = None) -> DiscoveryReport:
    """Run one full discovery search."""
    import time

    start = time.perf_counter()
    kernel = resolve_kernel(config.kernel, **config.params)
    candidates = enumerate_candidates(
        kernel,
        max_nodes=config.max_nodes,
        max_inputs=config.max_inputs,
        max_outputs=config.max_outputs,
        max_mem=config.max_mem,
        promote_state=config.promote_state,
        enum_budget=config.enum_budget,
    )

    requests: List[PricingRequest] = []
    for candidate in candidates:
        folds: Tuple[bool, ...] = (True, False) if config.try_fold else (
            False,)
        for fold in folds:
            requests.append(PricingRequest(
                kernel=config.kernel,
                params=config.params,
                candidate=candidate,
                fold=fold,
                core=config.core,
                opt=config.opt,
                trials=config.trials,
                seed=config.seed,
            ))
    requests = requests[:max(0, config.budget)]

    if executor is None and config.server_url is None:
        cache = (ArtifactCache(pathlib.Path(config.cache_dir))
                 if config.cache_dir else None)
        executor = BatchExecutor(workers=config.workers, cache=cache)

    records, stats = price_candidates(
        requests,
        kernel.fingerprint(),
        executor=executor if config.server_url is None else None,
        server_url=config.server_url,
        priority=config.priority,
    )

    front = pareto_front(records)
    winner = front[0] if front else None
    return DiscoveryReport(
        config=config,
        kernel_fingerprint=kernel.fingerprint(),
        candidates_enumerated=len(candidates),
        variants_priced=len(requests),
        records=records,
        pareto=front,
        winner=winner,
        pricing_stats=stats,
        elapsed_s=time.perf_counter() - start,
    )


def write_report(report: DiscoveryReport,
                 out_dir: pathlib.Path) -> Dict[str, pathlib.Path]:
    """Persist the JSON report and the winning CoreDSL; returns paths."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: Dict[str, pathlib.Path] = {}

    report_path = out_dir / f"discover_{report.config.kernel}.json"
    report_path.write_text(json.dumps(report.to_dict(), indent=2,
                                      sort_keys=True))
    paths["report"] = report_path

    if report.winner is not None and report.winner.get("source"):
        winner_path = out_dir / f"{report.config.kernel}_winner.core_desc"
        winner_path.write_text(report.winner["source"])
        paths["winner"] = winner_path
    return paths


def render_report(report: DiscoveryReport) -> str:
    """Human-readable ranking table for the CLI."""
    lines = [
        f"# discover {report.config.kernel} on {report.config.core}: "
        f"{report.candidates_enumerated} candidates, "
        f"{report.variants_priced} variants priced, "
        f"{len(report.verified)} verified, "
        f"{len(report.pareto)} on the Pareto front "
        f"({report.elapsed_s:.1f}s)",
        f"{'label':<24} {'ops':<14} {'speedup':>8} {'area um2':>9} "
        f"{'cycles':>7} {'mkspan':>6} {'pareto':>7}",
    ]
    chosen = {r["digest"] + str(r["fold"]) for r in report.pareto}
    ranked = sorted(report.verified,
                    key=lambda r: -r.get("speedup", 0.0))
    for record in ranked:
        ops = record.get("ops", "")
        ops_short = ops.split(" ")[0][:14]
        mark = "*" if record["digest"] + str(record["fold"]) in chosen \
            else ""
        lines.append(
            f"{record['label']:<24} {ops_short:<14} "
            f"{record.get('speedup', 0.0):>8.2f} "
            f"{record.get('area_um2', 0.0):>9.0f} "
            f"{record.get('cycles', 0):>7} "
            f"{record.get('makespan', 0):>6} {mark:>7}")
    failed = [r for r in report.records if not r.get("ok")]
    if failed:
        lines.append(f"# {len(failed)} variants rejected: " + ", ".join(
            sorted({str(r.get('failed_gate')) for r in failed})))
    stats = report.pricing_stats
    lines.append(
        f"# pricing: {stats.get('executed', 0)} executed, "
        f"{stats.get('cached', 0)} from cache, "
        f"{stats.get('failed', 0)} failed")
    return "\n".join(lines)
