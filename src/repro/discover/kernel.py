"""The kernel IR of the ISAX-discovery subsystem.

A :class:`Kernel` is the per-iteration dataflow of one counted loop over
32-bit values — the shape of the Section 5.5 array-sum and Section 5.6
audio-ML workloads (:mod:`repro.workloads` registers both as reusable
fixtures).  It is deliberately tiny: straight-line SSA, no intra-iteration
control flow, loads from affine streams, loop-carried scalars ("carries",
e.g. an accumulator) and constant lookup tables.  Everything downstream —
candidate enumeration (:mod:`repro.discover.enumerate`), CoreDSL emission
(:mod:`repro.discover.emit`) and RV32 code generation
(:mod:`repro.discover.codegen`) — consumes this one representation.

Node operations (all values are 32-bit unless stated):

========  ===========================================================
op        semantics
========  ===========================================================
const     literal (attr ``value``)
input     loop-invariant register input (attr ``name``, ``value``)
carry     previous-iteration value of a loop-carried scalar (``name``)
load      word from stream ``array`` at ``base + offset + i*stride``
add/sub   wrapping 32-bit arithmetic
mul       wrapping 32-bit product
and/or/xor  bitwise
shl/shru/shrs  shift by constant (attr ``amount``); ``shrs`` arithmetic
extract   bit-field ``[lo+width-1 : lo]`` (attrs ``lo``, ``width``)
sext      sign-extend from ``width`` bits to 32
table     byte lookup in constant table ``table`` (index masked to size)
========  ===========================================================

Kernels are registered by name (:func:`register_kernel`) so pricing
workers can rebuild them from a JSON payload; :func:`resolve_kernel`
imports :mod:`repro.workloads` on first use to pick up the built-in
fixtures.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.utils.diagnostics import CoreDSLError

MASK32 = 0xFFFFFFFF

#: Binary operations (two value operands).
BINARY_OPS = ("add", "sub", "mul", "and", "or", "xor")

#: Shift operations (one value operand + constant ``amount`` attr).
SHIFT_OPS = ("shl", "shru", "shrs")

#: Leaf node kinds — never part of a mined candidate themselves.
LEAF_OPS = ("const", "input", "carry")

#: Every operation kind the IR accepts.
ALL_OPS = LEAF_OPS + BINARY_OPS + SHIFT_OPS + ("load", "extract", "sext",
                                               "table")


class KernelError(CoreDSLError):
    """Malformed kernel description (or an unknown registry name).

    A :class:`repro.utils.diagnostics.CoreDSLError` subclass so the CLI's
    one error path renders it like every other flow error."""


@dataclasses.dataclass(frozen=True)
class KNode:
    """One SSA value of the per-iteration dataflow."""

    id: int
    op: str
    operands: Tuple[int, ...] = ()
    attrs: Tuple[Tuple[str, object], ...] = ()

    def attr(self, name: str, default=None):
        for key, value in self.attrs:
            if key == name:
                return value
        return default


@dataclasses.dataclass(frozen=True)
class ArraySpec:
    """One affine load/store stream: word at ``base + offset + i*stride``."""

    name: str
    base: int
    stride: int = 4
    offset: int = 0
    data: Tuple[int, ...] = ()


@dataclasses.dataclass(frozen=True)
class CarrySpec:
    """A loop-carried 32-bit scalar (accumulator-style)."""

    name: str
    init: int
    update: int                 # node id producing the next-iteration value


@dataclasses.dataclass
class Kernel:
    """A counted loop: per-iteration dataflow + streams + carried state."""

    name: str
    nodes: List[KNode]
    arrays: Dict[str, ArraySpec]
    carries: Dict[str, CarrySpec]
    tables: Dict[str, Tuple[int, ...]]
    result: str                                 # carry holding the result
    trip_count: int
    params: Dict[str, int] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        ids = set()
        for node in self.nodes:
            if node.op not in ALL_OPS:
                raise KernelError(f"unknown op {node.op!r}")
            if node.id in ids:
                raise KernelError(f"duplicate node id {node.id}")
            for operand in node.operands:
                if operand not in ids:
                    raise KernelError(
                        f"node {node.id} ({node.op}) uses undefined or "
                        f"forward operand {operand}")
            ids.add(node.id)
            if node.op == "load" and node.attr("array") not in self.arrays:
                raise KernelError(f"load {node.id} names unknown array")
            if node.op == "table" and node.attr("table") not in self.tables:
                raise KernelError(f"table {node.id} names unknown table")
        if self.result not in self.carries:
            raise KernelError(f"result carry {self.result!r} undefined")
        for carry in self.carries.values():
            if carry.update not in ids:
                raise KernelError(
                    f"carry {carry.name!r} update node {carry.update} "
                    f"undefined")
        if self.trip_count < 1:
            raise KernelError("trip_count must be >= 1")

    # ----------------------------------------------------------- conveniences
    @property
    def node_by_id(self) -> Dict[int, KNode]:
        return {node.id: node for node in self.nodes}

    def op_nodes(self) -> List[KNode]:
        """The non-leaf nodes — the material a candidate can cover."""
        return [n for n in self.nodes if n.op not in LEAF_OPS]

    def users(self) -> Dict[int, List[int]]:
        """node id -> ids of nodes consuming its value."""
        consumers: Dict[int, List[int]] = {n.id: [] for n in self.nodes}
        for node in self.nodes:
            for operand in node.operands:
                consumers[operand].append(node.id)
        return consumers

    def fingerprint(self) -> str:
        """Stable content digest over the whole kernel instance."""
        doc = {
            "name": self.name,
            "nodes": [[n.id, n.op, list(n.operands),
                       [[k, v] for k, v in n.attrs]] for n in self.nodes],
            "arrays": {k: [a.base, a.stride, a.offset, list(a.data)]
                       for k, a in sorted(self.arrays.items())},
            "carries": {k: [c.init, c.update]
                        for k, c in sorted(self.carries.items())},
            "tables": {k: list(v) for k, v in sorted(self.tables.items())},
            "result": self.result,
            "trip": self.trip_count,
            "params": dict(sorted(self.params.items())),
        }
        blob = json.dumps(doc, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


class KernelBuilder:
    """Fluent construction of a :class:`Kernel` (ids handed out in order,
    so the node list is topologically sorted by construction)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: List[KNode] = []
        self._arrays: Dict[str, ArraySpec] = {}
        self._carries: Dict[str, Tuple[int, Optional[int]]] = {}
        self._tables: Dict[str, Tuple[int, ...]] = {}
        self._result: Optional[str] = None
        self._params: Dict[str, int] = {}

    # -- declarations -------------------------------------------------------
    def array(self, name: str, base: int, data: Sequence[int],
              stride: int = 4, offset: int = 0) -> None:
        self._arrays[name] = ArraySpec(
            name=name, base=base, stride=stride, offset=offset,
            data=tuple(value & MASK32 for value in data))

    def table(self, name: str, values: Sequence[int]) -> None:
        if len(values) & (len(values) - 1):
            raise KernelError("table size must be a power of two")
        self._tables[name] = tuple(v & 0xFF for v in values)

    def carry(self, name: str, init: int = 0) -> int:
        """Declare a loop-carried scalar; returns the carry-in leaf node."""
        if name in self._carries:
            raise KernelError(f"carry {name!r} already declared")
        node = self._emit("carry", attrs=(("name", name),))
        self._carries[name] = (init & MASK32, None)
        self._carry_leaves = getattr(self, "_carry_leaves", {})
        self._carry_leaves[name] = node
        return node

    def set_carry(self, name: str, update: int) -> None:
        init, _old = self._carries[name]
        self._carries[name] = (init, update)

    def param(self, name: str, value: int) -> None:
        self._params[name] = int(value)

    def result(self, carry_name: str) -> None:
        self._result = carry_name

    # -- values -------------------------------------------------------------
    def _emit(self, op: str, operands: Tuple[int, ...] = (),
              attrs: Tuple[Tuple[str, object], ...] = ()) -> int:
        node = KNode(id=len(self._nodes), op=op, operands=operands,
                     attrs=attrs)
        self._nodes.append(node)
        return node.id

    def const(self, value: int) -> int:
        return self._emit("const", attrs=(("value", value & MASK32),))

    def input(self, name: str, value: int) -> int:
        return self._emit("input", attrs=(("name", name),
                                          ("value", value & MASK32)))

    def load(self, array: str) -> int:
        return self._emit("load", attrs=(("array", array),))

    def binary(self, op: str, a: int, b: int) -> int:
        if op not in BINARY_OPS:
            raise KernelError(f"not a binary op: {op!r}")
        return self._emit(op, operands=(a, b))

    def add(self, a: int, b: int) -> int:
        return self.binary("add", a, b)

    def sub(self, a: int, b: int) -> int:
        return self.binary("sub", a, b)

    def mul(self, a: int, b: int) -> int:
        return self.binary("mul", a, b)

    def shift(self, op: str, a: int, amount: int) -> int:
        if op not in SHIFT_OPS:
            raise KernelError(f"not a shift op: {op!r}")
        if not 0 <= amount < 32:
            raise KernelError("shift amount must be in [0, 32)")
        return self._emit(op, operands=(a,), attrs=(("amount", amount),))

    def extract(self, a: int, lo: int, width: int) -> int:
        if lo < 0 or width < 1 or lo + width > 32:
            raise KernelError("extract range out of bounds")
        return self._emit("extract", operands=(a,),
                          attrs=(("lo", lo), ("width", width)))

    def sext(self, a: int, width: int) -> int:
        if not 1 <= width <= 32:
            raise KernelError("sext width out of bounds")
        return self._emit("sext", operands=(a,), attrs=(("width", width),))

    def lookup(self, table: str, index: int) -> int:
        return self._emit("table", operands=(index,),
                          attrs=(("table", table),))

    # -- finalize -----------------------------------------------------------
    def build(self, trip_count: int) -> Kernel:
        carries = {}
        for name, (init, update) in self._carries.items():
            if update is None:
                raise KernelError(f"carry {name!r} never updated")
            carries[name] = CarrySpec(name=name, init=init, update=update)
        if self._result is None:
            raise KernelError("kernel has no result carry")
        kernel = Kernel(
            name=self.name,
            nodes=list(self._nodes),
            arrays=dict(self._arrays),
            carries=carries,
            tables=dict(self._tables),
            result=self._result,
            trip_count=trip_count,
            params=dict(self._params),
        )
        kernel.validate()
        return kernel


# ---------------------------------------------------------------------------
# Reference evaluation
# ---------------------------------------------------------------------------

def _signed(value: int, width: int = 32) -> int:
    value &= (1 << width) - 1
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def eval_node(node: KNode, values: Dict[int, int], kernel: Kernel,
              iteration: int, carry_values: Dict[str, int]) -> int:
    """Evaluate one node for one iteration (pure 32-bit semantics)."""
    op = node.op
    if op == "const":
        return node.attr("value") & MASK32
    if op == "input":
        return node.attr("value") & MASK32
    if op == "carry":
        return carry_values[node.attr("name")] & MASK32
    if op == "load":
        spec = kernel.arrays[node.attr("array")]
        index = (spec.offset + iteration * spec.stride) // 4
        if not 0 <= index < len(spec.data):
            raise KernelError(
                f"load {node.id} out of range: iteration {iteration} "
                f"reads word {index} of {len(spec.data)}")
        return spec.data[index] & MASK32
    a = values[node.operands[0]] if node.operands else 0
    if op in BINARY_OPS:
        b = values[node.operands[1]]
        if op == "add":
            return (a + b) & MASK32
        if op == "sub":
            return (a - b) & MASK32
        if op == "mul":
            return (a * b) & MASK32
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        return a ^ b
    if op == "shl":
        return (a << node.attr("amount")) & MASK32
    if op == "shru":
        return (a & MASK32) >> node.attr("amount")
    if op == "shrs":
        return (_signed(a) >> node.attr("amount")) & MASK32
    if op == "extract":
        return (a >> node.attr("lo")) & ((1 << node.attr("width")) - 1)
    if op == "sext":
        return _signed(a, node.attr("width")) & MASK32
    if op == "table":
        table = kernel.tables[node.attr("table")]
        return table[a & (len(table) - 1)]
    raise KernelError(f"cannot evaluate op {op!r}")


def run_reference(kernel: Kernel,
                  trip_count: Optional[int] = None) -> int:
    """Execute the kernel loop in pure Python; returns the result carry."""
    trips = kernel.trip_count if trip_count is None else trip_count
    carry_values = {name: spec.init & MASK32
                    for name, spec in kernel.carries.items()}
    for iteration in range(trips):
        values: Dict[int, int] = {}
        for node in kernel.nodes:
            values[node.id] = eval_node(node, values, kernel, iteration,
                                        carry_values)
        for name, spec in kernel.carries.items():
            carry_values[name] = values[spec.update]
    return carry_values[kernel.result] & MASK32


# ---------------------------------------------------------------------------
# Kernel registry (workers rebuild kernels from names + params)
# ---------------------------------------------------------------------------

KernelFactory = Callable[..., Kernel]

_KERNEL_FACTORIES: Dict[str, KernelFactory] = {}


def register_kernel(name: str):
    """Decorator registering a kernel factory under ``name``.

    Factories accept keyword parameters (e.g. ``n=64``) and return a fully
    populated :class:`Kernel` — data arrays included — so a pricing worker
    can rebuild the exact kernel from ``{"kernel": name, "params": {...}}``.
    """
    def wrap(factory: KernelFactory) -> KernelFactory:
        _KERNEL_FACTORIES[name] = factory
        return factory
    return wrap


def kernel_names() -> List[str]:
    _load_builtin_kernels()
    return sorted(_KERNEL_FACTORIES)


def resolve_kernel(name: str, **params) -> Kernel:
    """Build a registered kernel; imports the workload fixtures lazily."""
    _load_builtin_kernels()
    if name not in _KERNEL_FACTORIES:
        raise KernelError(
            f"unknown kernel {name!r}; available: "
            + ", ".join(sorted(_KERNEL_FACTORIES)))
    return _KERNEL_FACTORIES[name](**params)


def _load_builtin_kernels() -> None:
    # The workload module registers "array_sum" and "audio_ml" on import;
    # the random kernel family registers here.
    import repro.workloads  # noqa: F401  (side effect: registration)


# ---------------------------------------------------------------------------
# Seeded random kernels (fuzz-oracle material)
# ---------------------------------------------------------------------------

@register_kernel("random")
def random_kernel(seed: int = 0, size: int = 5, n: int = 8) -> Kernel:
    """A seeded random — but always well-formed — reduction kernel.

    The shape mirrors the real workloads: one loaded stream, up to two
    register inputs, ``size`` random compute nodes, and an accumulator
    carry summing the last value.  Used by the ``discover`` fuzz oracle:
    every candidate mined from any seed must compile, lint clean and pass
    the verification stack.
    """
    rng = random.Random(int(seed))
    build = KernelBuilder(f"random{seed}")
    data = [rng.getrandbits(32) for _ in range(n)]
    build.param("seed", int(seed))
    build.param("size", int(size))
    build.param("n", int(n))
    build.array("A", base=0x1000, data=data)
    acc_in = build.carry("ACC", init=0)
    pool: List[int] = [build.load("A")]
    pool.append(build.input("K0", rng.getrandbits(32)))
    if rng.random() < 0.5:
        pool.append(build.input("K1", rng.getrandbits(32)))
    consumed: set = set()
    for _ in range(max(1, int(size))):
        kind = rng.choice(("binary", "shift", "extract_sext"))
        if kind == "binary":
            op = rng.choice(BINARY_OPS)
            a, b = rng.choice(pool), rng.choice(pool)
            consumed.update((a, b))
            pool.append(build.binary(op, a, b))
        elif kind == "shift":
            op = rng.choice(SHIFT_OPS)
            source = rng.choice(pool)
            consumed.add(source)
            pool.append(build.shift(op, source, rng.randrange(1, 31)))
        else:
            lo = rng.choice((0, 8, 16, 24))
            source = rng.choice(pool)
            consumed.add(source)
            value = build.extract(source, lo, 8)
            consumed.add(value)
            pool.append(build.sext(value, 8))
    # Fold every value nothing consumed into the reduction, so the graph
    # has no dead nodes: a candidate covering only dead compute would
    # have no architectural effect and is not worth mining.
    sinks = [v for v in pool if v not in consumed]
    value = sinks[0]
    for other in sinks[1:]:
        value = build.binary("xor", value, other)
    update = build.add(acc_in, value)
    build.set_carry("ACC", update)
    build.result("ACC")
    return build.build(trip_count=int(n))
