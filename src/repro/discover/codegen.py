"""Kernel -> RV32 assembly, baseline and candidate-rewritten.

The baseline program is what a decent compiler would emit for the kernel
loop (mirroring the hand-written baselines in :mod:`repro.workloads`):
word loads through per-stream pointers, shift-based field extraction,
RV32M multiplies, and software loop control.  The candidate program
replaces the covered subgraph with the mined instruction(s) emitted by
:mod:`repro.discover.emit` — setup instructions before the loop, the
``*_step`` instruction at the covered position, and (with ``fold_loop``)
the generated zero-overhead-loop setup instead of the counter/branch
pair, so measured cycle savings come from the same
:class:`~repro.sim.riscv.core_model.CoreTimingModel` used everywhere
else in the repo.

Both programs leave the kernel result in ``a0`` and terminate with
``ecall``; :func:`run_program` loads the stream/table data segments and
returns the timing report plus the architectural result.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.discover.emit import EmittedISAX
from repro.discover.enumerate import Candidate
from repro.discover.kernel import BINARY_OPS, Kernel, KNode

#: where codegen places constant lookup tables (above the stream bases
#: used by the built-in kernels).
TABLE_REGION = 0x7000

_BIN_MNEMONIC = {"add": "add", "sub": "sub", "mul": "mul",
                 "and": "and", "or": "or", "xor": "xor"}
_SHIFT_MNEMONIC = {"shl": "slli", "shru": "srli", "shrs": "srai"}


class CodegenError(Exception):
    """Kernel does not fit the simple code generator."""


@dataclasses.dataclass(frozen=True)
class Program:
    """Assembled-ready program text plus its data segments."""

    text: str
    data: Tuple[Tuple[int, Tuple[int, ...]], ...]
    loop_body_words: int                 # instruction words inside the loop


class _Registers:
    """Static persistent registers + linear-scan temporaries."""

    _PERSISTENT = ("s1", "s2", "s3", "s4", "s5", "s6",
                   "s7", "s8", "s9", "s10", "s11")
    _TEMPS = ("t0", "t1", "t2", "t3", "t4", "t5", "t6",
              "a1", "a2", "a3", "a4", "a5", "a6", "a7")

    def __init__(self) -> None:
        self._next_persistent = 0
        self._free = list(self._TEMPS)

    def persistent(self) -> str:
        if self._next_persistent >= len(self._PERSISTENT):
            raise CodegenError("out of persistent registers")
        reg = self._PERSISTENT[self._next_persistent]
        self._next_persistent += 1
        return reg

    def temp(self) -> str:
        if not self._free:
            raise CodegenError("out of temporary registers")
        return self._free.pop(0)

    def release(self, reg: str) -> None:
        if reg in self._TEMPS and reg not in self._free:
            self._free.append(reg)


def _table_bases(kernel: Kernel) -> Dict[str, int]:
    bases = {}
    for index, name in enumerate(sorted(kernel.tables)):
        bases[name] = TABLE_REGION + index * 0x1000
    return bases


def _pack_table(values: Sequence[int]) -> List[int]:
    words = []
    for start in range(0, len(values), 4):
        word = 0
        for lane in range(4):
            if start + lane < len(values):
                word |= (values[start + lane] & 0xFF) << (8 * lane)
        words.append(word)
    return words


def data_segments(kernel: Kernel) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
    segments = []
    for name in sorted(kernel.arrays):
        spec = kernel.arrays[name]
        segments.append((spec.base, tuple(spec.data)))
    bases = _table_bases(kernel)
    for name in sorted(kernel.tables):
        segments.append((bases[name], tuple(_pack_table(kernel.tables[name]))))
    return tuple(segments)


class _Emitter:
    """Shared machinery for both program flavors."""

    def __init__(self, kernel: Kernel) -> None:
        kernel.validate()
        self.kernel = kernel
        self.by_id = kernel.node_by_id
        self.regs = _Registers()
        self.prologue: List[str] = []
        self.body: List[str] = []
        self.epilogue: List[str] = []
        self.table_bases = _table_bases(kernel)
        self.carry_updates = {spec.update: name
                              for name, spec in kernel.carries.items()}
        # remaining-use counts drive temp recycling inside the body
        self.uses: Dict[int, int] = {n.id: 0 for n in kernel.nodes}
        for node in kernel.nodes:
            for operand in node.operands:
                self.uses[operand] += 1
        for spec in kernel.carries.values():
            self.uses[spec.update] += 1

        self.counter = "s0"
        self.pointer: Dict[str, str] = {}
        self.carry_reg: Dict[str, str] = {}
        self.table_reg: Dict[str, str] = {}
        self.value: Dict[int, str] = {}
        self.emitted: set = set()
        self.users = kernel.users()
        # loads this emitter will itself lower, per stream: the pointer
        # bump is scheduled right after a stream's last load, filling the
        # load-use slot instead of stalling on it
        self.pending_loads: Dict[str, int] = {}
        for node in kernel.nodes:
            if node.op == "load":
                array = node.attr("array")
                self.pending_loads[array] = (
                    self.pending_loads.get(array, 0) + 1)
        self.bumped: set = set()
        self.carry_leaf: Dict[str, int] = {
            node.attr("name"): node.id
            for node in kernel.nodes if node.op == "carry"}

    # ---- prologue helpers -------------------------------------------------
    def setup_pointer(self, array: str) -> str:
        if array not in self.pointer:
            spec = self.kernel.arrays[array]
            reg = self.regs.persistent()
            self.pointer[array] = reg
            self.prologue.append(f"li   {reg}, {spec.base + spec.offset}")
        return self.pointer[array]

    def setup_carry(self, name: str) -> str:
        if name not in self.carry_reg:
            reg = self.regs.persistent()
            self.carry_reg[name] = reg
            init = self.kernel.carries[name].init
            self.prologue.append(f"li   {reg}, {_imm(init)}")
        return self.carry_reg[name]

    def setup_table(self, name: str) -> str:
        if name not in self.table_reg:
            reg = self.regs.persistent()
            self.table_reg[name] = reg
            self.prologue.append(f"li   {reg}, {self.table_bases[name]}")
        return self.table_reg[name]

    def hoist_leaf(self, node: KNode) -> str:
        """Loop-invariant const/input -> persistent register."""
        reg = self.regs.persistent()
        value = node.attr("value")
        self.prologue.append(f"li   {reg}, {_imm(value)}")
        return reg

    # ---- body helpers -----------------------------------------------------
    def operand_reg(self, node_id: int) -> str:
        node = self.by_id[node_id]
        if node_id in self.value:
            return self.value[node_id]
        if node.op == "carry":
            return self.setup_carry(node.attr("name"))
        if node.op in ("const", "input"):
            reg = self.hoist_leaf(node)
            self.value[node_id] = reg
            return reg
        raise CodegenError(
            f"node {node_id} ({node.op}) used before it was computed")

    def consume(self, node_id: int) -> None:
        """Register that one pending use of a value happened; recycle the
        temp when none remain."""
        node = self.by_id[node_id]
        if node.op in ("const", "input", "carry"):
            return                       # persistent, never recycled
        self.uses[node_id] -= 1
        if self.uses[node_id] <= 0 and node_id in self.value:
            self.regs.release(self.value[node_id])

    def _direct_carry_dest(self, node: KNode) -> Optional[str]:
        """A carry update whose old value has no reader left may be
        computed straight into the carry register, saving the ``mv`` the
        parallel-update semantics would otherwise require."""
        name = self.carry_updates.get(node.id)
        if name is None or self.uses[node.id] != 1:
            return None
        leaf = self.carry_leaf.get(name)
        if leaf is not None and any(
                user != node.id and user not in self.emitted
                for user in self.users[leaf]):
            return None
        return self.setup_carry(name)

    def emit_op(self, node: KNode) -> None:
        """One computed node into a fresh temp."""
        sources = [self.operand_reg(i) for i in node.operands]
        direct = self._direct_carry_dest(node)
        dest = direct if direct is not None else self.regs.temp()
        body = self.body
        if node.op == "load":
            array = node.attr("array")
            pointer = self.setup_pointer(array)
            body.append(f"lw   {dest}, 0({pointer})")
            self.pending_loads[array] -= 1
            if self.pending_loads[array] == 0:
                spec = self.kernel.arrays[array]
                body.append(f"addi {pointer}, {pointer}, {spec.stride}")
                self.bumped.add(array)
        elif node.op in BINARY_OPS:
            mnemonic = _BIN_MNEMONIC[node.op]
            body.append(f"{mnemonic}  {dest}, {sources[0]}, {sources[1]}")
        elif node.op in _SHIFT_MNEMONIC:
            mnemonic = _SHIFT_MNEMONIC[node.op]
            body.append(f"{mnemonic} {dest}, {sources[0]}, "
                        f"{node.attr('amount')}")
        elif node.op == "extract":
            lo, width = node.attr("lo"), node.attr("width")
            if lo + width == 32:
                body.append(f"srli {dest}, {sources[0]}, {lo}")
            elif width <= 11:
                mask = (1 << width) - 1
                if lo:
                    body.append(f"srli {dest}, {sources[0]}, {lo}")
                    body.append(f"andi {dest}, {dest}, {mask}")
                else:
                    body.append(f"andi {dest}, {sources[0]}, {mask}")
            else:
                left = 32 - lo - width
                body.append(f"slli {dest}, {sources[0]}, {left}")
                body.append(f"srli {dest}, {dest}, {32 - width}")
        elif node.op == "sext":
            width = node.attr("width")
            if width == 32:
                body.append(f"mv   {dest}, {sources[0]}")
            else:
                shift = 32 - width
                body.append(f"slli {dest}, {sources[0]}, {shift}")
                body.append(f"srai {dest}, {dest}, {shift}")
        elif node.op == "table":
            table = self.setup_table(node.attr("table"))
            mask = len(self.kernel.tables[node.attr("table")]) - 1
            if mask > 2047:
                raise CodegenError("table too large for andi index mask")
            body.append(f"andi {dest}, {sources[0]}, {mask}")
            body.append(f"add  {dest}, {table}, {dest}")
            body.append(f"lbu  {dest}, 0({dest})")
        else:
            raise CodegenError(f"op {node.op!r} has no RV32 lowering")
        for operand in node.operands:
            self.consume(operand)
        self.value[node.id] = dest
        self.emitted.add(node.id)

    def commit_carries(self, skip=()) -> None:
        for name, spec in self.kernel.carries.items():
            if name in skip:
                continue
            reg = self.setup_carry(name)
            source = self.value[spec.update]
            if source != reg:
                self.body.append(f"mv   {reg}, {source}")
            self.consume(spec.update)

    def bump_pointers(self) -> None:
        for array in sorted(self.pointer):
            if array in self.bumped:
                continue
            spec = self.kernel.arrays[array]
            self.body.append(f"addi {self.pointer[array]}, "
                             f"{self.pointer[array]}, {spec.stride}")

    # ---- assembly ---------------------------------------------------------
    def render(self, fold_loop: bool, loop_setup: Optional[str]) -> Program:
        trips = self.kernel.trip_count
        lines = list(self.prologue)
        if fold_loop:
            if loop_setup is None:
                raise CodegenError("fold_loop without a loop instruction")
            body_words = _count_words(self.body)
            uimm_s = 2 + 2 * body_words
            if uimm_s > 31:
                raise CodegenError(
                    f"loop body of {body_words} words exceeds the 5-bit "
                    f"zero-overhead-loop span")
            if trips - 1 > 4095:
                raise CodegenError("trip count exceeds uimmL[11:0]")
            lines.append(f"{loop_setup} uimmS={uimm_s}, uimmL={trips - 1}")
            lines.extend(self.body)
        else:
            lines.append(f"li   {self.counter}, {trips}")
            lines.append("loop:")
            lines.extend(self.body)
            lines.append(f"addi {self.counter}, {self.counter}, -1")
            lines.append(f"bne  {self.counter}, zero, loop")
            body_words = _count_words(self.body) + 2
        lines.extend(self.epilogue)
        lines.append("ecall")
        text = "\n".join("  " + line if not line.endswith(":") else line
                         for line in lines)
        return Program(text=text, data=data_segments(self.kernel),
                       loop_body_words=body_words)


def _imm(value: int) -> int:
    value &= 0xFFFFFFFF
    return value


def _count_words(lines: List[str]) -> int:
    """Instruction words in a body: everything here is one word — the
    code generator never places ``li`` (the only multi-word pseudo it
    uses) inside a loop body."""
    words = 0
    for line in lines:
        if line.endswith(":"):
            continue
        if line.split()[0] == "li":
            raise CodegenError("li inside a counted loop body")
        words += 1
    return words


# ---------------------------------------------------------------------------
# Program flavors
# ---------------------------------------------------------------------------

def baseline_program(kernel: Kernel) -> Program:
    """Software-only RV32IM lowering of the kernel loop."""
    emitter = _Emitter(kernel)
    for node in kernel.nodes:
        if node.op in ("const", "input", "carry"):
            continue
        emitter.emit_op(node)
    emitter.commit_carries()
    emitter.bump_pointers()
    result = emitter.setup_carry(kernel.result)
    emitter.epilogue.append(f"mv   a0, {result}")
    return emitter.render(fold_loop=False, loop_setup=None)


def _contracted_order(kernel: Kernel,
                      candidate: Candidate) -> List[object]:
    """Topological order of the loop body with the covered subgraph
    contracted to a single "step" position (convexity guarantees one
    exists); items are node ids or the string ``"step"``."""
    subset = set(candidate.nodes)
    external = [n.id for n in kernel.op_nodes() if n.id not in subset]
    vertices = external + ["step"]

    def vertex_of(node_id: int):
        return "step" if node_id in subset else node_id

    edges: Dict[object, set] = {v: set() for v in vertices}    # v -> deps
    for node in kernel.op_nodes():
        target = vertex_of(node.id)
        for operand in node.operands:
            if kernel.node_by_id[operand].op in ("const", "input", "carry"):
                continue
            source = vertex_of(operand)
            if source != target:
                edges[target].add(source)

    order: List[object] = []
    emitted: set = set()
    pending = list(vertices)
    while pending:
        ready = [v for v in pending if edges[v] <= emitted]
        if not ready:
            raise CodegenError("covered subgraph is not convex")
        ready.sort(key=lambda v: (v == "step", v if v != "step" else 0))
        vertex = ready[0]
        order.append(vertex)
        emitted.add(vertex)
        pending.remove(vertex)
    return order


def candidate_program(kernel: Kernel, candidate: Candidate,
                      emitted: EmittedISAX) -> Program:
    """The kernel loop rewritten to use the mined instruction(s)."""
    emitter = _Emitter(kernel)
    subset = set(candidate.nodes)

    # covered loads execute inside the ISAX — they never reach emit_op,
    # so the inline-bump bookkeeping must not wait for them
    for load_id in candidate.loads:
        emitter.pending_loads[emitter.by_id[load_id].attr("array")] -= 1

    # setup instructions: stream pointers and accumulator seeds via rs1
    for setup in emitted.setups:
        if setup.kind == "load":
            spec = kernel.arrays[setup.target]
            emitter.prologue.append(f"li   t0, {spec.base + spec.offset}")
            emitter.prologue.append(f"{setup.mnemonic} t0")
        else:
            init = kernel.carries[setup.target].init
            emitter.prologue.append(f"li   t0, {_imm(init)}")
            emitter.prologue.append(f"{setup.mnemonic} t0")

    for item in _contracted_order(kernel, candidate):
        if item != "step":
            emitter.emit_op(emitter.by_id[item])
            continue
        operands: List[str] = []
        output_reg: Optional[str] = None
        if emitted.step_output is not None:
            output_reg = emitter.regs.temp()
            operands.append(output_reg)
        for input_id in emitted.step_inputs:
            operands.append(emitter.operand_reg(input_id))
        emitter.body.append(f"{emitted.step} " + ", ".join(operands))
        emitter.emitted.update(candidate.nodes)
        for input_id in emitted.step_inputs:
            emitter.consume(input_id)
        if emitted.step_output is not None:
            emitter.value[emitted.step_output] = output_reg
            # internal uses are satisfied inside the instruction
            internal = sum(1 for user in kernel.users()[emitted.step_output]
                           if user in subset)
            emitter.uses[emitted.step_output] -= internal

    emitter.commit_carries(skip=candidate.carries)
    # Streams consumed by covered loads advance inside the ISAX; only
    # pointers serving external loads exist in ``emitter.pointer``, so
    # bumping them all is exactly right.
    emitter.bump_pointers()

    if emitted.get is not None:
        emitter.epilogue.append(f"{emitted.get} a0")
    else:
        result = emitter.setup_carry(kernel.result)
        emitter.epilogue.append(f"mv   a0, {result}")
    return emitter.render(fold_loop=emitted.fold_loop,
                          loop_setup=emitted.loop)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def run_program(kernel: Kernel, program: Program, core: str,
                artifacts: Sequence[object] = (),
                max_instructions: int = 2_000_000):
    """Assemble + run on the cycle-accurate core model; returns
    ``(timing_report, result_value)`` with the result read from ``a0``."""
    from repro.scaiev.cores import core_datasheet
    from repro.sim.riscv.assembler import assemble
    from repro.sim.riscv.core_model import CoreTimingModel

    model = CoreTimingModel(core_datasheet(core),
                            artifacts=list(artifacts))
    model.load_program(assemble(
        program.text, isaxes=[a.isa for a in artifacts]))
    for base, words in program.data:
        model.load_data(list(words), base)
    report = model.run(max_instructions=max_instructions)
    return report, report.state.read_x(10)
