"""Automatic ISAX discovery: mine candidate custom instructions from loop
kernels, emit CoreDSL for each, and price them with the real toolchain.

Layers (each its own module, consumed top-down by :mod:`.search`):

- :mod:`.kernel` — per-iteration dataflow IR + registry of kernel fixtures
- :mod:`.enumerate` — convex, I/O-constrained subgraph enumeration with
  canonical-digest dedup
- :mod:`.emit` — candidate graph → CoreDSL instruction-set backend
- :mod:`.codegen` — kernel → RV32 assembly (baseline and rewritten to use
  a mined candidate, optionally loop-folded via a generated always block)
- :mod:`.pricing` — one candidate through ``compile_isax`` at ``-O2``:
  lint/IR-verify/cosim gates, fastpath schedule length, Table-4 area,
  measured cycles on the compiled simulator (a service-executor runner)
- :mod:`.search` — orchestration: enumerate → dedup → price (fan-out via
  :class:`repro.service.executor.BatchExecutor` or a compile server) →
  Pareto selection → report + winning ``.core_desc``
"""

from repro.discover.kernel import (  # noqa: F401
    Kernel,
    KernelBuilder,
    KernelError,
    kernel_names,
    register_kernel,
    resolve_kernel,
    run_reference,
)
from repro.discover.enumerate import Candidate, enumerate_candidates  # noqa: F401
from repro.discover.search import (  # noqa: F401
    DiscoveryConfig,
    DiscoveryReport,
    discover,
    pareto_front,
    render_report,
    write_report,
)
