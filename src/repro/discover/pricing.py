"""Candidate pricing through the real toolchain.

One mined candidate becomes one :class:`~repro.service.executor.TaskSpec`
whose runner (:func:`run_pricing_payload`) rebuilds the kernel from its
registry name, re-derives the candidate from its covered node set, and
then walks the full Longnail flow:

1. **emit** CoreDSL (:mod:`repro.discover.emit`) and **compile** it with
   ``compile_isax`` at ``-O2`` on the target core;
2. **gate** it through the whole verification stack — lint errors, the
   IR verifier, and the interpreter-vs-RTL cosim oracle — so only
   born-verified candidates reach the Pareto front;
3. **price** it: schedule length from the fastpath scheduler, µm² and
   frequency from the Table 4 area/integration model
   (:func:`repro.eval.asic.evaluate_combination`), and *measured* cycle
   savings by running the rewritten kernel loop against the software
   baseline on the cycle-accurate core model;
4. check the rewritten program still computes the kernel's reference
   result bit-for-bit.

Candidate-level failures are part of the result record (``ok: false``
with the failing gate), never runner exceptions — a candidate that dies
in the toolchain is a data point, not a batch failure.

:func:`price_candidates` fans the specs out through a
:class:`~repro.service.executor.BatchExecutor` (workers + artifact
cache: warm re-runs are pure cache hits) or, with ``server_url``,
through a long-lived compile server via ``POST /v1/tasks``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.discover import codegen
from repro.discover.emit import EmitError, emit_candidate
from repro.discover.enumerate import (Candidate, canonical_digest,
                                      classify_io, describe)
from repro.discover.kernel import Kernel, resolve_kernel, run_reference
from repro.service.executor import BatchExecutor, JobOutcome, TaskSpec
from repro.service.jobs import digest

#: Runner reference for one candidate pricing task.
DISCOVER_RUNNER = "repro.discover.pricing:run_pricing_payload"

#: Runner reference for a whole discovery search (``POST /v1/discover``).
DISCOVER_SEARCH_RUNNER = "repro.discover.pricing:run_discover_payload"

#: Part of every pricing cache key; bump when the record shape or the
#: evaluation pipeline changes.  ``discover-2``: cosim gate runs on the
#: batched simulation engine (lane-per-trial) by default.
_DISCOVER_CACHE_VERSION = "discover-2"


@dataclasses.dataclass(frozen=True)
class PricingRequest:
    """One (candidate, fold) variant headed for the executor."""

    kernel: str
    params: Dict[str, int]
    candidate: Candidate
    fold: bool
    core: str
    opt: int = 2
    trials: int = 5
    seed: int = 0
    #: RTL-simulation engine for the cosim gate; batched evaluates all
    #: trials of a functionality as lanes of one numpy batch.
    sim_engine: str = "batched"

    def payload(self) -> dict:
        return {
            "kernel": self.kernel,
            "params": dict(self.params),
            "nodes": list(self.candidate.nodes),
            "fold": self.fold,
            "core": self.core,
            "opt": self.opt,
            "trials": self.trials,
            "seed": self.seed,
            "sim_engine": self.sim_engine,
        }

    def cache_key(self, kernel_fingerprint: str) -> str:
        return digest(
            _DISCOVER_CACHE_VERSION, kernel_fingerprint,
            self.candidate.digest, repr(self.fold), self.core,
            repr(self.opt), repr(self.trials), repr(self.seed),
            self.sim_engine)

    def label(self) -> str:
        fold = "+zol" if self.fold else ""
        return f"{self.kernel}/{self.candidate.label()}{fold}@{self.core}"


def rebuild_candidate(kernel: Kernel, nodes: Sequence[int]) -> Candidate:
    """Candidate from its covered node set (interface re-derived, never
    trusted from the wire)."""
    subset = frozenset(int(n) for n in nodes)
    inputs, outputs, promoted, loads = classify_io(kernel, subset)
    if len(outputs) > 1:
        raise ValueError(f"node set has {len(outputs)} outputs")
    return Candidate(
        nodes=tuple(sorted(subset)),
        inputs=tuple(inputs),
        output=outputs[0] if outputs else None,
        carries=tuple(promoted),
        loads=tuple(loads),
        digest=canonical_digest(kernel, subset, inputs, promoted),
    )


def _failure(record: dict, gate: str, detail: str) -> dict:
    record["ok"] = False
    record["failed_gate"] = gate
    record["error"] = detail
    return record


def run_pricing_payload(payload: dict) -> dict:
    """Executor runner: price one candidate variant, JSON in / JSON out."""
    from repro.analysis.verifier import verify_artifact_ir
    from repro.eval.asic import evaluate_combination
    from repro.hls.longnail import compile_isax
    from repro.sim.compile import resolve_engine
    from repro.sim.cosim import verify_artifact

    kernel = resolve_kernel(payload["kernel"], **payload.get("params", {}))
    candidate = rebuild_candidate(kernel, payload["nodes"])
    fold = bool(payload.get("fold", False))
    core = payload.get("core", "VexRiscv")
    opt = int(payload.get("opt", 2))
    trials = int(payload.get("trials", 5))
    seed = int(payload.get("seed", 0))
    sim_engine = str(payload.get("sim_engine", "batched"))
    resolve_engine(sim_engine)  # reject unknown engines before compiling

    record: dict = {
        "kernel": payload["kernel"],
        "params": dict(payload.get("params", {})),
        "label": candidate.label() + ("+zol" if fold else ""),
        "digest": candidate.digest,
        "nodes": list(candidate.nodes),
        "ops": describe(kernel, candidate),
        "fold": fold,
        "core": core,
        "opt": opt,
        "ok": True,
        "failed_gate": None,
        "error": None,
    }

    try:
        emitted = emit_candidate(kernel, candidate, fold_loop=fold)
    except EmitError as err:
        return _failure(record, "emit", str(err))
    record["source"] = emitted.source
    record["instructions"] = [s.mnemonic for s in emitted.setups] + [
        name for name in (emitted.step, emitted.get, emitted.loop) if name]

    try:
        artifact = compile_isax(emitted.source, core, opt=opt)
    except Exception as err:  # toolchain rejection is a gate, not a crash
        return _failure(record, "compile", f"{type(err).__name__}: {err}")

    lint_errors = [d for d in artifact.diagnostics
                   if getattr(d, "severity", "") == "error"]
    record["lint_warnings"] = sum(
        1 for d in artifact.diagnostics
        if getattr(d, "severity", "") == "warning")
    if lint_errors:
        return _failure(record, "lint",
                        "; ".join(str(d) for d in lint_errors[:3]))

    ir_diagnostics = verify_artifact_ir(artifact)
    if ir_diagnostics:
        return _failure(record, "irverify",
                        "; ".join(str(d) for d in ir_diagnostics[:3]))

    cosim = verify_artifact(artifact, trials=trials, seed=seed,
                            sim_engine=sim_engine)
    record["sim_engine"] = sim_engine
    record["batched_trials"] = cosim.batched_trials
    record["scalar_fallbacks"] = cosim.scalar_fallbacks
    if not cosim.passed:
        return _failure(record, "cosim",
                        f"{len(cosim.failures)} mismatching trials")

    record["makespan"] = max(
        f.schedule.makespan for f in artifact.functionalities.values())

    try:
        asic = evaluate_combination(core, [emitted.source])
    except Exception as err:
        return _failure(record, "area", f"{type(err).__name__}: {err}")
    record["area_um2"] = asic.extension_area_um2
    record["area_overhead_pct"] = asic.area_overhead_pct
    record["freq_mhz"] = asic.freq_mhz

    reference = run_reference(kernel)
    try:
        base_program = codegen.baseline_program(kernel)
        base_report, base_result = codegen.run_program(
            kernel, base_program, core)
        cand_program = codegen.candidate_program(kernel, candidate, emitted)
        cand_report, cand_result = codegen.run_program(
            kernel, cand_program, core, artifacts=[artifact])
    except codegen.CodegenError as err:
        return _failure(record, "codegen", str(err))
    if base_result != reference:
        return _failure(
            record, "baseline-result",
            f"baseline computed 0x{base_result:08x}, "
            f"reference 0x{reference:08x}")
    if cand_result != reference:
        return _failure(
            record, "result",
            f"candidate computed 0x{cand_result:08x}, "
            f"reference 0x{reference:08x}")

    record["baseline_cycles"] = base_report.cycles
    record["cycles"] = cand_report.cycles
    record["speedup"] = base_report.cycles / cand_report.cycles
    record["isax_busy_cycles"] = cand_report.isax_busy_cycles
    record["loop_body_words"] = cand_program.loop_body_words
    record["result"] = cand_result
    return record


def build_specs(requests: Sequence[PricingRequest],
                kernel_fingerprint: str) -> List[TaskSpec]:
    return [
        TaskSpec(
            runner=DISCOVER_RUNNER,
            payload=request.payload(),
            key=request.cache_key(kernel_fingerprint),
            label=request.label(),
        )
        for request in requests
    ]


def price_candidates(
        requests: Sequence[PricingRequest],
        kernel_fingerprint: str,
        executor: Optional[BatchExecutor] = None,
        server_url: Optional[str] = None,
        priority: str = "batch") -> Tuple[List[dict], dict]:
    """Fan all pricing requests out; returns ``(records, stats)``.

    Records keep request order.  A request that failed at the transport
    level (worker death, server error) yields a synthetic ``ok: false``
    record with gate ``"transport"``.  ``stats`` reports executed vs
    cache-served counts — the warm-re-run story of the benchmark.
    """
    specs = build_specs(requests, kernel_fingerprint)
    if server_url is not None:
        outcomes = _price_via_server(server_url, specs, priority)
    else:
        local = executor or BatchExecutor(workers=1)
        outcomes = local.run_specs(specs)

    records: List[dict] = []
    cached = executed = failed = 0
    for request, outcome in zip(requests, outcomes):
        if outcome.ok and outcome.result is not None:
            record = dict(outcome.result)
            record["cached"] = outcome.cached
            record["seconds"] = outcome.seconds
            cached += 1 if outcome.cached else 0
            executed += 0 if outcome.cached else 1
            if not record.get("ok"):
                failed += 1
        else:
            failed += 1
            record = {
                "kernel": request.kernel,
                "label": request.label(),
                "digest": request.candidate.digest,
                "nodes": list(request.candidate.nodes),
                "fold": request.fold,
                "core": request.core,
                "ok": False,
                "failed_gate": "transport",
                "error": outcome.error,
                "cached": False,
                "seconds": outcome.seconds,
            }
        records.append(record)
    stats = {
        "requested": len(requests),
        "executed": executed,
        "cached": cached,
        "failed": failed,
    }
    return records, stats


def _price_via_server(url: str, specs: Sequence[TaskSpec],
                      priority: str) -> List[JobOutcome]:
    """Submit every spec to a running compile server concurrently and
    adapt the job responses back into :class:`JobOutcome` shape."""
    import asyncio

    from repro.server.client import CompileServerClient

    async def _sweep() -> List[dict]:
        client = CompileServerClient(url)
        return await asyncio.gather(*[
            client.submit_task(
                runner=spec.runner, payload=spec.payload, key=spec.key,
                label=spec.label, priority=priority, wait=True,
            )
            for spec in specs
        ], return_exceptions=True)

    outcomes: List[JobOutcome] = []
    for spec, job in zip(specs, asyncio.run(_sweep())):
        if isinstance(job, BaseException):
            outcomes.append(JobOutcome(
                spec=spec, status="failed", cached=False, attempts=1,
                seconds=0.0, error=f"{type(job).__name__}: {job}"))
            continue
        ok = job.get("state") == "ok"
        outcomes.append(JobOutcome(
            spec=spec,
            status="ok" if ok else "failed",
            cached=bool(job.get("cached")),
            attempts=1,
            seconds=float(job.get("seconds") or 0.0),
            result=job.get("result") if ok else None,
            error=None if ok else str(job.get("error")),
        ))
    return outcomes


def run_discover_payload(payload: dict) -> dict:
    """Executor runner for a whole discovery search (the ``/v1/discover``
    server task): build the config, run the search in-process, return the
    report as JSON."""
    from repro.discover.search import DiscoveryConfig, discover

    config = DiscoveryConfig.from_payload(payload)
    report = discover(config)
    return report.to_dict()
