"""Cycle-driven simulation of generated hw modules.

Interprets the ``comb``/``seq`` netlist of an :class:`HWModule` directly:
each :meth:`RTLSimulator.step` applies input values, evaluates the
combinational logic in topological order, samples the outputs, and then
clocks the pipeline registers (honoring their stall enables).  This is the
reproduction's equivalent of running the emitted SystemVerilog through a
commercial simulator, and it backs the co-simulation tests that compare the
generated hardware against the CoreDSL golden interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dialects import comb
from repro.dialects.hw import HWModule
from repro.ir.core import IRError, Operation, Value


class RTLSimulator:
    """Simulates one hw module cycle by cycle."""

    def __init__(self, module: HWModule):
        self.module = module
        self._order: List[Operation] = self._schedule(module)
        self._registers: Dict[Operation, int] = {
            op: 0 for op in self._order if op.name == "seq.compreg"
        }
        self._last_outputs: Dict[str, int] = {}
        self.cycle = 0

    @staticmethod
    def _schedule(module: HWModule) -> List[Operation]:
        """Topological order where registers break cycles: a register's
        output is available at the start of the cycle, and its data operand
        is only sampled at the clock edge."""
        ops = module.body.operations
        index = set(ops)
        state: Dict[Operation, int] = {}
        order: List[Operation] = []

        def visit(op: Operation) -> None:
            mark = state.get(op, 0)
            if mark == 2:
                return
            if mark == 1:
                raise IRError(
                    f"combinational cycle in module '{module.name}' at "
                    f"'{op.name}'"
                )
            state[op] = 1
            if op.name != "seq.compreg":
                for operand in op.operands:
                    if operand.owner is not None and operand.owner in index:
                        visit(operand.owner)
            state[op] = 2
            order.append(op)

        # Registers first (their outputs are cycle inputs), then the rest.
        for op in ops:
            if op.name == "seq.compreg":
                visit(op)
        for op in ops:
            visit(op)
        return order

    # ------------------------------------------------------------------ API
    def reset(self) -> None:
        """Reset all pipeline registers to zero."""
        for op in self._registers:
            self._registers[op] = 0
        self.cycle = 0
        self._last_outputs = {}

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Advance one clock cycle.

        ``inputs`` maps input-port names to values (missing ports read 0).
        Returns the output-port values observed *before* the clock edge.
        """
        inputs = inputs or {}
        unknown = set(inputs) - {p.name for p in self.module.inputs}
        if unknown:
            raise IRError(
                f"unknown input port(s) {sorted(unknown)} on module "
                f"'{self.module.name}'"
            )
        values: Dict[Value, int] = {}
        outputs: Dict[str, int] = {}
        for op in self._order:
            if op.name == "hw.input":
                port = self.module.port(op.attr("name"))
                raw = inputs.get(port.name, 0)
                values[op.result] = raw & ((1 << port.width) - 1)
            elif op.name == "hw.output":
                outputs[op.attr("name")] = values[op.operands[0]]
            elif op.name == "seq.compreg":
                values[op.result] = self._registers[op]
            else:
                operand_values = [values[o] for o in op.operands]
                values[op.result] = comb.evaluate(op, operand_values)
        # Clock edge: update registers.
        for op in self._registers:
            data = values[op.operands[0]]
            enable = values[op.operands[1]] if len(op.operands) == 2 else 1
            if enable:
                self._registers[op] = data
        self.cycle += 1
        self._last_outputs = outputs
        return outputs

    def run(self, input_trace: List[Dict[str, int]]) -> List[Dict[str, int]]:
        """Apply a sequence of input vectors; returns the output trace."""
        return [self.step(vector) for vector in input_trace]

    def output(self, name: str) -> int:
        """Last sampled value of an output port."""
        if name not in self._last_outputs:
            raise IRError(f"no sampled value for output '{name}'")
        return self._last_outputs[name]

    @property
    def register_count(self) -> int:
        return len(self._registers)
