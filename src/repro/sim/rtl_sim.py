"""Cycle-driven simulation of generated hw modules.

Simulates the ``comb``/``seq`` netlist of an :class:`HWModule`: each
:meth:`RTLSimulator.step` applies input values, evaluates the combinational
logic in topological order, samples the outputs, and then clocks the
pipeline registers (honoring their stall enables).  This is the
reproduction's equivalent of running the emitted SystemVerilog through a
commercial simulator, and it backs the co-simulation tests that compare the
generated hardware against the CoreDSL golden interpreter.

Three engines implement the cycle, selected with ``engine=``:

* ``"interp"`` — walks the netlist op by op through
  :func:`repro.dialects.comb.evaluate` (the original, reference engine),
* ``"compiled"`` — a straight-line Python ``step`` function generated once
  per module by :mod:`repro.sim.compile` (typically >10x faster),
* ``"batched"`` — the numpy lane-parallel engine
  (:class:`repro.sim.batch.BatchedSimulator`) driven as a persistent
  single-lane batch; use :class:`~repro.sim.batch.BatchedSimulator`
  directly to exploit multi-stimulus batches,
* ``"auto"`` (default) — the compiled engine, falling back to the
  interpreter if the module contains an op without a compilation rule.

All engines share the register-first topological schedule (memoized per
module by :func:`repro.sim.compile.cached_schedule`), the flat register
state, and the public ``step``/``run``/``reset``/``output`` API, and are
held to bit-identical behavior by the standing engine-equivalence
differential oracle (:func:`repro.sim.compile.crosscheck_engines`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dialects import comb
from repro.dialects.hw import HWModule
from repro.ir.core import IRError, Operation, Value
from repro.sim.compile import cached_schedule, compile_module, resolve_engine


class RTLSimulator:
    """Simulates one hw module cycle by cycle."""

    def __init__(self, module: HWModule, engine: str = "auto"):
        resolve_engine(engine)
        self.module = module
        self._order: List[Operation] = cached_schedule(module)
        self._reg_ops: List[Operation] = [
            op for op in self._order if op.name == "seq.compreg"
        ]
        self._reg_index: Dict[Operation, int] = {
            op: i for i, op in enumerate(self._reg_ops)
        }
        self._reg_state: List[int] = [0] * len(self._reg_ops)
        self._input_names = frozenset(p.name for p in module.inputs)
        self._last_outputs: Dict[str, int] = {}
        self.cycle = 0
        self._compiled = None
        self._batched = None
        if engine == "batched":
            from repro.sim.batch import BatchedSimulator
            self._batched = BatchedSimulator(module)
            self.engine = "batched"
            return
        if engine == "compiled":
            compiled = compile_module(module, self._order)
        elif engine == "auto":
            try:
                compiled = compile_module(module, self._order)
            except IRError:
                compiled = None
        else:
            compiled = None
        if compiled is not None:
            # The compiler registers state slots in schedule order too, so
            # the flat list is shared as-is between both engines.
            assert compiled.register_ops == self._reg_ops
            self._compiled = compiled
        self.engine = "compiled" if self._compiled is not None else "interp"

    @staticmethod
    def _schedule(module: HWModule) -> List[Operation]:
        """Topological order where registers break cycles: a register's
        output is available at the start of the cycle, and its data operand
        is only sampled at the clock edge."""
        ops = module.body.operations
        index = set(ops)
        state: Dict[Operation, int] = {}
        order: List[Operation] = []

        def visit(op: Operation) -> None:
            mark = state.get(op, 0)
            if mark == 2:
                return
            if mark == 1:
                raise IRError(
                    f"combinational cycle in module '{module.name}' at "
                    f"'{op.name}'"
                )
            state[op] = 1
            if op.name != "seq.compreg":
                for operand in op.operands:
                    if operand.owner is not None and operand.owner in index:
                        visit(operand.owner)
            state[op] = 2
            order.append(op)

        # Registers first (their outputs are cycle inputs), then the rest.
        for op in ops:
            if op.name == "seq.compreg":
                visit(op)
        for op in ops:
            visit(op)
        return order

    # ------------------------------------------------------------------ API
    def reset(self) -> None:
        """Reset all pipeline registers to zero."""
        for index in range(len(self._reg_state)):
            self._reg_state[index] = 0
        if self._batched is not None:
            self._batched.reset(1)
        self.cycle = 0
        self._last_outputs = {}

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Advance one clock cycle.

        ``inputs`` maps input-port names to values (missing ports read 0).
        Returns the output-port values observed *before* the clock edge.
        """
        inputs = inputs or {}
        if not inputs.keys() <= self._input_names:
            unknown = sorted(set(inputs) - self._input_names)
            raise IRError(
                f"unknown input port(s) {unknown} on module "
                f"'{self.module.name}'"
            )
        if self._batched is not None:
            outputs = self._batched.step(inputs)
        elif self._compiled is not None:
            outputs = self._compiled.step(inputs, self._reg_state)
        else:
            outputs = self._interp_step(inputs)
        self.cycle += 1
        self._last_outputs = outputs
        return outputs

    def _interp_step(self, inputs: Dict[str, int]) -> Dict[str, int]:
        values: Dict[Value, int] = {}
        outputs: Dict[str, int] = {}
        regs = self._reg_state
        for op in self._order:
            if op.name == "hw.input":
                port = self.module.port(op.attr("name"))
                raw = inputs.get(port.name, 0)
                values[op.result] = raw & ((1 << port.width) - 1)
            elif op.name == "hw.output":
                outputs[op.attr("name")] = values[op.operands[0]]
            elif op.name == "seq.compreg":
                values[op.result] = regs[self._reg_index[op]]
            else:
                operand_values = [values[o] for o in op.operands]
                values[op.result] = comb.evaluate(op, operand_values)
        # Clock edge: update registers.
        for index, op in enumerate(self._reg_ops):
            data = values[op.operands[0]]
            enable = values[op.operands[1]] if len(op.operands) == 2 else 1
            if enable:
                regs[index] = data
        return outputs

    def run(self, input_trace: List[Dict[str, int]]) -> List[Dict[str, int]]:
        """Apply a sequence of input vectors; returns the output trace."""
        return [self.step(vector) for vector in input_trace]

    def output(self, name: str) -> int:
        """Last sampled value of an output port."""
        if name not in self._last_outputs:
            raise IRError(f"no sampled value for output '{name}'")
        return self._last_outputs[name]

    def register_state(self) -> Tuple[int, ...]:
        """Current register values, in schedule order (pre-edge values of
        the upcoming cycle)."""
        if self._batched is not None:
            return self._batched.register_state()
        return tuple(self._reg_state)

    def register_value(self, op: Operation) -> int:
        """Current value of one ``seq.compreg`` operation."""
        if self._batched is not None:
            return self._batched.register_state()[self._reg_index[op]]
        return self._reg_state[self._reg_index[op]]

    @property
    def register_count(self) -> int:
        return len(self._reg_ops)
