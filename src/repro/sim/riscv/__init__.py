"""RV32I simulation: assembler, functional ISS, and cycle-approximate
timing models of the four host cores with SCAIE-V-style ISAX integration."""

from repro.sim.riscv.assembler import assemble, AssemblerError
from repro.sim.riscv.isa import ExecutedInstr, RV32ISimulator
from repro.sim.riscv.core_model import CoreTimingModel, TimingParams, TimingReport

__all__ = [
    "assemble",
    "AssemblerError",
    "ExecutedInstr",
    "RV32ISimulator",
    "CoreTimingModel",
    "TimingParams",
    "TimingReport",
]
