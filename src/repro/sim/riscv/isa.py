"""Functional RV32I instruction-set simulator with ISAX support.

Implements the RV32I base instruction set (decode + execute) over the shared
:class:`~repro.sim.coredsl_interp.ArchState`.  Instruction words that do not
decode as RV32I are matched against the elaborated ISAX's encodings and
executed through the CoreDSL golden interpreter, exactly mirroring how the
extended core executes them.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.frontend.elaboration import ElaboratedISA
from repro.sim.coredsl_interp import ArchState, CoreDSLInterpreter, Effect
from repro.utils.bits import extract_bits, sign_extend, to_signed, to_unsigned


class SimError(Exception):
    """Raised on illegal instructions or simulator misuse."""


@dataclasses.dataclass
class ExecutedInstr:
    """Retired-instruction record consumed by the timing models."""

    pc: int
    word: int
    mnemonic: str
    kind: str                 # alu | load | store | branch | jump | system | isax
    rd: Optional[int] = None
    rs_used: List[int] = dataclasses.field(default_factory=list)
    taken: bool = False
    isax: Optional[str] = None
    effects: List[Effect] = dataclasses.field(default_factory=list)
    next_pc: int = 0


def _imm_i(word: int) -> int:
    return to_signed(extract_bits(word, 31, 20), 12)


def _imm_s(word: int) -> int:
    value = (extract_bits(word, 31, 25) << 5) | extract_bits(word, 11, 7)
    return to_signed(value, 12)


def _imm_b(word: int) -> int:
    value = (
        (extract_bits(word, 31, 31) << 12)
        | (extract_bits(word, 7, 7) << 11)
        | (extract_bits(word, 30, 25) << 5)
        | (extract_bits(word, 11, 8) << 1)
    )
    return to_signed(value, 13)


def _imm_u(word: int) -> int:
    return extract_bits(word, 31, 12) << 12


def _imm_j(word: int) -> int:
    value = (
        (extract_bits(word, 31, 31) << 20)
        | (extract_bits(word, 19, 12) << 12)
        | (extract_bits(word, 20, 20) << 11)
        | (extract_bits(word, 30, 21) << 1)
    )
    return to_signed(value, 21)


class RV32ISimulator:
    """Functional simulator: RV32I base plus an optional ISAX."""

    def __init__(self, isa: Optional[ElaboratedISA] = None,
                 state: Optional[ArchState] = None):
        if state is None:
            if isa is None:
                raise SimError("need an ElaboratedISA or an ArchState")
            state = ArchState(isa)
        self.state = state
        self.isax_isas: List[ElaboratedISA] = []
        self.interpreters: List[CoreDSLInterpreter] = []
        if isa is not None:
            self.add_isax(isa)
        self.halted = False
        self.instret = 0

    def add_isax(self, isa: ElaboratedISA) -> None:
        self.isax_isas.append(isa)
        self.interpreters.append(CoreDSLInterpreter(isa))
        self.state.add_custom_state(isa)

    # ------------------------------------------------------------- memory
    def load_words(self, words: List[int], base: int = 0) -> None:
        for i, word in enumerate(words):
            self.state.write_mem(base + 4 * i, to_unsigned(word, 32), 4)

    # ------------------------------------------------------------- stepping
    def step(self) -> ExecutedInstr:
        if self.halted:
            raise SimError("simulator is halted")
        state = self.state
        pc = state.pc
        word = state.read_mem(pc, 4)
        record = self.execute(word, pc)
        state.pc = record.next_pc
        self.instret += 1
        return record

    def run(self, max_steps: int = 1_000_000) -> int:
        steps = 0
        while not self.halted and steps < max_steps:
            self.step()
            steps += 1
        return steps

    # ------------------------------------------------------------- execute
    def execute(self, word: int, pc: int) -> ExecutedInstr:
        state = self.state
        opcode = word & 0x7F
        rd = extract_bits(word, 11, 7)
        rs1 = extract_bits(word, 19, 15)
        rs2 = extract_bits(word, 24, 20)
        funct3 = extract_bits(word, 14, 12)
        funct7 = extract_bits(word, 31, 25)
        next_pc = to_unsigned(pc + 4, 32)

        def rec(mnemonic, kind, rd_=None, rs=(), taken=False, npc=None):
            return ExecutedInstr(
                pc=pc, word=word, mnemonic=mnemonic, kind=kind, rd=rd_,
                rs_used=[r for r in rs if r], taken=taken,
                next_pc=npc if npc is not None else next_pc,
            )

        if opcode == 0x37:  # LUI
            state.write_x(rd, _imm_u(word))
            return rec("lui", "alu", rd)
        if opcode == 0x17:  # AUIPC
            state.write_x(rd, pc + _imm_u(word))
            return rec("auipc", "alu", rd)
        if opcode == 0x6F:  # JAL
            state.write_x(rd, pc + 4)
            return rec("jal", "jump", rd, taken=True,
                       npc=to_unsigned(pc + _imm_j(word), 32))
        if opcode == 0x67 and funct3 == 0:  # JALR
            target = to_unsigned(state.read_x(rs1) + _imm_i(word), 32) & ~1
            state.write_x(rd, pc + 4)
            return rec("jalr", "jump", rd, rs=(rs1,), taken=True, npc=target)
        if opcode == 0x63:  # branches
            lhs, rhs = state.read_x(rs1), state.read_x(rs2)
            slhs, srhs = to_signed(lhs, 32), to_signed(rhs, 32)
            taken = {
                0: lhs == rhs, 1: lhs != rhs,
                4: slhs < srhs, 5: slhs >= srhs,
                6: lhs < rhs, 7: lhs >= rhs,
            }.get(funct3)
            if taken is None:
                raise SimError(f"illegal branch funct3={funct3}")
            names = {0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu",
                     7: "bgeu"}
            npc = to_unsigned(pc + _imm_b(word), 32) if taken else next_pc
            return rec(names[funct3], "branch", rs=(rs1, rs2), taken=taken,
                       npc=npc)
        if opcode == 0x03:  # loads
            address = to_unsigned(state.read_x(rs1) + _imm_i(word), 32)
            if funct3 == 0:
                value = sign_extend(state.read_mem(address, 1), 8, 32)
                name = "lb"
            elif funct3 == 1:
                value = sign_extend(state.read_mem(address, 2), 16, 32)
                name = "lh"
            elif funct3 == 2:
                value = state.read_mem(address, 4)
                name = "lw"
            elif funct3 == 4:
                value = state.read_mem(address, 1)
                name = "lbu"
            elif funct3 == 5:
                value = state.read_mem(address, 2)
                name = "lhu"
            else:
                raise SimError(f"illegal load funct3={funct3}")
            state.write_x(rd, value)
            return rec(name, "load", rd, rs=(rs1,))
        if opcode == 0x23:  # stores
            address = to_unsigned(state.read_x(rs1) + _imm_s(word), 32)
            value = state.read_x(rs2)
            if funct3 == 0:
                state.write_mem(address, value & 0xFF, 1)
                name = "sb"
            elif funct3 == 1:
                state.write_mem(address, value & 0xFFFF, 2)
                name = "sh"
            elif funct3 == 2:
                state.write_mem(address, value, 4)
                name = "sw"
            else:
                raise SimError(f"illegal store funct3={funct3}")
            return rec(name, "store", rs=(rs1, rs2))
        if opcode == 0x13:  # OP-IMM
            value = self._op_imm(state.read_x(rs1), funct3, funct7, word)
            state.write_x(rd, value)
            return rec("op-imm", "alu", rd, rs=(rs1,))
        if opcode == 0x33:  # OP (incl. the M extension)
            if funct7 == 0x01:
                value = self._op_m(state.read_x(rs1), state.read_x(rs2),
                                   funct3)
                state.write_x(rd, value)
                kind = "mul" if funct3 < 4 else "div"
                return rec("op-m", kind, rd, rs=(rs1, rs2))
            value = self._op(state.read_x(rs1), state.read_x(rs2), funct3,
                             funct7)
            state.write_x(rd, value)
            return rec("op", "alu", rd, rs=(rs1, rs2))
        if opcode == 0x0F:  # FENCE
            return rec("fence", "system")
        if opcode == 0x73:  # SYSTEM: ecall/ebreak halt the simulation
            self.halted = True
            return rec("ecall" if extract_bits(word, 20, 20) == 0 else "ebreak",
                       "system")

        # Not base RV32I: try the ISAX encodings.
        for isa, interp in zip(self.isax_isas, self.interpreters):
            name = interp.match_instruction(word)
            if name is None:
                continue
            saved_pc = self.state.pc
            self.state.pc = pc
            effects = interp.execute_instruction(self.state, name, word)
            npc = self.state.pc if self.state.pc != pc else next_pc
            taken = npc != next_pc
            self.state.pc = saved_pc
            instr = isa.instructions[name]
            rs_used = []
            if "rs1" in instr.fields:
                rs_used.append(rs1)
            if "rs2" in instr.fields:
                rs_used.append(rs2)
            rd_out = rd if any(
                e.kind == "gpr" for e in effects
            ) else None
            record = ExecutedInstr(
                pc=pc, word=word, mnemonic=name, kind="isax", rd=rd_out,
                rs_used=[r for r in rs_used if r], taken=taken, isax=name,
                effects=effects, next_pc=npc,
            )
            return record
        raise SimError(f"illegal instruction {word:#010x} at pc={pc:#010x}")

    # -------------------------------------------------------------- ALU ops
    @staticmethod
    def _op_imm(a: int, funct3: int, funct7: int, word: int) -> int:
        imm = _imm_i(word)
        shamt = extract_bits(word, 24, 20)
        if funct3 == 0:
            return to_unsigned(a + imm, 32)
        if funct3 == 2:
            return int(to_signed(a, 32) < imm)
        if funct3 == 3:
            return int(a < to_unsigned(imm, 32))
        if funct3 == 4:
            return to_unsigned(a ^ imm, 32)
        if funct3 == 6:
            return to_unsigned(a | imm, 32)
        if funct3 == 7:
            return to_unsigned(a & imm, 32)
        if funct3 == 1:
            return to_unsigned(a << shamt, 32)
        if funct3 == 5:
            if funct7 & 0x20:
                return to_unsigned(to_signed(a, 32) >> shamt, 32)
            return a >> shamt
        raise SimError(f"illegal op-imm funct3={funct3}")

    @staticmethod
    def _op_m(a: int, b: int, funct3: int) -> int:
        """RV32M: mul/mulh/mulhsu/mulhu/div/divu/rem/remu."""
        sa, sb = to_signed(a, 32), to_signed(b, 32)
        if funct3 == 0:
            return to_unsigned(sa * sb, 32)
        if funct3 == 1:
            return to_unsigned((sa * sb) >> 32, 32)
        if funct3 == 2:
            return to_unsigned((sa * b) >> 32, 32)
        if funct3 == 3:
            return to_unsigned((a * b) >> 32, 32)
        if funct3 == 4:
            if sb == 0:
                return 0xFFFFFFFF
            quotient = abs(sa) // abs(sb)
            return to_unsigned(-quotient if (sa < 0) != (sb < 0) else quotient,
                               32)
        if funct3 == 5:
            return a // b if b else 0xFFFFFFFF
        if funct3 == 6:
            if sb == 0:
                return a
            quotient = abs(sa) // abs(sb)
            quotient = -quotient if (sa < 0) != (sb < 0) else quotient
            return to_unsigned(sa - quotient * sb, 32)
        if funct3 == 7:
            return a % b if b else a
        raise SimError(f"illegal M funct3={funct3}")

    @staticmethod
    def _op(a: int, b: int, funct3: int, funct7: int) -> int:
        shamt = b & 0x1F
        if funct3 == 0:
            if funct7 & 0x20:
                return to_unsigned(a - b, 32)
            return to_unsigned(a + b, 32)
        if funct3 == 1:
            return to_unsigned(a << shamt, 32)
        if funct3 == 2:
            return int(to_signed(a, 32) < to_signed(b, 32))
        if funct3 == 3:
            return int(a < b)
        if funct3 == 4:
            return a ^ b
        if funct3 == 5:
            if funct7 & 0x20:
                return to_unsigned(to_signed(a, 32) >> shamt, 32)
            return a >> shamt
        if funct3 == 6:
            return a | b
        if funct3 == 7:
            return a & b
        raise SimError(f"illegal op funct3={funct3}")
