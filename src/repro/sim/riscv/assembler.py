"""A small two-pass RV32I assembler with ISAX support.

Supports the subset needed to write the paper's evaluation programs
(Section 5.3/5.5): the RV32I base instructions, labels, ``li``/``mv``/``j``
/``nop``/``ret`` pseudo-instructions, ``.word`` data, and custom ISAX
instructions.  An ISAX instruction is written with its CoreDSL name; operand
registers bind to the ``rd``/``rs1``/``rs2`` encoding fields in that order,
and any other encoding field is given as ``name=value`` (labels are allowed
as values and resolve to their address):

    dotp     x5, x3, x4
    setup_ai x3
    setup_zol uimmS=loop_end, uimmL=7
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.frontend.elaboration import ElaboratedISA
from repro.utils.bits import to_unsigned


class AssemblerError(Exception):
    pass


ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
    "s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

_R_TYPE = {
    "add": (0, 0x00), "sub": (0, 0x20), "sll": (1, 0x00), "slt": (2, 0x00),
    "sltu": (3, 0x00), "xor": (4, 0x00), "srl": (5, 0x00), "sra": (5, 0x20),
    "or": (6, 0x00), "and": (7, 0x00),
    # RV32M
    "mul": (0, 0x01), "mulh": (1, 0x01), "mulhsu": (2, 0x01),
    "mulhu": (3, 0x01), "div": (4, 0x01), "divu": (5, 0x01),
    "rem": (6, 0x01), "remu": (7, 0x01),
}
_I_TYPE = {
    "addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}
_SHIFT_TYPE = {"slli": (1, 0x00), "srli": (5, 0x00), "srai": (5, 0x20)}
_LOAD_TYPE = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
_STORE_TYPE = {"sb": 0, "sh": 1, "sw": 2}
_BRANCH_TYPE = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}


def _reg(token: str) -> int:
    token = token.strip().lower()
    if token in ABI_NAMES:
        return ABI_NAMES[token]
    if re.fullmatch(r"x([0-9]|[12][0-9]|3[01])", token):
        return int(token[1:])
    raise AssemblerError(f"invalid register {token!r}")


class Assembler:
    def __init__(self, isaxes: Optional[List[ElaboratedISA]] = None,
                 base: int = 0):
        self.base = base
        self.isax_instructions = {}
        for isa in (isaxes or []):
            for name, instr in isa.instructions.items():
                self.isax_instructions[name.lower()] = instr

    # ------------------------------------------------------------- helpers
    def _imm(self, token: str, labels: Dict[str, int], pc: int,
             relative: bool = False) -> int:
        token = token.strip()
        if token in labels:
            return labels[token] - pc if relative else labels[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblerError(f"invalid immediate or label {token!r}")

    def _parse_lines(self, text: str) -> List[Tuple[str, List[str]]]:
        items: List[Tuple[str, List[str]]] = []
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].split("//", 1)[0].strip()
            if not line:
                continue
            while ":" in line.split()[0] if line else False:
                label, _colon, rest = line.partition(":")
                items.append(("label", [label.strip()]))
                line = rest.strip()
                if not line:
                    break
            if line:
                parts = line.split(None, 1)
                mnemonic = parts[0].lower()
                operands = (
                    [p.strip() for p in parts[1].split(",")]
                    if len(parts) > 1 else []
                )
                items.append((mnemonic, operands))
        return items

    def _size_of(self, mnemonic: str, operands: List[str]) -> int:
        if mnemonic == "li":
            try:
                value = int(operands[1], 0)
            except ValueError:
                return 8  # label: use the full lui+addi form
            if -2048 <= value < 2048:
                return 4
            return 8
        return 4

    # --------------------------------------------------------------- passes
    def assemble(self, text: str) -> Tuple[List[int], Dict[str, int]]:
        items = self._parse_lines(text)
        labels: Dict[str, int] = {}
        pc = self.base
        for mnemonic, operands in items:
            if mnemonic == "label":
                if operands[0] in labels:
                    raise AssemblerError(f"duplicate label {operands[0]!r}")
                labels[operands[0]] = pc
            else:
                pc += self._size_of(mnemonic, operands)
        words: List[int] = []
        pc = self.base
        for mnemonic, operands in items:
            if mnemonic == "label":
                continue
            encoded = self._encode(mnemonic, operands, labels, pc)
            words.extend(encoded)
            pc += 4 * len(encoded)
        return words, labels

    # -------------------------------------------------------------- encode
    def _encode(self, mnemonic: str, ops: List[str],
                labels: Dict[str, int], pc: int) -> List[int]:
        if mnemonic == ".word":
            return [to_unsigned(self._imm(ops[0], labels, pc), 32)]
        if mnemonic == "nop":
            return [0x00000013]
        if mnemonic == "ecall":
            return [0x00000073]
        if mnemonic == "ebreak":
            return [0x00100073]
        if mnemonic == "ret":
            return [self._i_type(0x67, 0, 0, 1, 0)]
        if mnemonic == "mv":
            return [self._i_type(0x13, _reg(ops[0]), 0, _reg(ops[1]), 0)]
        if mnemonic == "li":
            rd = _reg(ops[0])
            value = self._imm(ops[1], labels, pc)
            is_label = ops[1].strip() in labels
            if not is_label and -2048 <= value < 2048:
                return [self._i_type(0x13, rd, 0, 0, value)]
            upper = (value + 0x800) >> 12
            lower = value - (upper << 12)
            return [
                (to_unsigned(upper, 20) << 12) | (rd << 7) | 0x37,
                self._i_type(0x13, rd, 0, rd, lower),
            ]
        if mnemonic == "lui":
            rd = _reg(ops[0])
            return [(to_unsigned(self._imm(ops[1], labels, pc), 20) << 12)
                    | (rd << 7) | 0x37]
        if mnemonic == "auipc":
            rd = _reg(ops[0])
            return [(to_unsigned(self._imm(ops[1], labels, pc), 20) << 12)
                    | (rd << 7) | 0x17]
        if mnemonic == "j":
            return [self._jal(0, self._imm(ops[0], labels, pc, True))]
        if mnemonic == "jal":
            if len(ops) == 1:
                return [self._jal(1, self._imm(ops[0], labels, pc, True))]
            return [self._jal(_reg(ops[0]),
                              self._imm(ops[1], labels, pc, True))]
        if mnemonic == "jalr":
            rd = _reg(ops[0])
            base, offset = self._mem_operand(ops[1], labels, pc)
            return [self._i_type(0x67, rd, 0, base, offset)]
        if mnemonic in _R_TYPE:
            funct3, funct7 = _R_TYPE[mnemonic]
            rd, rs1, rs2 = _reg(ops[0]), _reg(ops[1]), _reg(ops[2])
            return [(funct7 << 25) | (rs2 << 20) | (rs1 << 15)
                    | (funct3 << 12) | (rd << 7) | 0x33]
        if mnemonic in _I_TYPE:
            rd, rs1 = _reg(ops[0]), _reg(ops[1])
            imm = self._imm(ops[2], labels, pc)
            return [self._i_type(0x13, rd, _I_TYPE[mnemonic], rs1, imm)]
        if mnemonic in _SHIFT_TYPE:
            funct3, funct7 = _SHIFT_TYPE[mnemonic]
            rd, rs1 = _reg(ops[0]), _reg(ops[1])
            shamt = self._imm(ops[2], labels, pc) & 0x1F
            return [(funct7 << 25) | (shamt << 20) | (rs1 << 15)
                    | (funct3 << 12) | (rd << 7) | 0x13]
        if mnemonic in _LOAD_TYPE:
            rd = _reg(ops[0])
            base, offset = self._mem_operand(ops[1], labels, pc)
            return [self._i_type(0x03, rd, _LOAD_TYPE[mnemonic], base, offset)]
        if mnemonic in _STORE_TYPE:
            rs2 = _reg(ops[0])
            base, offset = self._mem_operand(ops[1], labels, pc)
            imm = to_unsigned(offset, 12)
            return [((imm >> 5) << 25) | (rs2 << 20) | (base << 15)
                    | (_STORE_TYPE[mnemonic] << 12) | ((imm & 0x1F) << 7)
                    | 0x23]
        if mnemonic in _BRANCH_TYPE:
            rs1, rs2 = _reg(ops[0]), _reg(ops[1])
            offset = self._imm(ops[2], labels, pc, relative=True)
            imm = to_unsigned(offset, 13)
            return [
                (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25)
                | (rs2 << 20) | (rs1 << 15) | (_BRANCH_TYPE[mnemonic] << 12)
                | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | 0x63
            ]
        if mnemonic in self.isax_instructions:
            return [self._encode_isax(mnemonic, ops, labels, pc)]
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}")

    def _encode_isax(self, mnemonic: str, ops: List[str],
                     labels: Dict[str, int], pc: int) -> int:
        instr = self.isax_instructions[mnemonic]
        field_values: Dict[str, int] = {}
        positional = [f for f in ("rd", "rs1", "rs2")
                      if f in instr.encoding.fields]
        cursor = 0
        for op in ops:
            if "=" in op:
                name, _eq, value = op.partition("=")
                name = name.strip()
                if name not in instr.encoding.fields:
                    raise AssemblerError(
                        f"'{mnemonic}' has no encoding field '{name}'"
                    )
                if name in ("rd", "rs1", "rs2"):
                    try:
                        field_values[name] = _reg(value)
                        continue
                    except AssemblerError:
                        pass
                field_values[name] = self._imm(value, labels, pc)
            else:
                if cursor >= len(positional):
                    raise AssemblerError(
                        f"too many register operands for '{mnemonic}'"
                    )
                field_values[positional[cursor]] = _reg(op)
                cursor += 1
        for name, value in list(field_values.items()):
            width = instr.encoding.fields[name].width
            field_values[name] = to_unsigned(value, width)
        return instr.encoding.encode(field_values)

    # ------------------------------------------------------------ low-level
    @staticmethod
    def _i_type(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
        return ((to_unsigned(imm, 12) << 20) | (rs1 << 15) | (funct3 << 12)
                | (rd << 7) | opcode)

    @staticmethod
    def _jal(rd: int, offset: int) -> int:
        imm = to_unsigned(offset, 21)
        return (
            (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21)
            | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12)
            | (rd << 7) | 0x6F
        )

    def _mem_operand(self, token: str, labels: Dict[str, int],
                     pc: int) -> Tuple[int, int]:
        match = re.fullmatch(r"(.*)\(([^)]+)\)", token.strip())
        if not match:
            raise AssemblerError(f"expected offset(reg), got {token!r}")
        offset_text = match.group(1).strip() or "0"
        return _reg(match.group(2)), self._imm(offset_text, labels, pc)


def assemble(text: str, isaxes: Optional[List[ElaboratedISA]] = None,
             base: int = 0) -> List[int]:
    """Assemble a program; returns the list of 32-bit instruction words."""
    words, _labels = Assembler(isaxes, base).assemble(text)
    return words
