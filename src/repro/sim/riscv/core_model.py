"""Cycle-approximate timing models of the host cores with SCAIE-V-style
ISAX integration (substitute for the paper's RTL simulation, Section 5.3).

The model wraps the functional ISS with per-instruction cycle accounting:

* pipelined cores (ORCA, Piccolo, VexRiscv) retire one instruction per cycle
  plus penalties: data-memory wait states, taken-branch redirection, and the
  load-use interlock,
* PicoRV32 is sequenced by an FSM with a per-class CPI table,
* ISAX instructions follow their execution mode (Section 3.2):
  - *in-pipeline*: like a base instruction (plus memory wait if they access
    main memory),
  - *tightly-coupled*: the core stalls until the ISAX finishes, i.e.
    ``makespan - writeback_stage`` extra cycles,
  - *decoupled*: one issue-stall cycle (Section 3.2), then the unit runs in
    parallel; SCAIE-V's scoreboard stalls any instruction that reads the
    pending destination until the result commits.  With hazard handling
    disabled (the Table 4 ablation) no interlock is applied,
* always-blocks are evaluated every cycle on the architectural state and can
  redirect the next fetch at zero cost — which is precisely what makes the
  zero-overhead-loop ISAX "zero overhead".

The default penalty parameters are calibrated so the Section 5.5 array-sum
experiment lands near the paper's cycle counts (18n+50 baseline vs 11n+50
with autoinc+zol on VexRiscv); the *shape* — linear in n, ISAX ~1.6x faster
— is what the benchmarks assert.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.hls.longnail import IsaxArtifact
from repro.scaiev.datasheet import VirtualDatasheet
from repro.sim.coredsl_interp import ArchState, CoreDSLInterpreter
from repro.sim.riscv.isa import ExecutedInstr, RV32ISimulator, SimError


@dataclasses.dataclass
class TimingParams:
    """Penalty parameters of one core's timing model."""

    mem_wait: int = 7            # extra cycles per data-memory access
    load_use_penalty: int = 1    # dependent instruction right after a load
    branch_penalty: int = 4      # taken branch / jump redirection
    decoupled_issue_stall: int = 1  # Section 3.2: one stall cycle at issue
    mul_latency: int = 3         # iterative/pipelined multiplier extra cycles
    div_latency: int = 16        # iterative divider extra cycles
    fsm_cpi: Optional[Dict[str, int]] = None  # PicoRV32-style sequencing


def default_timing(datasheet: VirtualDatasheet) -> TimingParams:
    """Timing parameters per core, scaled to the pipeline structure."""
    if datasheet.is_fsm:
        return TimingParams(
            mem_wait=8, load_use_penalty=0, branch_penalty=0,
            fsm_cpi={"alu": 3, "load": 5, "store": 5, "branch": 3,
                     "jump": 3, "system": 3, "isax": 3, "mul": 8,
                     "div": 40},
        )
    # Taken branches flush the in-flight front of the pipeline plus the
    # refetch bubble (no branch predictor in these MCU-class cores).
    return TimingParams(
        mem_wait=8,
        load_use_penalty=1,
        branch_penalty=max(1, datasheet.writeback_stage + 1),
    )


@dataclasses.dataclass
class TimingReport:
    cycles: int
    instret: int
    state: ArchState
    stall_cycles: int = 0
    decoupled_overlap: int = 0
    isax_busy_cycles: int = 0   # cycles with an ISAX instruction in flight

    @property
    def cpi(self) -> float:
        return self.cycles / max(1, self.instret)


class CoreTimingModel:
    """Runs a program on one host core with zero or more integrated ISAXes."""

    def __init__(self, datasheet: VirtualDatasheet,
                 artifacts: Optional[List[IsaxArtifact]] = None,
                 timing: Optional[TimingParams] = None,
                 hazard_handling: bool = True):
        self.datasheet = datasheet
        self.timing = timing or default_timing(datasheet)
        self.hazard_handling = hazard_handling
        self.artifacts = artifacts or []
        self.state = ArchState()
        self.sim = RV32ISimulator(state=self.state)
        self._instr_info: Dict[str, Tuple[IsaxArtifact, object]] = {}
        self._always: List[Tuple[CoreDSLInterpreter, str]] = []
        for artifact in self.artifacts:
            if artifact.core_name != datasheet.core_name:
                raise SimError(
                    f"artifact '{artifact.name}' was compiled for "
                    f"{artifact.core_name}, not {datasheet.core_name}"
                )
            self.sim.add_isax(artifact.isa)
            interp = CoreDSLInterpreter(artifact.isa)
            for name, functionality in artifact.functionalities.items():
                if functionality.kind == "instruction":
                    self._instr_info[name] = (artifact, functionality)
                else:
                    self._always.append((interp, name))
        # Decoupled-unit bookkeeping: pending GPR / custom-register results.
        self._pending_x: Dict[int, int] = {}
        self._pending_custom: Dict[str, int] = {}
        self._unit_busy_until: Dict[str, int] = {}
        self.cycles = 0
        self.stall_cycles = 0
        self.isax_busy_cycles = 0

    # ---------------------------------------------------------------- setup
    def load_program(self, words: List[int], base: int = 0) -> None:
        self.sim.load_words(words, base)
        self.state.pc = base

    def load_data(self, words: List[int], base: int) -> None:
        for i, word in enumerate(words):
            self.state.write_mem(base + 4 * i, word & 0xFFFFFFFF, 4)

    # ----------------------------------------------------------------- run
    def run(self, max_instructions: int = 1_000_000) -> TimingReport:
        executed = 0
        while not self.sim.halted and executed < max_instructions:
            self._step()
            executed += 1
        return TimingReport(
            cycles=self.cycles,
            instret=self.sim.instret,
            state=self.state,
            stall_cycles=self.stall_cycles,
            isax_busy_cycles=self.isax_busy_cycles,
        )

    def _step(self) -> None:
        # Always-blocks observe the fetch PC every cycle and may redirect it
        # at zero cost (the ZOL mechanism of Section 2.5).
        self._run_always_blocks()
        record = self.sim.step()
        cost = self._cost_of(record)
        self.cycles += cost
        if record.kind == "isax":
            self.isax_busy_cycles += cost

    def _run_always_blocks(self) -> None:
        for interp, name in self._always:
            interp.execute_always(self.state, name)

    # ------------------------------------------------------------- costing
    def _cost_of(self, record: ExecutedInstr) -> int:
        timing = self.timing
        cycles = 0
        # Scoreboard interlock on pending decoupled results.
        cycles += self._hazard_wait(record)
        if record.kind == "isax":
            cycles += self._isax_cost(record)
        elif timing.fsm_cpi is not None:
            cycles += timing.fsm_cpi.get(record.kind, 3)
            if record.kind in ("load", "store"):
                cycles += timing.mem_wait
        else:
            cycles += 1
            if record.kind in ("load", "store"):
                cycles += timing.mem_wait
            if record.kind == "mul":
                cycles += timing.mul_latency
            if record.kind == "div":
                cycles += timing.div_latency
            if record.taken:
                cycles += timing.branch_penalty
        # Track the destination of loads (including ISAX memory reads that
        # write a GPR) for the next instruction's load-use interlock.
        if record.kind == "load":
            self._last_load_rd = record.rd
        elif record.kind == "isax" and record.rd is not None:
            info = self._instr_info.get(record.isax or "")
            uses_mem_read = info is not None and any(
                e.interface == "RdMem"
                for e in info[1].functionality.schedule
            )
            self._last_load_rd = record.rd if uses_mem_read else None
        else:
            self._last_load_rd = None
        return cycles

    def _hazard_wait(self, record: ExecutedInstr) -> int:
        wait = 0
        # Load-use interlock from the previous instruction.
        last_load = getattr(self, "_last_load_rd", None)
        if (last_load is not None and self.timing.fsm_cpi is None
                and last_load in record.rs_used):
            wait += self.timing.load_use_penalty
        if not self.hazard_handling:
            return wait
        # Decoupled-result interlock (SCAIE-V scoreboard).
        ready = 0
        for reg in record.rs_used:
            if reg in self._pending_x:
                ready = max(ready, self._pending_x[reg])
        if record.rd is not None and record.rd in self._pending_x:
            ready = max(ready, self._pending_x[record.rd])
        if record.isax is not None:
            info = self._instr_info.get(record.isax)
            if info is not None:
                _artifact, functionality = info
                for entry in functionality.functionality.schedule:
                    name = entry.interface
                    for reg_name, until in self._pending_custom.items():
                        if reg_name in name:
                            ready = max(ready, until)
        if ready > self.cycles:
            wait += ready - self.cycles
            self.stall_cycles += ready - self.cycles
        # Expire completed results.
        now = self.cycles + wait
        self._pending_x = {r: c for r, c in self._pending_x.items() if c > now}
        self._pending_custom = {
            r: c for r, c in self._pending_custom.items() if c > now
        }
        return wait

    def _isax_cost(self, record: ExecutedInstr) -> int:
        info = self._instr_info.get(record.isax or "")
        if info is None:
            # ISAX known functionally but not compiled for this core.
            return 1
        artifact, functionality = info
        mode = functionality.mode.value
        schedule = functionality.functionality
        makespan = functionality.schedule.makespan
        cycles = 1
        uses_mem = any(e.interface in ("RdMem", "WrMem")
                       for e in schedule.schedule)
        if uses_mem:
            cycles += self.timing.mem_wait
        if record.taken:
            cycles += self.timing.branch_penalty
        if self.timing.fsm_cpi is not None:
            cycles += self.timing.fsm_cpi.get("isax", 3) - 1
        if mode == "tightly_coupled":
            cycles += max(0, makespan - self.datasheet.writeback_stage)
        elif mode == "decoupled":
            cycles += self.timing.decoupled_issue_stall
            # The decoupled unit occupies itself until the result commits.
            busy_until = self._unit_busy_until.get(artifact.name, 0)
            if busy_until > self.cycles:
                wait = busy_until - self.cycles
                cycles += wait
                self.stall_cycles += wait
            completion = self.cycles + cycles + max(
                0, makespan - self.datasheet.writeback_stage
            )
            self._unit_busy_until[artifact.name] = completion
            if record.rd is not None:
                self._pending_x[record.rd] = completion
            for entry in schedule.schedule:
                if entry.mode == "decoupled" and entry.interface.endswith(".data"):
                    reg = entry.interface[2:-len(".data")]
                    self._pending_custom[reg] = completion
        return cycles
