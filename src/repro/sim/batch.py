"""Batched (lane-parallel) RTL simulation over numpy arrays.

One :class:`BatchedSimulator` evaluates N independent stimulus lanes of the
same :class:`HWModule` per cycle: every SSA value of the netlist becomes a
length-N numpy array, so the per-op interpreter/codegen overhead is paid
once per *operation* instead of once per operation *per stimulus*.  The
code generator lives in :func:`repro.sim.compile.compile_module_batch`;
this module provides the vectorized arithmetic helpers the generated
``step_batch`` calls into and the simulator facade around it.

Lane layout (also documented in ``docs/simulation.md``):

* ``i1`` values ride in **bool lanes**;
* widths 2..64 ride in **uint64 lanes** with lazy masking (add/sub/mul
  chains stay unmasked until an observation point, exploiting that
  ``Z/2^64 -> Z/2^w`` is a ring homomorphism);
* widths > 64 ride in **object-dtype lanes** of Python ints — the
  arbitrary-precision fallback, bit-exact by construction.

Division/modulo by zero, shifts >= width, arithmetic shifts and
out-of-range ROM indices reproduce the scalar engines' RISC-V semantics
exactly (``np.where``-based selects, clamped shift counts, bounds-masked
table takes); the three-way trace-parity oracle
(:func:`repro.sim.compile.crosscheck_engines` with a batched arm) holds
the engines to byte-identical traces on every lane.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dialects.hw import HWModule
from repro.ir.core import IRError, Operation
from repro.utils.bits import mask

_U64 = np.uint64
_LANE_DTYPE = {"b": np.bool_, "u": np.uint64, "o": object}


# ---------------------------------------------------------------------------
# Vectorized helpers called from generated step_batch code.
#
# Every helper is dtype-agnostic: the same formula runs on uint64 lanes
# (mod-2^64 wraparound, suppressed overflow warnings) and object lanes
# (Python ints).  ``m`` is the result-width mask in the matching flavor
# (np.uint64 or int); ``w`` is the width itself.  Semantics mirror
# repro.dialects.comb._eval_* bit for bit.
# ---------------------------------------------------------------------------

def bool_to_uint64(x):
    """Bool lanes -> uint64 lanes (0/1)."""
    return x.astype(_U64)


def lift_object(x):
    """Native lanes -> object lanes of Python ints.  Scalars become 0-d
    object arrays so downstream ops keep numpy operator semantics."""
    if np.ndim(x) == 0:
        return np.array(int(x), dtype=object)
    if x.dtype == np.bool_:
        x = x.astype(_U64)
    return x.astype(object)


def lower_uint64(x):
    """Object lanes (values < 2^64) -> uint64 lanes."""
    if np.ndim(x) == 0:
        return _U64(int(x))
    if x.dtype == object:
        # astype() routes object ints through C long and overflows for
        # values >= 2^63; per-element uint64 conversion takes the full
        # unsigned range.
        return np.fromiter((int(v) for v in x), dtype=_U64, count=len(x))
    return x.astype(_U64)


def asarray_lane(x, n: int, dtype):
    """Materialize a lane as a length-``n`` 1-D array of ``dtype``
    (broadcasting scalars from constant-folded dataflow)."""
    if isinstance(x, np.ndarray) and x.ndim == 1:
        return x if x.dtype == dtype else x.astype(dtype)
    out = np.empty(n, dtype=dtype)
    out[:] = x
    return out


def b_divu(a, b, m):
    """Unsigned division; division by zero yields all-ones (RISC-V)."""
    bz = b == 0
    return np.where(bz, m, a // np.where(bz, 1, b))


def b_modu(a, b, m):
    """Unsigned remainder; modulo zero yields the dividend (RISC-V)."""
    bz = b == 0
    return np.where(bz, a, a % np.where(bz, 1, b))


def _signed_parts(a, b, w, m):
    """(neg_a, neg_b, |a|, |b|) of w-bit two's-complement patterns."""
    sign = m ^ (m >> 1)                    # 1 << (w-1), matching flavor
    neg_a = (a & sign) != 0
    neg_b = (b & sign) != 0
    abs_a = np.where(neg_a, (0 - a) & m, a)
    abs_b = np.where(neg_b, (0 - b) & m, b)
    return neg_a, neg_b, abs_a, abs_b


def b_divs(a, b, w, m):
    """Signed division truncating toward zero; /0 yields all-ones."""
    neg_a, neg_b, abs_a, abs_b = _signed_parts(a, b, w, m)
    bz = b == 0
    q = abs_a // np.where(bz, 1, abs_b)
    qs = np.where(neg_a != neg_b, (0 - q) & m, q)
    return np.where(bz, m, qs)


def b_mods(a, b, w, m):
    """Signed remainder (sign of the dividend); %0 yields the dividend."""
    neg_a, neg_b, abs_a, abs_b = _signed_parts(a, b, w, m)
    bz = b == 0
    q = abs_a // np.where(bz, 1, abs_b)
    qs = np.where(neg_a != neg_b, (0 - q) & m, q)
    # a - trunc(a/b)*b in mod-2^w arithmetic equals the signed remainder's
    # bit pattern (operands and quotient are congruent to their signed
    # interpretations).
    return np.where(bz, a, (a - qs * b) & m)


def b_shrs(a, b, w, m):
    """Arithmetic shift right; counts clamp to width-1 (sign fill)."""
    sh = np.minimum(b, m & (w - 1)) if w > 1 else b * 0
    shifted = a >> sh
    sign = m ^ (m >> 1)
    fill = (m >> sh) ^ m
    return np.where((a & sign) != 0, shifted | fill, shifted)


def b_shl(a, b, w, m):
    """Logical shift left; counts >= width yield zero."""
    sh = np.minimum(b, m & (w - 1)) if w > 1 else b * 0
    return np.where(b < w, (a << sh) & m, a * 0)


def b_shru(a, b, w, m):
    """Logical shift right; counts >= width yield zero."""
    sh = np.minimum(b, m & (w - 1)) if w > 1 else b * 0
    return np.where(b < w, a >> sh, a * 0)


def b_rom_take(table, idx):
    """Bounds-checked table lookup; out-of-range indices read zero."""
    count = len(table)
    zero = 0 if table.dtype == object else table.dtype.type(0)
    if np.ndim(idx) == 0:
        i = int(idx)
        value = table[i] if i < count else zero
        if table.dtype == object:
            value = np.array(int(value), dtype=object)
        return value
    if count == 0:
        return np.full(len(idx), zero, dtype=table.dtype)
    if idx.dtype == object:
        size = len(idx)
        clipped = np.fromiter(
            (int(i) if i < count else 0 for i in idx),
            dtype=np.intp, count=size)
        oob = np.fromiter((i >= count for i in idx), dtype=bool,
                          count=size)
        return np.where(oob, zero, table[clipped])
    clipped = np.minimum(idx, idx.dtype.type(count - 1))
    return np.where(idx < count, table[clipped], zero)


# ---------------------------------------------------------------------------
# The simulator facade
# ---------------------------------------------------------------------------

class BatchedSimulator:
    """Lane-parallel simulation of one hw module.

    Batch API: :meth:`run_batch` simulates one full stimulus trace per
    lane and returns per-lane output traces byte-identical to the scalar
    engines; :meth:`run_const` drives constant per-lane inputs for a fixed
    number of cycles (the cosim steady-state shape) and returns the final
    outputs per lane.  The scalar ``step``/``run``/``reset``/``output``
    API of :class:`~repro.sim.rtl_sim.RTLSimulator` is also provided,
    implemented as a persistent single-lane batch (lane 0).
    """

    def __init__(self, module: HWModule):
        from repro.sim.compile import compile_module_batch

        self.module = module
        self._compiled = compile_module_batch(module)
        self._input_names = frozenset(p.name for p in module.inputs)
        self._input_masks = [mask(w) for w in self._compiled.input_widths]
        self._output_masks = [mask(w) for w in self._compiled.output_widths]
        self._n = 0
        self._regs: List[np.ndarray] = []
        self._last_outputs: Optional[Tuple] = None
        self.cycle = 0
        self.reset(1)

    # -- state -------------------------------------------------------------
    @property
    def register_count(self) -> int:
        return len(self._compiled.register_ops)

    @property
    def lanes(self) -> int:
        return self._n

    def reset(self, n: Optional[int] = None) -> None:
        """Zero all registers and size the batch to ``n`` lanes."""
        if n is not None:
            if n < 1:
                raise IRError(f"batch size must be >= 1, got {n}")
            self._n = n
        self._regs = [
            np.zeros(self._n, dtype=_LANE_DTYPE[kind])
            if kind != "o" else np.full(self._n, 0, dtype=object)
            for kind in self._compiled.register_kinds
        ]
        self._last_outputs = None
        self.cycle = 0

    def register_states(self) -> List[Tuple[int, ...]]:
        """Per-lane register tuples, matching RTLSimulator.register_state
        (ints, schedule order)."""
        columns = [
            asarray_lane(reg, self._n, _LANE_DTYPE[kind]).astype(_U64)
            .tolist() if kind == "b"
            else asarray_lane(reg, self._n, _LANE_DTYPE[kind]).tolist()
            for reg, kind in zip(self._regs, self._compiled.register_kinds)
        ]
        return [
            tuple(int(col[lane]) for col in columns)
            for lane in range(self._n)
        ]

    def register_state(self) -> Tuple[int, ...]:
        """Lane-0 register tuple (scalar-API compatibility)."""
        return self.register_states()[0]

    def register_value(self, op: Operation) -> int:
        index = self._compiled.register_ops.index(op)
        return int(self.register_states()[0][index])

    # -- batch API ---------------------------------------------------------
    def _build_inputs(self, vectors: Sequence[Dict[str, int]]) -> Tuple:
        """Per-port lane arrays for one cycle (one dict per lane)."""
        for vector in vectors:
            if not vector.keys() <= self._input_names:
                unknown = sorted(set(vector) - self._input_names)
                raise IRError(
                    f"unknown input port(s) {unknown} on module "
                    f"'{self.module.name}'"
                )
        compiled = self._compiled
        arrays = []
        for name, kind, m in zip(compiled.input_ports,
                                 compiled.input_kinds, self._input_masks):
            raw = [vector.get(name, 0) & m for vector in vectors]
            arrays.append(np.array(raw, dtype=_LANE_DTYPE[kind]))
        return tuple(arrays)

    def step_batch(self, vectors: Sequence[Dict[str, int]]) -> Tuple:
        """Advance one cycle on ``lanes`` input dicts; returns the raw
        per-output lane arrays (pre-edge values)."""
        if len(vectors) != self._n:
            raise IRError(
                f"expected {self._n} input vectors, got {len(vectors)}")
        arrays = self._build_inputs(vectors)
        with np.errstate(over="ignore"):
            outs = self._compiled.step_batch(arrays, self._regs, self._n)
        self.cycle += 1
        self._last_outputs = outs
        return outs

    def _materialize(self, outs: Tuple) -> List[List[int]]:
        """Raw output arrays -> per-output lists of Python ints."""
        columns = []
        for value, kind in zip(outs, self._compiled.output_kinds):
            arr = asarray_lane(value, self._n, _LANE_DTYPE[kind])
            if kind == "b":
                arr = arr.astype(_U64)
            columns.append([int(v) for v in arr.tolist()])
        return columns

    def outputs_batch(self) -> List[Dict[str, int]]:
        """Last sampled outputs as one dict per lane."""
        if self._last_outputs is None:
            raise IRError("no sampled outputs yet")
        names = self._compiled.output_names
        columns = self._materialize(self._last_outputs)
        return [
            {name: col[lane] for name, col in zip(names, columns)}
            for lane in range(self._n)
        ]

    def run_batch(
            self, stimuli: Sequence[List[Dict[str, int]]],
    ) -> List[List[Dict[str, int]]]:
        """Simulate one input trace per lane (all equal length) from
        reset; returns the per-lane output traces."""
        n = len(stimuli)
        if n == 0:
            return []
        cycles = len(stimuli[0])
        if any(len(trace) != cycles for trace in stimuli):
            raise IRError("all lanes must have equal-length stimuli")
        self.reset(n)
        traces: List[List[Dict[str, int]]] = [[] for _ in range(n)]
        names = self._compiled.output_names
        for c in range(cycles):
            outs = self.step_batch([trace[c] for trace in stimuli])
            columns = self._materialize(outs)
            for lane in range(n):
                traces[lane].append(
                    {name: col[lane]
                     for name, col in zip(names, columns)})
        return traces

    def prepare_trace(
            self, stimuli: Sequence[List[Dict[str, int]]]) -> List[Tuple]:
        """Marshal one input trace per lane into per-cycle lane-array
        tuples (the shape :meth:`run_prepared` consumes).  Splitting
        marshalling from evaluation lets throughput-sensitive callers —
        the engine benchmark, repeated sweeps over one stimulus set —
        pay the Python-dict cost once, outside the timed region."""
        if not stimuli:
            return []
        cycles = len(stimuli[0])
        if any(len(trace) != cycles for trace in stimuli):
            raise IRError("all lanes must have equal-length stimuli")
        return [
            self._build_inputs([trace[c] for trace in stimuli])
            for c in range(cycles)
        ]

    def run_prepared(self, arrays_by_cycle: Sequence[Tuple],
                     n: int) -> Optional[Tuple]:
        """Advance one cycle per prepared array tuple from reset, with no
        per-cycle marshalling or materialization; returns the raw final
        output arrays (or None for an empty trace).  Use
        :meth:`outputs_batch` afterwards for Python-int views."""
        self.reset(n)
        regs = self._regs
        step = self._compiled.step_batch
        outs = None
        with np.errstate(over="ignore"):
            for arrays in arrays_by_cycle:
                outs = step(arrays, regs, n)
        self.cycle += len(arrays_by_cycle)
        self._last_outputs = outs
        return outs

    def run_const(self, vectors: Sequence[Dict[str, int]],
                  cycles: int) -> List[Dict[str, int]]:
        """Drive constant per-lane inputs for ``cycles`` cycles from
        reset; returns the final-cycle outputs per lane.  This is the
        steady-state shape cosimulation needs: one lane per trial."""
        n = len(vectors)
        if n == 0:
            return []
        self.reset(n)
        arrays = self._build_inputs(vectors)
        regs = self._regs
        step = self._compiled.step_batch
        outs = None
        with np.errstate(over="ignore"):
            for _ in range(cycles):
                outs = step(arrays, regs, n)
        self.cycle += cycles
        self._last_outputs = outs
        return self.outputs_batch() if cycles else [
            {} for _ in range(n)]

    # -- scalar (lane-0) API ----------------------------------------------
    def step(self, inputs: Optional[Dict[str, int]] = None,
             ) -> Dict[str, int]:
        """Advance one cycle on a single lane (RTLSimulator-compatible)."""
        if self._n != 1:
            self.reset(1)
        self.step_batch([inputs or {}])
        return self.outputs_batch()[0]

    def run(self, input_trace: List[Dict[str, int]],
            ) -> List[Dict[str, int]]:
        return [self.step(vector) for vector in input_trace]

    def output(self, name: str) -> int:
        if (self._last_outputs is None
                or name not in self._compiled.output_names):
            raise IRError(f"no sampled value for output '{name}'")
        return self.outputs_batch()[0][name]


__all__ = [
    "BatchedSimulator",
    "asarray_lane",
    "b_divs",
    "b_divu",
    "b_mods",
    "b_modu",
    "b_rom_take",
    "b_shl",
    "b_shrs",
    "b_shru",
    "bool_to_uint64",
    "lift_object",
    "lower_uint64",
]
