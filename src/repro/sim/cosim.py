"""Co-simulation harness: generated RTL vs the CoreDSL golden model.

The paper verifies extended cores by RTL simulation (Section 5.3).  This
module packages that methodology as a library feature: given a compiled
:class:`~repro.hls.longnail.IsaxArtifact`, it executes each instruction (or
always-block) once through the CoreDSL interpreter and once through the
cycle-level RTL simulation of the generated module, and compares every
architectural effect — GPR result, PC redirect, memory request, custom
register writes — including the valid bits.

Memory reads are resolved with a fixpoint loop: the module's address
outputs are observed, the corresponding data is fed back on the
``mem_rdata``/``rd<REG>_data`` inputs, and simulation repeats until the
requests stabilize (one round suffices unless an address depends on loaded
data).

``verify_artifact`` runs randomized trials over all functionalities; it is
what a downstream ISAX author would call before handing the SystemVerilog
to a real flow.  With ``sim_engine="batched"`` the randomized trials of
each functionality are evaluated together through the numpy lane-parallel
engine (one lane per trial, :meth:`repro.sim.batch.BatchedSimulator
.run_const`); functionalities whose datapath reads memory or indexed
custom registers need the per-trial feedback fixpoint and transparently
fall back to the scalar path — both populations are counted on the
report (``batched_trials`` / ``scalar_fallbacks``).
"""

from __future__ import annotations

import dataclasses
import os
import random
from typing import Dict, List, Optional

from repro.hls.longnail import FunctionalityArtifact, IsaxArtifact
from repro.sim.coredsl_interp import ArchState, CoreDSLInterpreter, Effect
from repro.sim.rtl_sim import RTLSimulator
from repro.utils.bits import to_unsigned


@dataclasses.dataclass
class Mismatch:
    kind: str
    detail: str


@dataclasses.dataclass
class CosimResult:
    """Outcome of co-simulating one functionality on one stimulus."""

    functionality: str
    matches: bool
    mismatches: List[Mismatch]
    golden_effects: List[Effect]
    rtl_outputs: Dict[str, int]
    #: The input vector the RTL was driven with (after memory/register read
    #: feedback settled) — enough to re-trace the failing trial.
    rtl_inputs: Dict[str, int] = dataclasses.field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.matches


def _port_groups(module) -> Dict[str, List[str]]:
    groups: Dict[str, List[str]] = {}
    for port in module.ports:
        base = port.name.rsplit("_", 1)[0]
        groups.setdefault(base, []).append(port.name)
    return groups


def _find_output(outputs: Dict[str, int], prefix: str) -> Optional[int]:
    for name, value in outputs.items():
        if name.startswith(prefix):
            return value
    return None


def _steady_outputs(functionality: FunctionalityArtifact,
                    inputs: Dict[str, int],
                    sim_engine: str = "auto") -> Dict[str, int]:
    sim = RTLSimulator(functionality.module, engine=sim_engine)
    depth = functionality.schedule.makespan + 2
    outputs: Dict[str, int] = {}
    for _ in range(depth):
        outputs = sim.step(inputs)
    return outputs


def _fork_state(state: ArchState) -> ArchState:
    """Snapshot ``state`` for the golden model (which mutates its copy)."""
    golden = ArchState()
    golden.xregs = list(state.xregs)
    golden.pc = state.pc
    golden.memory = dict(state.memory)
    golden.custom = {k: list(v) for k, v in state.custom.items()}
    golden.custom_widths = dict(state.custom_widths)
    return golden


def _instruction_inputs(module, state: ArchState,
                        field_values: Dict[str, int],
                        word: int) -> Dict[str, int]:
    """Initial RTL input vector for an instruction trial (before any
    memory/indexed-register read feedback)."""
    rs1 = field_values.get("rs1", 0)
    rs2 = field_values.get("rs2", 0)
    inputs: Dict[str, int] = {}
    for port in module.inputs:
        if port.name.startswith("rs1_data"):
            inputs[port.name] = state.read_x(rs1)
        elif port.name.startswith("rs2_data"):
            inputs[port.name] = state.read_x(rs2)
        elif port.name.startswith("pc_data"):
            inputs[port.name] = state.pc
        elif port.name.startswith("instr_word"):
            inputs[port.name] = word
        elif port.name.startswith("rd") and "_data_" in port.name:
            # Custom-register read data: scalar reads have no address port,
            # so resolve them immediately from the pre-state.
            reg = port.name[2:port.name.index("_data_")]
            if reg in state.custom:
                inputs[port.name] = state.read_custom(reg)
    return inputs


def _always_inputs(module, state: ArchState) -> Dict[str, int]:
    """RTL input vector for one always-block evaluation."""
    inputs: Dict[str, int] = {}
    for port in module.inputs:
        if port.name.startswith("pc_data"):
            inputs[port.name] = state.pc
        elif port.name.startswith("rd") and "_data_" in port.name:
            reg = port.name[2:port.name.index("_data_")]
            if reg in state.custom:
                inputs[port.name] = state.read_custom(reg)
    return inputs


def _needs_feedback(module) -> bool:
    """True when the datapath observes read responses that depend on its
    own outputs: memory loads (``mem_raddr`` -> ``mem_rdata``) or indexed
    custom-register reads (``rd<REG>_addr`` -> ``rd<REG>_data``).  Such
    trials need the scalar fixpoint loop; everything else can run as one
    batched lane with constant inputs."""
    reads_mem = (
        any(p.name.startswith("mem_raddr") for p in module.outputs)
        and any(p.name.startswith("mem_rdata") for p in module.inputs))
    if reads_mem:
        return True
    indexed = {p.name[2:p.name.index("_addr_")]
               for p in module.outputs
               if p.name.startswith("rd") and "_addr_" in p.name}
    return any(
        p.name.startswith("rd") and "_data_" in p.name
        and p.name[2:p.name.index("_data_")] in indexed
        for p in module.inputs)


def cosim_instruction(artifact: IsaxArtifact, name: str, state: ArchState,
                      field_values: Dict[str, int],
                      sim_engine: str = "auto") -> CosimResult:
    """Co-simulate one instruction against a *copy* of ``state``."""
    functionality = artifact.artifact(name)
    isa = artifact.isa
    encoding = isa.instructions[name].encoding
    word = encoding.encode(field_values)

    # --- golden execution on a snapshot -------------------------------------
    golden_state = _fork_state(state)
    interp = CoreDSLInterpreter(isa)
    effects = interp.execute_instruction(golden_state, name, word)

    # --- RTL execution with memory/register read feedback -------------------
    module = functionality.module
    inputs = _instruction_inputs(module, state, field_values, word)

    outputs = _steady_outputs(functionality, inputs, sim_engine)
    for _round in range(3):
        changed = False
        read_addr = _find_output(outputs, "mem_raddr")
        if read_addr is not None:
            size = next(
                (p.width for p in module.inputs
                 if p.name.startswith("mem_rdata")), 32
            )
            data = state.read_mem(read_addr, size // 8)
            for port in module.inputs:
                if port.name.startswith("mem_rdata"):
                    if inputs.get(port.name) != data:
                        inputs[port.name] = data
                        changed = True
        for port in module.outputs:
            # Indexed custom-register reads: feed data for the index.
            if port.name.startswith("rd") and "_addr_" in port.name:
                reg = port.name[2:port.name.index("_addr_")]
                if reg in state.custom:
                    index = outputs[port.name]
                    data = state.read_custom(reg, index)
                    for in_port in module.inputs:
                        if in_port.name.startswith(f"rd{reg}_data"):
                            if inputs.get(in_port.name) != data:
                                inputs[in_port.name] = data
                                changed = True
        if not changed:
            break
        outputs = _steady_outputs(functionality, inputs, sim_engine)

    return _compare(functionality, effects, outputs, state, golden_state,
                    inputs)


def cosim_always(artifact: IsaxArtifact, name: str,
                 state: ArchState, sim_engine: str = "auto") -> CosimResult:
    """Co-simulate one always-block evaluation (single combinational
    cycle)."""
    functionality = artifact.artifact(name)
    isa = artifact.isa
    golden_state = _fork_state(state)
    interp = CoreDSLInterpreter(isa)
    effects = interp.execute_always(golden_state, name)

    module = functionality.module
    inputs = _always_inputs(module, state)
    outputs = RTLSimulator(module, engine=sim_engine).step(inputs)
    return _compare(functionality, effects, outputs, state, golden_state,
                    inputs)


def _compare(functionality: FunctionalityArtifact, effects: List[Effect],
             outputs: Dict[str, int], pre: ArchState,
             post: ArchState,
             inputs: Optional[Dict[str, int]] = None) -> CosimResult:
    mismatches: List[Mismatch] = []

    def check(kind: str, expect_value: Optional[int], data_prefix: str,
              valid_prefix: str, width: int = 32) -> None:
        valid = _find_output(outputs, valid_prefix)
        data = _find_output(outputs, data_prefix)
        if expect_value is None:
            if valid not in (None, 0):
                mismatches.append(Mismatch(
                    kind, f"RTL asserts {valid_prefix}* but the golden "
                          "model performs no such write"))
            return
        if data is None:
            mismatches.append(Mismatch(
                kind, f"module has no {data_prefix}* output"))
            return
        if valid == 0:
            mismatches.append(Mismatch(
                kind, f"golden model writes {expect_value:#x} but the RTL "
                      f"valid bit is low"))
            return
        if to_unsigned(data, width) != to_unsigned(expect_value, width):
            mismatches.append(Mismatch(
                kind, f"value mismatch: rtl={data:#x} "
                      f"golden={to_unsigned(expect_value, width):#x}"))

    gpr = next((e for e in effects if e.kind == "gpr"), None)
    check("gpr", gpr.value if gpr else None, "wrrd_data", "wrrd_valid")

    pc = next((e for e in effects if e.kind == "pc"), None)
    check("pc", pc.value if pc else None, "wrpc_data", "wrpc_valid")

    mem = next((e for e in effects if e.kind == "mem"), None)
    if mem is not None:
        check("mem.data", mem.value, "mem_wdata", "mem_wvalid",
              width=mem.width)
        waddr = _find_output(outputs, "mem_waddr")
        if waddr is not None and waddr != mem.index:
            mismatches.append(Mismatch(
                "mem.addr", f"rtl={waddr:#x} golden={mem.index:#x}"))
    else:
        check("mem", None, "mem_wdata", "mem_wvalid")

    for effect in effects:
        if effect.kind != "custom":
            continue
        check(f"custom.{effect.name}", effect.value,
              f"wr{effect.name}_data", f"wr{effect.name}_valid",
              width=effect.width)

    return CosimResult(
        functionality=functionality.name,
        matches=not mismatches,
        mismatches=mismatches,
        golden_effects=effects,
        rtl_outputs=outputs,
        rtl_inputs=dict(inputs or {}),
    )


def _cosim_instruction_batch(artifact: IsaxArtifact, name: str,
                             specs) -> List[CosimResult]:
    """Run every (state, fields) trial of one instruction as one lane of
    a single batched steady-state evaluation.  Only valid for datapaths
    without read feedback (see :func:`_needs_feedback`)."""
    from repro.sim.batch import BatchedSimulator  # deferred: numpy

    functionality = artifact.artifact(name)
    isa = artifact.isa
    encoding = isa.instructions[name].encoding
    module = functionality.module
    goldens = []
    vectors: List[Dict[str, int]] = []
    for state, fields in specs:
        word = encoding.encode(fields)
        golden_state = _fork_state(state)
        effects = CoreDSLInterpreter(isa).execute_instruction(
            golden_state, name, word)
        goldens.append((effects, golden_state))
        vectors.append(_instruction_inputs(module, state, fields, word))
    depth = functionality.schedule.makespan + 2
    outs = BatchedSimulator(module).run_const(vectors, depth)
    return [
        _compare(functionality, effects, outputs, state, golden_state,
                 inputs)
        for (state, _), (effects, golden_state), inputs, outputs
        in zip(specs, goldens, vectors, outs)
    ]


def _cosim_always_batch(artifact: IsaxArtifact, name: str,
                        states) -> List[CosimResult]:
    """Run every always-block trial as one lane of a single-cycle batch."""
    from repro.sim.batch import BatchedSimulator  # deferred: numpy

    functionality = artifact.artifact(name)
    isa = artifact.isa
    module = functionality.module
    goldens = []
    vectors: List[Dict[str, int]] = []
    for state in states:
        golden_state = _fork_state(state)
        effects = CoreDSLInterpreter(isa).execute_always(golden_state, name)
        goldens.append((effects, golden_state))
        vectors.append(_always_inputs(module, state))
    outs = BatchedSimulator(module).run_const(vectors, 1)
    return [
        _compare(functionality, effects, outputs, state, golden_state,
                 inputs)
        for state, (effects, golden_state), inputs, outputs
        in zip(states, goldens, vectors, outs)
    ]


@dataclasses.dataclass
class VerificationReport:
    """Aggregate outcome of :func:`verify_artifact`."""

    artifact: str
    core: str
    trials: int
    failures: List[CosimResult]
    #: RNG seed the trials were drawn from; re-running with the same seed
    #: (and trial count) reproduces every stimulus exactly.
    seed: int = 0
    #: VCD waveforms dumped for failing trials (when ``vcd_dir`` was given).
    vcd_paths: List[str] = dataclasses.field(default_factory=list)
    #: Trials evaluated lane-parallel through the batched engine; only
    #: populated when ``sim_engine="batched"``.
    batched_trials: int = 0
    #: Trials that needed the scalar read-feedback fixpoint and fell back
    #: to the per-trial path despite ``sim_engine="batched"``.
    scalar_fallbacks: int = 0

    @property
    def passed(self) -> bool:
        return not self.failures

    def __str__(self) -> str:
        status = "PASS" if self.passed else f"FAIL ({len(self.failures)})"
        batching = ""
        if self.batched_trials or self.scalar_fallbacks:
            batching = (f"{self.batched_trials} batched/"
                        f"{self.scalar_fallbacks} scalar-fallback, ")
        return (f"co-simulation of '{self.artifact}' on {self.core}: "
                f"{self.trials} trials, {batching}seed={self.seed}, "
                f"{status}")


def _dump_failure_vcd(functionality: FunctionalityArtifact,
                      result: CosimResult, vcd_dir: str, artifact_name: str,
                      core_name: str, seed: int, trial: int,
                      sim_engine: str = "auto") -> str:
    """Trace the failing stimulus through the module and save a VCD next to
    the report, so the waveform is not discarded with the trial."""
    from repro.sim.vcd import VCDTracer  # deferred: keeps cosim import-light

    tracer = VCDTracer(functionality.module, engine=sim_engine)
    depth = functionality.schedule.makespan + 2
    for _ in range(depth):
        tracer.step(result.rtl_inputs)
    os.makedirs(vcd_dir, exist_ok=True)
    path = os.path.join(
        vcd_dir,
        f"{artifact_name}-{core_name}-{result.functionality}"
        f"-seed{seed}-trial{trial}.vcd",
    )
    tracer.save(path)
    return path


def verify_artifact(artifact: IsaxArtifact, trials: int = 25,
                    seed: int = 0,
                    vcd_dir: Optional[str] = None,
                    sim_engine: str = "auto") -> VerificationReport:
    """Randomized co-simulation of every functionality in an artifact.

    ``seed`` is recorded in the report (and its printed line) so any
    mismatch is reproducible from the output alone; with ``vcd_dir`` set,
    each failing trial's waveform is saved as a VCD file there instead of
    being discarded.  ``sim_engine`` selects the RTL simulation engine
    (``auto``/``interp``/``compiled``/``batched``, see
    :mod:`repro.sim.compile`).  With ``batched``, each functionality's
    trials run lane-parallel through one numpy evaluation unless its
    datapath needs read feedback, in which case they fall back to the
    scalar per-trial path; the report counts both populations.  Stimuli
    are drawn in the same RNG order either way, so a seed reproduces the
    exact trial set regardless of engine.
    """
    rng = random.Random(seed)
    failures: List[CosimResult] = []
    vcd_paths: List[str] = []
    total = 0
    batched_trials = 0
    scalar_fallbacks = 0
    batch = sim_engine == "batched"
    for name, functionality in artifact.functionalities.items():
        is_instr = functionality.kind == "instruction"
        encoding = (artifact.isa.instructions[name].encoding
                    if is_instr else None)
        # Draw every trial's stimulus upfront, in the exact per-trial
        # order of the scalar path, so the RNG stream (and therefore the
        # trial set for a given seed) is engine-independent.
        specs = []
        for _ in range(trials):
            state = ArchState(artifact.isa)
            for index in range(1, 32):
                state.write_x(index, rng.getrandbits(32))
            state.pc = rng.getrandbits(32) & ~3
            for reg in state.custom:
                for element in range(len(state.custom[reg])):
                    state.write_custom(reg, rng.getrandbits(32), element)
            for _ in range(64):
                state.write_mem_byte(rng.getrandbits(32), rng.getrandbits(8))
            fields = None
            if is_instr:
                fields = {
                    fname: rng.getrandbits(field.width)
                    for fname, field in encoding.fields.items()
                }
                for reg_field in ("rs1", "rs2", "rd"):
                    if reg_field in fields:
                        fields[reg_field] = rng.randrange(32)
            specs.append((state, fields))
        if batch and not _needs_feedback(functionality.module):
            if is_instr:
                results = _cosim_instruction_batch(artifact, name, specs)
            else:
                results = _cosim_always_batch(
                    artifact, name, [state for state, _ in specs])
            batched_trials += len(specs)
        else:
            if batch:
                scalar_fallbacks += len(specs)
            results = []
            for state, fields in specs:
                if is_instr:
                    results.append(cosim_instruction(
                        artifact, name, state, fields,
                        sim_engine=sim_engine))
                else:
                    results.append(cosim_always(
                        artifact, name, state, sim_engine=sim_engine))
        for result in results:
            total += 1
            if not result.matches:
                failures.append(result)
                if vcd_dir is not None:
                    vcd_paths.append(_dump_failure_vcd(
                        functionality, result, vcd_dir, artifact.name,
                        artifact.core_name, seed, total,
                        sim_engine=sim_engine,
                    ))
    return VerificationReport(
        artifact=artifact.name,
        core=artifact.core_name,
        trials=total,
        failures=failures,
        seed=seed,
        vcd_paths=vcd_paths,
        batched_trials=batched_trials,
        scalar_fallbacks=scalar_fallbacks,
    )
