"""Golden-model interpreter for CoreDSL behaviors.

Executes the decorated AST of an elaborated ISA directly against an
architectural state, with the value semantics guaranteed by the type system
(operators never overflow; casts truncate/reinterpret).  Serves as:

* the reference model for co-simulation against the generated RTL,
* the ISAX executor inside the RV32I instruction-set simulator,
* the always-block evaluator of the core timing models.

Every architectural-state update is also recorded as an :class:`Effect` so
tests can compare "what the hardware did" against "what the language says".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.frontend import ast_nodes as ast
from repro.frontend.elaboration import ElaboratedISA
from repro.frontend.typecheck import StateInfo, range_width
from repro.frontend.types import IntType
from repro.utils.bits import extract_bits, to_signed, to_unsigned
from repro.utils.diagnostics import CoreDSLError


@dataclasses.dataclass
class Effect:
    """One architectural-state update performed by a behavior."""

    kind: str                  # "gpr" | "pc" | "mem" | "custom"
    name: str
    index: Optional[int]
    value: int                 # unsigned bit-pattern
    width: int
    spawned: bool = False


class ArchState:
    """Architectural state visible to CoreDSL behaviors."""

    def __init__(self, isa: Optional[ElaboratedISA] = None):
        self.xregs: List[int] = [0] * 32
        self.pc: int = 0
        self.memory: Dict[int, int] = {}
        self.custom: Dict[str, List[int]] = {}
        self.custom_widths: Dict[str, int] = {}
        if isa is not None:
            self.add_custom_state(isa)

    def add_custom_state(self, isa: ElaboratedISA) -> None:
        """Instantiate the custom registers of (another) ISAX; registers
        with the same name are shared (paper Section 6: shared state between
        ISAXes is supported)."""
        for info in isa.custom_state():
            if info.name in self.custom:
                continue
            size = info.size or 1
            values = [0] * size
            if info.init_values:
                for i, value in enumerate(info.init_values[:size]):
                    values[i] = value
            self.custom[info.name] = values
            self.custom_widths[info.name] = info.element.width

    # -- general-purpose registers ------------------------------------------
    def read_x(self, index: int) -> int:
        return 0 if index == 0 else self.xregs[index % 32]

    def write_x(self, index: int, value: int) -> None:
        if index % 32 != 0:
            self.xregs[index % 32] = to_unsigned(value, 32)

    # -- memory ---------------------------------------------------------------
    def read_mem_byte(self, address: int) -> int:
        return self.memory.get(to_unsigned(address, 32), 0)

    def write_mem_byte(self, address: int, value: int) -> None:
        self.memory[to_unsigned(address, 32)] = to_unsigned(value, 8)

    def read_mem(self, address: int, num_bytes: int) -> int:
        value = 0
        for i in range(num_bytes - 1, -1, -1):
            value = (value << 8) | self.read_mem_byte(address + i)
        return value

    def write_mem(self, address: int, value: int, num_bytes: int) -> None:
        for i in range(num_bytes):
            self.write_mem_byte(address + i, (value >> (8 * i)) & 0xFF)

    # -- custom registers --------------------------------------------------------
    def read_custom(self, name: str, index: int = 0) -> int:
        values = self.custom[name]
        return values[index] if 0 <= index < len(values) else 0

    def write_custom(self, name: str, value: int, index: int = 0) -> None:
        values = self.custom[name]
        if 0 <= index < len(values):
            values[index] = to_unsigned(value, self.custom_widths[name])

    def snapshot(self) -> dict:
        return {
            "xregs": list(self.xregs),
            "pc": self.pc,
            "memory": dict(self.memory),
            "custom": {k: list(v) for k, v in self.custom.items()},
        }


class _Return(Exception):
    def __init__(self, value: Optional[int]):
        self.value = value


def _typed(value: int, type_: IntType) -> int:
    """Normalize a mathematical value into ``type_``'s range (wrapping)."""
    raw = to_unsigned(value, type_.width)
    return to_signed(raw, type_.width) if type_.is_signed else raw


class CoreDSLInterpreter:
    """Executes instruction behaviors and always-blocks of one ISA."""

    def __init__(self, isa: ElaboratedISA):
        self.isa = isa
        self.effects: List[Effect] = []
        self._in_spawn = False

    # ------------------------------------------------------------- entries
    def execute_instruction(self, state: ArchState, name: str,
                            word: int) -> List[Effect]:
        instr = self.isa.instructions[name]
        fields = instr.encoding.decode(word)
        self.effects = []
        self._in_spawn = False
        env = _Env(self.isa, state, fields)
        self._exec_block(env, instr.behavior)
        return self.effects

    def execute_always(self, state: ArchState, name: str) -> List[Effect]:
        block = self.isa.always_blocks[name]
        self.effects = []
        self._in_spawn = False
        env = _Env(self.isa, state, {})
        self._exec_block(env, block.body)
        return self.effects

    def match_instruction(self, word: int) -> Optional[str]:
        for name, instr in self.isa.instructions.items():
            if instr.encoding.matches(word):
                return name
        return None

    # ------------------------------------------------------------ statements
    def _exec_block(self, env: "_Env", block: ast.Stmt) -> None:
        if isinstance(block, ast.BlockStmt):
            env.push()
            for stmt in block.statements:
                self._exec_stmt(env, stmt)
            env.pop()
        else:
            self._exec_stmt(env, block)

    def _exec_stmt(self, env: "_Env", stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.BlockStmt):
            self._exec_block(env, stmt)
        elif isinstance(stmt, ast.VarDecl):
            assert isinstance(stmt.decl_type, IntType)
            value = 0
            if stmt.init is not None:
                value = _typed(self._eval(env, stmt.init), stmt.decl_type)
            env.declare(stmt.name, value, stmt.decl_type)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(env, stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.FunctionCall):
                self._call(env, stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            if self._eval(env, stmt.cond):
                self._exec_block(env, stmt.then_body)
            elif stmt.else_body is not None:
                self._exec_block(env, stmt.else_body)
        elif isinstance(stmt, ast.ForStmt):
            env.push()
            if stmt.init is not None:
                self._exec_stmt(env, stmt.init)
            guard = 0
            while stmt.cond is None or self._eval(env, stmt.cond):
                self._exec_block(env, stmt.body)
                if stmt.step is not None:
                    self._exec_stmt(env, stmt.step)
                guard += 1
                if guard > 10_000_000:
                    raise CoreDSLError("runaway loop in interpreter")
            env.pop()
        elif isinstance(stmt, ast.WhileStmt):
            env.push()
            guard = 0
            if stmt.is_do_while:
                self._exec_block(env, stmt.body)
                guard += 1
            while self._eval(env, stmt.cond):
                self._exec_block(env, stmt.body)
                guard += 1
                if guard > 10_000_000:
                    raise CoreDSLError("runaway loop in interpreter")
            env.pop()
        elif isinstance(stmt, ast.SwitchStmt):
            value = self._eval(env, stmt.value)
            default = None
            for case in stmt.cases:
                if case.label is None:
                    default = case
                elif self._eval(env, case.label) == value:
                    self._exec_block(env, case.body)
                    return
            if default is not None:
                self._exec_block(env, default.body)
        elif isinstance(stmt, ast.SpawnStmt):
            was = self._in_spawn
            self._in_spawn = True
            self._exec_block(env, stmt.body)
            self._in_spawn = was
        elif isinstance(stmt, ast.ReturnStmt):
            value = None if stmt.value is None else self._eval(env, stmt.value)
            raise _Return(value)
        else:
            raise CoreDSLError(f"cannot interpret {type(stmt).__name__}")

    def _exec_assign(self, env: "_Env", stmt: ast.Assign) -> None:
        if stmt.op == "=":
            value = self._eval(env, stmt.value)
        else:
            lhs = self._eval(env, stmt.target)
            rhs = self._eval(env, stmt.value)
            value = _apply_binop(stmt.op[:-1], lhs, rhs)
        target = stmt.target
        if isinstance(target, ast.Identifier):
            if env.is_local(target.name):
                env.assign(target.name, value)
                return
            info = self._state_of(env, target.name)
            if info is not None and info.kind == "scalar_reg":
                self._write_state(env, info, value, None)
                return
            raise CoreDSLError(f"cannot assign '{target.name}'")
        if isinstance(target, ast.IndexExpr):
            assert isinstance(target.base, ast.Identifier)
            info = self._state_of(env, target.base.name)
            if info is None:
                raise CoreDSLError("unsupported assignment target")
            index = self._eval(env, target.index)
            self._write_state(env, info, value, index)
            return
        if isinstance(target, ast.RangeExpr):
            assert isinstance(target.base, ast.Identifier)
            info = self._state_of(env, target.base.name)
            if info is None or info.kind != "mem":
                raise CoreDSLError("unsupported range assignment")
            low = self._eval(env, target.lo)
            count = range_width(target.hi, target.lo, env.const_view())
            env.state.write_mem(low, to_unsigned(value, count * 8), count)
            self.effects.append(Effect(
                "mem", info.name, to_unsigned(low, 32),
                to_unsigned(value, count * 8), count * 8, self._in_spawn,
            ))
            return
        raise CoreDSLError("unsupported assignment target")

    def _write_state(self, env: "_Env", info: StateInfo, value: int,
                     index: Optional[int]) -> None:
        state = env.state
        width = info.element.width
        raw = to_unsigned(value, width)
        if info.is_pc:
            state.pc = raw
            self.effects.append(Effect("pc", "PC", None, raw, 32,
                                       self._in_spawn))
        elif info.is_main_reg:
            assert index is not None
            state.write_x(index, raw)
            self.effects.append(Effect("gpr", "X", index, raw, 32,
                                       self._in_spawn))
        elif info.is_main_mem:
            assert index is not None
            state.write_mem_byte(index, raw)
            self.effects.append(Effect("mem", info.name,
                                       to_unsigned(index, 32), raw, 8,
                                       self._in_spawn))
        elif info.kind == "rom":
            raise CoreDSLError(f"cannot write constant register '{info.name}'")
        else:
            state.write_custom(info.name, raw, index or 0)
            self.effects.append(Effect("custom", info.name, index or 0, raw,
                                       width, self._in_spawn))

    # ----------------------------------------------------------- expressions
    def _state_of(self, env: "_Env", name: str) -> Optional[StateInfo]:
        if env.is_local(name) or name in env.fields:
            return None
        return self.isa.state.get(name)

    def _eval(self, env: "_Env", expr: ast.Expr) -> int:
        if isinstance(expr, ast.IntLiteral):
            if expr.explicit_type is not None and expr.explicit_type.is_signed:
                return to_signed(expr.value, expr.explicit_type.width)
            return expr.value
        if isinstance(expr, ast.BoolLiteral):
            return int(expr.value)
        if isinstance(expr, ast.Identifier):
            return self._eval_identifier(env, expr)
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "&&":
                return int(bool(self._eval(env, expr.lhs))
                           and bool(self._eval(env, expr.rhs)))
            if expr.op == "||":
                return int(bool(self._eval(env, expr.lhs))
                           or bool(self._eval(env, expr.rhs)))
            if expr.op == "::":
                lhs = self._eval(env, expr.lhs)
                rhs = self._eval(env, expr.rhs)
                lw = expr.lhs.ctype.width
                rw = expr.rhs.ctype.width
                return (to_unsigned(lhs, lw) << rw) | to_unsigned(rhs, rw)
            lhs = self._eval(env, expr.lhs)
            rhs = self._eval(env, expr.rhs)
            return _apply_binop(expr.op, lhs, rhs)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(env, expr.operand)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return int(not operand)
            if expr.op == "~":
                # Bit-pattern complement within the operand's type.
                type_ = expr.operand.ctype
                raw = to_unsigned(operand, type_.width)
                return _typed(~raw, type_)
            raise CoreDSLError(f"cannot interpret unary '{expr.op}'")
        if isinstance(expr, ast.Conditional):
            if self._eval(env, expr.cond):
                return self._eval(env, expr.true_value)
            return self._eval(env, expr.false_value)
        if isinstance(expr, ast.Cast):
            value = self._eval(env, expr.operand)
            width = expr.target_width or expr.operand.ctype.width
            return _typed(value, IntType(width, expr.target_signed))
        if isinstance(expr, ast.FunctionCall):
            result = self._call(env, expr)
            if result is None:
                raise CoreDSLError(
                    f"void function '{expr.callee}' used as value"
                )
            return result
        if isinstance(expr, ast.IndexExpr):
            return self._eval_index(env, expr)
        if isinstance(expr, ast.RangeExpr):
            return self._eval_range(env, expr)
        raise CoreDSLError(f"cannot interpret {type(expr).__name__}")

    def _eval_identifier(self, env: "_Env", expr: ast.Identifier) -> int:
        if env.is_local(expr.name):
            return env.read(expr.name)
        if expr.name in env.fields:
            return env.fields[expr.name]
        if expr.name in self.isa.parameters:
            return self.isa.parameters[expr.name]
        info = self.isa.state.get(expr.name)
        if info is not None and info.kind == "scalar_reg":
            raw = self._read_state(env, info, None)
            return _typed(raw, info.element)
        raise CoreDSLError(f"cannot interpret identifier '{expr.name}'")

    def _read_state(self, env: "_Env", info: StateInfo,
                    index: Optional[int]) -> int:
        state = env.state
        if info.is_pc:
            return state.pc
        if info.is_main_reg:
            assert index is not None
            return state.read_x(index)
        if info.is_main_mem:
            assert index is not None
            return state.read_mem_byte(index)
        if info.kind == "rom":
            values = info.init_values or []
            idx = index or 0
            return values[idx] if 0 <= idx < len(values) else 0
        return state.read_custom(info.name, index or 0)

    def _eval_index(self, env: "_Env", expr: ast.IndexExpr) -> int:
        if isinstance(expr.base, ast.Identifier):
            info = self._state_of(env, expr.base.name)
            if info is not None and info.kind in ("array_reg", "mem", "rom"):
                index = self._eval(env, expr.index)
                raw = self._read_state(env, info, to_unsigned(index, 32))
                return _typed(raw, info.element)
            if info is not None and info.kind == "scalar_reg":
                raw = self._read_state(env, info, None)
                bit = self._eval(env, expr.index)
                return extract_bits(to_unsigned(raw, info.element.width),
                                    bit, bit)
        base = self._eval(env, expr.base)
        base_type = expr.base.ctype
        bit = self._eval(env, expr.index)
        if not 0 <= bit < base_type.width:
            return 0
        return extract_bits(to_unsigned(base, base_type.width), bit, bit)

    def _eval_range(self, env: "_Env", expr: ast.RangeExpr) -> int:
        count = range_width(expr.hi, expr.lo, env.const_view())
        if isinstance(expr.base, ast.Identifier):
            info = self._state_of(env, expr.base.name)
            if info is not None and info.kind == "mem":
                low = self._eval(env, expr.lo)
                return env.state.read_mem(low, count)
            if info is not None and info.kind in ("array_reg", "rom"):
                low = self._eval(env, expr.lo)
                value = 0
                for i in range(count - 1, -1, -1):
                    piece = self._read_state(env, info, low + i)
                    value = (value << info.element.width) | to_unsigned(
                        piece, info.element.width
                    )
                return value
            if info is not None and info.kind == "scalar_reg":
                raw = to_unsigned(self._read_state(env, info, None),
                                  info.element.width)
                low = self._eval(env, expr.lo)
                return extract_bits(raw, low + count - 1, low)
        base = self._eval(env, expr.base)
        base_type = expr.base.ctype
        low = self._eval(env, expr.lo)
        raw = to_unsigned(base, base_type.width)
        hi = min(low + count - 1, base_type.width - 1)
        if low > hi:
            return 0
        return extract_bits(raw, hi, low)

    # ------------------------------------------------------------- functions
    def _call(self, env: "_Env", call: ast.FunctionCall) -> Optional[int]:
        sig = self.isa.functions.get(call.callee)
        if sig is None:
            raise CoreDSLError(f"unknown function '{call.callee}'")
        frame = _Env(self.isa, env.state, {})
        frame.push()
        for arg, (param_name, param_type) in zip(call.args, sig.params):
            value = _typed(self._eval(env, arg), param_type)
            frame.declare(param_name, value, param_type)
        try:
            assert sig.definition.body is not None
            for stmt in sig.definition.body.statements:
                self._exec_stmt(frame, stmt)
        except _Return as ret:
            if ret.value is None or sig.return_type is None:
                return None
            return _typed(ret.value, sig.return_type)
        return None


def _apply_binop(op: str, lhs: int, rhs: int) -> int:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise CoreDSLError("division by zero")
        quotient = abs(lhs) // abs(rhs)
        return -quotient if (lhs < 0) != (rhs < 0) else quotient
    if op == "%":
        if rhs == 0:
            raise CoreDSLError("modulo by zero")
        return lhs - _apply_binop("/", lhs, rhs) * rhs
    if op == "&":
        return lhs & rhs
    if op == "|":
        return lhs | rhs
    if op == "^":
        return lhs ^ rhs
    if op == "<<":
        return lhs << rhs
    if op == ">>":
        return lhs >> rhs
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    raise CoreDSLError(f"cannot interpret operator '{op}'")


class _Env:
    """Lexical environment: locals + encoding fields + the machine state."""

    def __init__(self, isa: ElaboratedISA, state: ArchState,
                 fields: Dict[str, int]):
        self.isa = isa
        self.state = state
        self.fields = fields
        self.scopes: List[Dict[str, Tuple[int, IntType]]] = []

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, value: int, type_: IntType) -> None:
        self.scopes[-1][name] = (value, type_)

    def is_local(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def read(self, name: str) -> int:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name][0]
        raise CoreDSLError(f"unbound local '{name}'")

    def assign(self, name: str, value: int) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                _old, type_ = scope[name]
                scope[name] = (_typed(value, type_), type_)
                return
        raise CoreDSLError(f"unbound local '{name}'")

    def const_view(self) -> Dict[str, int]:
        env = dict(self.isa.parameters)
        env.update(self.fields)
        for scope in self.scopes:
            for name, (value, _type) in scope.items():
                env[name] = value
        return env
