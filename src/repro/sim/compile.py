"""Netlist-to-Python compilation for the RTL simulator.

The interpreting engine in :mod:`repro.sim.rtl_sim` re-walks the
``comb``/``seq`` netlist op by op every cycle, paying a dict lookup per SSA
value and a dispatch per operation.  This module removes that per-cycle
overhead: it takes the simulator's topological schedule once and
code-generates a single straight-line Python ``step`` function per module —
one local variable per SSA value, constant-folded width masks, register
state in a flat list, and the outputs dict built in one literal — then
compiles it with :func:`compile`/``exec``.

The generated function has the signature ``step(inputs, regs)`` where
``inputs`` maps input-port names to ints (missing ports read 0) and
``regs`` is the flat mutable register-state list; it returns the
output-port dict observed before the clock edge and updates ``regs`` in
place.  :class:`~repro.sim.rtl_sim.RTLSimulator` wraps it behind the usual
``step``/``run``/``reset``/``output`` API via ``engine="compiled"``.

A second code generator, :func:`compile_module_batch`, emits a vectorized
``step_batch(inputs, regs, n)`` evaluating N independent stimulus lanes at
once over numpy arrays (see :class:`~repro.sim.batch.BatchedSimulator` and
``docs/simulation.md`` for the lane layout).

Both compilers are memoized per :class:`HWModule`: repeated simulator
construction over the same netlist — the cosim memory-feedback fixpoint
re-simulates each module up to 4x per trial, and ``verify_artifact`` runs
dozens of trials — re-codegens nothing.  The cache is keyed by module
identity *and* guarded by a structural digest, so in-place netlist edits
(e.g. a test corrupting a ROM constant) invalidate the entry instead of
resurrecting stale code.

Semantics are bit-identical to the interpreter by construction (the same
evaluation rules from :mod:`repro.dialects.comb` are either inlined or
called as helpers), and :func:`crosscheck_engines` packages the
engine-equivalence comparison as a reusable differential oracle.
"""

from __future__ import annotations

import random
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.absint import RangeFacts, analyze_module, slice_source
from repro.dialects import comb
from repro.dialects.hw import HWModule
from repro.ir.core import IRError, Operation
from repro.utils.bits import mask

#: Engine selector values accepted by RTLSimulator/cosim/CLI/server.
SIM_ENGINES = ("auto", "interp", "compiled", "batched")

#: Widest value a lane of the batched engine holds in a native ``uint64``
#: numpy array; wider values fall back to object-dtype lanes of Python ints.
BATCH_NATIVE_WIDTH = 64


def resolve_engine(engine: str) -> str:
    if engine not in SIM_ENGINES:
        raise IRError(
            f"unknown sim engine {engine!r}; expected one of {SIM_ENGINES}"
        )
    return engine


class CompiledModule:
    """One compiled module: the generated ``step`` plus its metadata."""

    __slots__ = ("module", "source", "step", "register_ops")

    def __init__(self, module: HWModule, source: str, step,
                 register_ops: List[Operation]):
        self.module = module
        self.source = source
        self.step = step
        self.register_ops = register_ops


class BatchCompiledModule:
    """One batch-compiled module: the generated ``step_batch`` + metadata.

    ``step_batch(inputs, regs, n)`` takes a tuple of per-input-port numpy
    arrays (pre-masked, in ``input_ports`` order), the per-register lane
    list and the lane count; it returns a tuple of per-output-port arrays
    (in ``output_names`` order) and rebinds ``regs`` entries in place at
    the clock edge.  The ``*_kinds`` lists describe each lane's dtype
    ('b' bool / 'u' uint64 / 'o' object).
    """

    __slots__ = ("module", "source", "step_batch", "register_ops",
                 "register_kinds", "register_widths", "input_ports",
                 "input_kinds", "input_widths", "output_names",
                 "output_kinds", "output_widths")

    def __init__(self, module: HWModule, source: str, step_batch,
                 register_ops: List[Operation],
                 register_kinds: List[str], register_widths: List[int],
                 input_ports: List[str], input_kinds: List[str],
                 input_widths: List[int], output_names: List[str],
                 output_kinds: List[str], output_widths: List[int]):
        self.module = module
        self.source = source
        self.step_batch = step_batch
        self.register_ops = register_ops
        self.register_kinds = register_kinds
        self.register_widths = register_widths
        self.input_ports = input_ports
        self.input_kinds = input_kinds
        self.input_widths = input_widths
        self.output_names = output_names
        self.output_kinds = output_kinds
        self.output_widths = output_widths


# ---------------------------------------------------------------------------
# Per-module memoization
# ---------------------------------------------------------------------------

class _ModuleCacheEntry:
    __slots__ = ("digest", "order", "compiled", "batched")

    def __init__(self, digest: Tuple[str, ...], order: List[Operation]):
        self.digest = digest
        self.order = order
        self.compiled: Optional[CompiledModule] = None
        self.batched: Optional[BatchCompiledModule] = None


_MODULE_CACHE: "weakref.WeakKeyDictionary[HWModule, _ModuleCacheEntry]" = \
    weakref.WeakKeyDictionary()
_CACHE_LOCK = threading.RLock()
#: Codegen invocation counters, exposed for the memoization regression
#: tests and benchmarks.
CODEGEN_COUNTS: Dict[str, int] = {"scalar": 0, "batched": 0, "schedules": 0}


def _netlist_digest(module: HWModule) -> Tuple[str, ...]:
    """Structural fingerprint of the netlist: op kinds, connectivity,
    result widths and attributes (plus port shapes).  Cheap enough to
    recompute per simulator construction; any in-place edit changes it."""
    index: Dict[object, int] = {}
    parts: List[str] = [
        ",".join(f"{p.name}:{p.direction}:{p.width}" for p in module.ports)
    ]
    for op in module.body.operations:
        operands = ",".join(
            str(index.get(operand, -1)) for operand in op.operands)
        for value in op.results:
            index[value] = len(index)
        attrs = repr(sorted(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in op.attributes.items()))
        widths = ",".join(str(r.width) for r in op.results)
        parts.append(f"{op.name}({operands})->{widths}{attrs}")
    return tuple(parts)


def _cache_entry(module: HWModule) -> _ModuleCacheEntry:
    """The module's cache entry, (re)built when the netlist changed."""
    digest = _netlist_digest(module)
    with _CACHE_LOCK:
        entry = _MODULE_CACHE.get(module)
        if entry is None or entry.digest != digest:
            from repro.sim.rtl_sim import RTLSimulator
            CODEGEN_COUNTS["schedules"] += 1
            entry = _ModuleCacheEntry(digest, RTLSimulator._schedule(module))
            _MODULE_CACHE[module] = entry
        return entry


def cached_schedule(module: HWModule) -> List[Operation]:
    """Register-first topological schedule, memoized per module."""
    return _cache_entry(module).order


def clear_compile_cache() -> None:
    """Drop all memoized compiles and reset the counters (tests only)."""
    with _CACHE_LOCK:
        _MODULE_CACHE.clear()
        for key in CODEGEN_COUNTS:
            CODEGEN_COUNTS[key] = 0


def compile_cache_stats() -> Dict[str, int]:
    """Snapshot of the codegen counters (for tests/benchmarks)."""
    with _CACHE_LOCK:
        return dict(CODEGEN_COUNTS)


# Signed comparisons on w-bit unsigned patterns: XORing each side with its
# own operand's sign bit maps two's-complement order onto unsigned order,
# so the generated code stays branch-free.  Division/modulo/arithmetic-
# shift keep the shared helpers (they are rare in real netlists and not
# worth inlining).
_SIGNED_ICMP = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_UNSIGNED_ICMP = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
                  "ugt": ">", "uge": ">="}


def compile_module(module: HWModule,
                   order: Optional[List[Operation]] = None) -> CompiledModule:
    """Code-generate and compile the per-cycle ``step`` for ``module``.

    Memoized per module (digest-guarded): repeat calls on an unchanged
    netlist return the same :class:`CompiledModule` without re-codegen.
    ``order`` is the register-first topological schedule; when omitted (or
    when it equals the memoized schedule) the cached one is used.  Raises
    :class:`IRError` on operations without a generation rule.
    """
    with _CACHE_LOCK:
        entry = _cache_entry(module)
        if order is not None and order != entry.order:
            # Caller-supplied nonstandard schedule: compile fresh, uncached.
            return _codegen_scalar(module, order)
        if entry.compiled is None:
            entry.compiled = _codegen_scalar(module, entry.order)
        return entry.compiled


def _codegen_scalar(module: HWModule,
                    order: List[Operation]) -> CompiledModule:
    CODEGEN_COUNTS["scalar"] += 1
    names: Dict[object, str] = {}          # Value -> local variable name
    env: Dict[str, object] = {
        "_divu": comb._eval_divu,
        "_divs": comb._eval_divs,
        "_modu": comb._eval_modu,
        "_mods": comb._eval_mods,
        "_shrs": comb._eval_shrs,
    }
    lines: List[str] = []
    outputs: List[str] = []                # "'name': vN" dict entries
    register_ops: List[Operation] = []

    def ref(value) -> str:
        try:
            return names[value]
        except KeyError:
            raise IRError(
                f"module '{module.name}': operand of unscheduled origin"
            ) from None

    def define(op: Operation) -> str:
        name = f"v{len(names)}"
        names[op.result] = name
        return name

    for op in order:
        kind = op.name
        if kind == "hw.input":
            port = module.port(op.attr("name"))
            lines.append(
                f"    {define(op)} = inputs.get({port.name!r}, 0)"
                f" & {mask(port.width):#x}"
            )
        elif kind == "hw.output":
            outputs.append(f"{op.attr('name')!r}: {ref(op.operands[0])}")
        elif kind == "seq.compreg":
            lines.append(f"    {define(op)} = regs[{len(register_ops)}]")
            register_ops.append(op)
        else:
            lines.append(f"    {define(op)} = {_expression(op, ref, env)}")

    body = lines or ["    pass"]
    body.append("    _outputs = {" + ", ".join(outputs) + "}")
    # Clock edge: every register's cycle value is already in a local, so
    # in-place updates cannot disturb other registers' data expressions.
    for index, op in enumerate(register_ops):
        data = ref(op.operands[0])
        if len(op.operands) == 2:
            body.append(f"    if {ref(op.operands[1])}:")
            body.append(f"        regs[{index}] = {data}")
        else:
            body.append(f"    regs[{index}] = {data}")
    body.append("    return _outputs")
    source = "def _step(inputs, regs):\n" + "\n".join(body) + "\n"

    code = compile(source, f"<rtl-sim:{module.name}>", "exec")
    exec(code, env)  # noqa: S102 - generated from the verified netlist only
    return CompiledModule(module, source, env["_step"], register_ops)


def _expression(op: Operation, ref, env: Dict[str, object]) -> str:
    """Python expression computing ``op`` from already-masked operands.

    Invariant: every local holds its value masked to its width, so purely
    width-preserving operators (and/or/xor/mux/...) need no re-masking and
    the masks that remain are folded to literals at compile time.
    """
    kind = op.name
    width = op.result.width
    m = f"{mask(width):#x}"
    operands = [ref(value) for value in op.operands]
    if kind == "comb.constant":
        return f"{op.attr('value') & mask(width):#x}"
    if kind in ("comb.add", "comb.sub", "comb.mul"):
        sign = {"comb.add": "+", "comb.sub": "-", "comb.mul": "*"}[kind]
        return f"({operands[0]} {sign} {operands[1]}) & {m}"
    if kind == "comb.and":
        return f"{operands[0]} & {operands[1]}"
    if kind == "comb.or":
        return f"{operands[0]} | {operands[1]}"
    if kind == "comb.xor":
        return f"{operands[0]} ^ {operands[1]}"
    if kind == "comb.not":
        return f"{operands[0]} ^ {m}"
    if kind == "comb.divu":
        return f"({operands[0]} // {operands[1]} if {operands[1]} else {m})"
    if kind == "comb.modu":
        return (f"({operands[0]} % {operands[1]} if {operands[1]} "
                f"else {operands[0]})")
    if kind in ("comb.divs", "comb.mods", "comb.shrs"):
        helper = {"comb.divs": "_divs", "comb.mods": "_mods",
                  "comb.shrs": "_shrs"}[kind]
        return f"{helper}({operands[0]}, {operands[1]}, {width})"
    if kind == "comb.shl":
        return (f"(({operands[0]} << {operands[1]}) & {m} "
                f"if {operands[1]} < {width} else 0)")
    if kind == "comb.shru":
        return (f"({operands[0]} >> {operands[1]} "
                f"if {operands[1]} < {width} else 0)")
    if kind == "comb.icmp":
        predicate = op.attr("predicate")
        a, b = operands
        if predicate in _UNSIGNED_ICMP:
            return f"(1 if {a} {_UNSIGNED_ICMP[predicate]} {b} else 0)"
        # Per-operand sign bits: operand widths are equal on verified IR,
        # but ops are simulated before verification too (hand-built and
        # fuzz-reduced netlists), and borrowing operand 0's sign bit for
        # operand 1 would silently mis-sign the comparison.
        wa = op.operands[0].width
        wb = op.operands[1].width
        sign_a = f"{1 << (wa - 1):#x}"
        sign_b = f"{1 << (wb - 1):#x}"
        if wa == wb:
            return (f"(1 if ({a} ^ {sign_a}) {_SIGNED_ICMP[predicate]} "
                    f"({b} ^ {sign_b}) else 0)")
        # The XOR bias only preserves order when both biases are equal;
        # across widths, compare the true signed values ((v^s)-s is the
        # two's-complement reading of the w-bit pattern v).
        return (f"(1 if (({a} ^ {sign_a}) - {sign_a}) "
                f"{_SIGNED_ICMP[predicate]} "
                f"(({b} ^ {sign_b}) - {sign_b}) else 0)")
    if kind == "comb.mux":
        return f"({operands[1]} if {operands[0]} else {operands[2]})"
    if kind == "comb.extract":
        low = op.attr("low")
        shifted = operands[0] if low == 0 else f"({operands[0]} >> {low})"
        if low + width == op.operands[0].width:
            return shifted if low else operands[0]
        return f"{shifted} & {m}"
    if kind == "comb.concat":
        out = operands[0]
        for value, text in zip(op.operands[1:], operands[1:]):
            out = f"({out} << {value.width} | {text})"
        return out
    if kind == "comb.replicate":
        # value * 0b...0001_0001 concatenates the copies in one multiply.
        chunk_width = op.operands[0].width
        times = width // chunk_width
        repunit = sum(1 << (chunk_width * i) for i in range(times))
        return f"{operands[0]} * {repunit:#x}"
    if kind == "comb.rom":
        table_name = f"_rom{len(env)}"
        env[table_name] = tuple(v & mask(width) for v in op.attr("values"))
        return (f"({table_name}[{operands[0]}] "
                f"if {operands[0]} < {len(env[table_name])} else 0)")
    raise IRError(f"no compilation rule for '{kind}'")


# ---------------------------------------------------------------------------
# Batched code generation: N stimulus lanes per numpy operation
# ---------------------------------------------------------------------------
#
# Lane layout (see docs/simulation.md):
#
# * width == 1   -> bool lanes (numpy bool_): icmp results, valid bits and
#                   mux conditions never pay an int round trip;
# * width <= 64  -> uint64 lanes.  +,-,* evaluate mod 2^64 and are masked
#                   *lazily*: reduction Z/2^64 -> Z/2^w is a ring
#                   homomorphism for w <= 64, so junk above a value's
#                   width is only cleared where the exact pattern is
#                   observable (outputs, registers, shift/div/cmp/concat/
#                   rom operands).  Width-64 values are always exact
#                   (native wraparound);
# * width > 64   -> object-dtype lanes of Python ints, masked eagerly
#                   (the arbitrary-precision fallback).
#
# All numeric constants are hoisted into the function globals as numpy
# scalars so the straight-line body is nothing but array expressions.

def batch_kind(width: int) -> str:
    """Lane kind for a value width: 'b' bool, 'u' uint64, 'o' object."""
    if width == 1:
        return "b"
    return "u" if width <= BATCH_NATIVE_WIDTH else "o"


def compile_module_batch(
        module: HWModule,
        order: Optional[List[Operation]] = None) -> BatchCompiledModule:
    """Code-generate and compile the vectorized ``step_batch``.

    Memoized per module exactly like :func:`compile_module`.  Raises
    :class:`IRError` on operations without a generation rule.
    """
    with _CACHE_LOCK:
        entry = _cache_entry(module)
        if order is not None and order != entry.order:
            return _codegen_batch(module, order)
        if entry.batched is None:
            entry.batched = _codegen_batch(module, entry.order)
        return entry.batched


class _BatchEmitter:
    """Codegen state for one ``step_batch``: SSA-value registry with lane
    kind + clean flag, cached lane conversions, and hoisted constants."""

    def __init__(self, module: HWModule, np, helpers: Dict[str, object],
                 facts: RangeFacts):
        self.module = module
        self.np = np
        self.lines: List[str] = []
        self.env: Dict[str, object] = dict(helpers)
        # Value -> [name, kind, clean]; the name is rebound when a masked
        # alias supersedes a dirty one so later users pick up the clean
        # lane for free.
        self.registry: Dict[object, List] = {}
        # Value -> known compile-time constant (masked int), for folding.
        self.consts: Dict[object, int] = {}
        # Per-value range facts from the shared abstract-interpretation
        # engine (repro.analysis.absint), memoized per module on the
        # netlist digest.  Bounds let >64-bit values whose range provably
        # fits uint64 stay off the object lanes.
        self.facts = facts
        self._aux: Dict[Tuple[str, str], str] = {}
        self._serial = 0

    # -- constants ---------------------------------------------------------
    def const(self, value, label: str) -> str:
        name = f"_k{len(self.env)}{label}"
        self.env[name] = value
        return name

    def mask_const(self, width: int, kind: str) -> str:
        name = f"_m{kind}{width}"
        if name not in self.env:
            value = mask(width)
            self.env[name] = self.np.uint64(value) if kind == "u" else value
        return name

    def shift_const(self, amount: int, kind: str) -> str:
        name = f"_s{kind}{amount}"
        if name not in self.env:
            self.env[name] = (self.np.uint64(amount) if kind == "u"
                              else amount)
        return name

    # -- SSA values --------------------------------------------------------
    def define(self, op: Operation, kind: str, clean: bool,
               expr: str) -> str:
        name = f"v{self._serial}"
        self._serial += 1
        self.registry[op.result] = [name, kind, clean]
        self.lines.append(f"    {name} = {expr}")
        return name

    def alias(self, op: Operation, value) -> None:
        """Result is bit-identical to an existing value: share the lane."""
        self.registry[op.result] = self._entry(value)
        if value in self.consts:
            self.consts[op.result] = self.consts[value]

    def kind_of(self, value) -> str:
        """Lane kind the value is currently stored in."""
        return self._entry(value)[1]

    def _entry(self, value) -> List:
        try:
            return self.registry[value]
        except KeyError:
            raise IRError(
                f"module '{self.module.name}': operand of unscheduled "
                f"origin"
            ) from None

    def get(self, value, kind: Optional[str] = None,
            clean: bool = False) -> str:
        """Reference ``value`` as ``kind`` lanes (native kind when None),
        exact (masked) when ``clean``.  Conversion/masking lines are
        emitted once and cached."""
        entry = self._entry(value)
        name, have_kind, have_clean = entry
        # Lane conversions need the exact value (junk would leak through
        # astype/lift), so a kind change forces cleaning first.
        if kind is not None and kind != have_kind:
            clean = True
        if clean and not have_clean:
            key = (name, "clean")
            if key not in self._aux:
                masked = f"{name}m"
                self.lines.append(
                    f"    {masked} = {name} & "
                    f"{self.mask_const(value.width, have_kind)}")
                self._aux[key] = masked
            entry[0] = name = self._aux[key]
            entry[2] = True
        if kind is None or kind == have_kind:
            return name
        key = (name, kind)
        if key not in self._aux:
            converted = f"{name}{kind}"
            self.lines.append(
                f"    {converted} = "
                f"{self._conversion(name, have_kind, kind)}")
            self._aux[key] = converted
        return self._aux[key]

    @staticmethod
    def _conversion(name: str, src: str, dst: str) -> str:
        if src == "b" and dst == "u":
            return f"_b2u({name})"
        if dst == "o":
            return f"_lift({name})"
        if src == "o" and dst == "u":
            return f"_lower({name})"
        if dst == "b":
            return f"({name} != 0)"
        raise IRError(f"no lane conversion {src}->{dst}")

    def is_clean(self, value, kind: str) -> bool:
        """Would ``get(value, kind)`` yield an exact lane?  True for 'b'
        targets and for any kind conversion (which masks first)."""
        entry = self._entry(value)
        if kind == "b" or entry[1] != kind:
            return True
        return bool(entry[2])


#: Slice forwarding through bit-plumbing producers lives in the shared
#: analysis module (:func:`repro.analysis.absint.slice_source`) so the
#: batch codegen and the range engine resolve slices identically.
_slice_source = slice_source


def _live_operands(op: Operation):
    """Operands an op actually reads once slices are forwarded."""
    if op.name == "comb.extract":
        value, _ = _slice_source(op.operands[0], op.attr("low"),
                                 op.result.width)
        return (value,)
    return op.operands


def _codegen_batch(module: HWModule,
                   order: List[Operation]) -> BatchCompiledModule:
    import numpy as np

    from repro.sim import batch as _bh

    CODEGEN_COUNTS["batched"] += 1
    facts = analyze_module(module)
    emitter = _BatchEmitter(module, np, {
        "np": np,
        "_u64": np.uint64,
        "_bool": np.bool_,
        "_obj": object,
        "_asarray": _bh.asarray_lane,
        "_b2u": _bh.bool_to_uint64,
        "_divu": _bh.b_divu,
        "_divs": _bh.b_divs,
        "_modu": _bh.b_modu,
        "_mods": _bh.b_mods,
        "_shrs": _bh.b_shrs,
        "_shl": _bh.b_shl,
        "_shru": _bh.b_shru,
        "_rom": _bh.b_rom_take,
        "_lift": _bh.lift_object,
        "_lower": _bh.lower_uint64,
    }, facts)

    output_exprs: List[str] = []
    output_names: List[str] = []
    output_kinds: List[str] = []
    output_widths: List[int] = []
    register_ops: List[Operation] = []
    register_kinds: List[str] = []
    register_widths: List[int] = []
    input_ports: List[str] = []
    input_kinds: List[str] = []
    input_widths: List[int] = []

    # Dead-op elimination: only values reaching an output or a register
    # (data or enable) need lanes.  Register operands are seeded first —
    # their producers sit *after* them in the (register-first) schedule,
    # so a single reverse pass over the comb ops then converges.
    # Liveness runs on slice-forwarded operands (_live_operands): a wide
    # concat whose every use is a forwarded extract is dead here even
    # though it still has IR uses.
    live = set()
    for op in order:
        if op.name in ("hw.output", "seq.compreg"):
            live.update(op.operands)
    for op in reversed(order):
        if op.name in ("hw.output", "seq.compreg", "hw.input"):
            continue
        if any(result in live for result in op.results):
            live.update(_live_operands(op))

    for op in order:
        kind = op.name
        if (kind not in ("hw.input", "hw.output", "seq.compreg")
                and not any(result in live for result in op.results)):
            continue
        if kind == "hw.input":
            port = module.port(op.attr("name"))
            lane = batch_kind(port.width)
            emitter.define(op, lane, True, f"_in[{len(input_ports)}]")
            input_ports.append(port.name)
            input_kinds.append(lane)
            input_widths.append(port.width)
        elif kind == "hw.output":
            value = op.operands[0]
            output_names.append(op.attr("name"))
            output_widths.append(value.width)
            output_exprs.append(emitter.get(value, clean=True))
            output_kinds.append(emitter.registry[value][1])
        elif kind == "seq.compreg":
            lane = batch_kind(op.result.width)
            emitter.define(op, lane, True, f"regs[{len(register_ops)}]")
            register_ops.append(op)
            register_kinds.append(lane)
            register_widths.append(op.result.width)
        else:
            _batch_expression(op, emitter)

    # Resolve the clock-edge operands first: get() may still emit masking
    # or conversion lines, which must land before the body snapshot.
    edge: List[Tuple[str, Optional[str]]] = []
    for op in register_ops:
        lane = register_kinds[len(edge)]
        data = emitter.get(op.operands[0], kind=lane, clean=True)
        enable = (emitter.get(op.operands[1], kind="b")
                  if len(op.operands) == 2 else None)
        edge.append((data, enable))

    body = list(emitter.lines) or ["    pass"]
    body.append("    _outs = (" + ", ".join(output_exprs)
                + ("," if output_exprs else "") + ")")
    # Clock edge: all register reads are already bound to locals, so
    # rebinding the state arrays cannot disturb other data expressions.
    for index, (data, enable) in enumerate(edge):
        dtype = {"b": "_bool", "u": "_u64",
                 "o": "_obj"}[register_kinds[index]]
        if enable is not None:
            body.append(
                f"    regs[{index}] = np.where({enable}, {data}, "
                f"regs[{index}])")
        else:
            body.append(
                f"    regs[{index}] = _asarray({data}, _n, {dtype})")
    body.append("    return _outs")
    source = "def _step_batch(_in, regs, _n):\n" + "\n".join(body) + "\n"

    code = compile(source, f"<rtl-sim-batch:{module.name}>", "exec")
    env = emitter.env
    exec(code, env)  # noqa: S102 - generated from the verified netlist only
    return BatchCompiledModule(
        module, source, env["_step_batch"], register_ops, register_kinds,
        register_widths, input_ports, input_kinds, input_widths,
        output_names, output_kinds, output_widths)


#: One past the largest value a uint64 lane can hold exactly.
_NATIVE_LIMIT = 1 << BATCH_NATIVE_WIDTH


def _bound(e: _BatchEmitter, value) -> int:
    """Upper bound on the value's true (masked) magnitude, from the
    shared abstract-interpretation engine's per-value facts."""
    return e.facts.hi(value)


def _define_const(e: _BatchEmitter, op: Operation, value: int) -> None:
    """Bind a compile-time constant: no body line, just a hoisted global.

    Wide constants that do not fit uint64 become 0-d object arrays (not
    raw ints) so all-constant object dataflow keeps numpy operator
    semantics (notably ~ and comparisons, where Python bools would
    misbehave).
    """
    np = e.np
    rk = batch_kind(op.result.width)
    if rk == "b":
        name = e.const(np.bool_(bool(value)), "c")
    elif value < _NATIVE_LIMIT:
        rk = "u"
        name = e.const(np.uint64(value), "c")
    else:
        name = e.const(np.array(value, dtype=object), "c")
    e.registry[op.result] = [name, rk, True]
    e.consts[op.result] = value


def _batch_expression(op: Operation, e: _BatchEmitter) -> None:
    """Emit the numpy expression(s) computing ``op`` over all lanes.

    Lane selection is range-driven: ``i1`` rides bool lanes; any other
    value rides uint64 lanes unless both its type width exceeds 64 *and*
    its value-range bound (the absint engine's ``facts.hi``) can reach 2^64 —
    only then does it fall back to the object-dtype lanes.  A wide value
    stored in a uint64 lane is always exact (clean) by construction.
    """
    np = e.np
    kind = op.name
    width = op.result.width
    rk = batch_kind(width)
    wmask = mask(width)

    if kind == "comb.constant":
        _define_const(e, op, op.attr("value") & wmask)
        return

    # Constant folding: all operands known at compile time -> evaluate
    # through the reference interpreter now and hoist the result.
    if op.operands and all(v in e.consts for v in op.operands):
        try:
            value = comb.evaluate(op, [e.consts[v] for v in op.operands])
        except IRError:
            value = None
        if value is not None:
            _define_const(e, op, value & wmask)
            return

    if kind in ("comb.add", "comb.sub", "comb.mul"):
        sign = {"comb.add": "+", "comb.sub": "-", "comb.mul": "*"}[kind]
        ba = _bound(e, op.operands[0])
        bb = _bound(e, op.operands[1])
        # Only + and * are monotone in non-negative operands, so only
        # their results are bounded by the operand-bound arithmetic;
        # subtraction can wrap through the full range.
        if kind == "comb.add":
            beta = ba + bb
        elif kind == "comb.mul":
            beta = ba * bb
        else:
            beta = wmask
        no_wrap = kind != "comb.sub" and beta <= wmask
        lane = ("u" if rk != "o" or (no_wrap and beta < _NATIVE_LIMIT)
                else "o")
        wide_u = lane == "u" and rk == "o"
        # Lazy masking: + - * respect congruence mod 2^w (u lanes wrap
        # mod 2^64 first, which reduction to 2^w <= 2^64 absorbs; o lanes
        # are exact ints, possibly negative after -), so the mask is
        # deferred to an observation point.  Wide-in-u results instead
        # need exact operands and a no-wrap bound, and are exact.
        a = e.get(op.operands[0], kind=lane, clean=wide_u)
        b = e.get(op.operands[1], kind=lane, clean=wide_u)
        if wide_u:
            clean = True
        elif lane == "o":
            clean = False
        else:
            clean = width == BATCH_NATIVE_WIDTH or (
                no_wrap
                and e.is_clean(op.operands[0], "u")
                and e.is_clean(op.operands[1], "u"))
        e.define(op, lane, clean, f"({a} {sign} {b})")
        return

    if kind in ("comb.and", "comb.or", "comb.xor"):
        sign = {"comb.and": "&", "comb.or": "|", "comb.xor": "^"}[kind]
        if rk == "b":
            a = e.get(op.operands[0], kind="b")
            b = e.get(op.operands[1], kind="b")
            e.define(op, "b", True, f"({a} {sign} {b})")
            return
        ba = _bound(e, op.operands[0])
        bb = _bound(e, op.operands[1])
        if kind == "comb.and":
            beta = min(ba, bb)
        else:
            beta = mask(max(ba.bit_length(), bb.bit_length()))
        # Both operands must fit the native lane, not just the result:
        # and-with-a-narrow-mask has a small result bound but may still
        # read a full-range wide operand.
        lane = ("u" if rk != "o" or max(ba, bb) < _NATIVE_LIMIT
                else "o")
        wide_u = lane == "u" and rk == "o"
        clean_a = e.is_clean(op.operands[0], lane)
        clean_b = e.is_clean(op.operands[1], lane)
        a = e.get(op.operands[0], kind=lane, clean=wide_u)
        b = e.get(op.operands[1], kind=lane, clean=wide_u)
        if wide_u:
            clean = True
        elif kind == "comb.and":
            # One exact operand zeroes the other's junk (equal widths).
            clean = clean_a or clean_b
        else:
            clean = clean_a and clean_b
        e.define(op, lane, clean, f"({a} {sign} {b})")
        return

    if kind == "comb.not":
        if rk == "b":
            e.define(op, "b", True, f"~{e.get(op.operands[0], kind='b')}")
            return
        # XOR with the w-bit mask flips only the low bits: junk above the
        # width is untouched, so cleanliness carries over unchanged.
        lane = "o" if rk == "o" else "u"
        clean = e.is_clean(op.operands[0], lane)
        a = e.get(op.operands[0], kind=lane)
        e.define(op, lane, clean,
                 f"({a} ^ {e.mask_const(width, lane)})")
        return

    if kind in ("comb.divu", "comb.modu"):
        helper = "_divu" if kind == "comb.divu" else "_modu"
        lane = "o" if rk == "o" else "u"
        a = e.get(op.operands[0], kind=lane, clean=True)
        b = e.get(op.operands[1], kind=lane, clean=True)
        e.define(op, lane, True,
                 f"{helper}({a}, {b}, {e.mask_const(width, lane)})")
        return

    if kind in ("comb.divs", "comb.mods", "comb.shrs", "comb.shl",
                "comb.shru"):
        helper = {"comb.divs": "_divs", "comb.mods": "_mods",
                  "comb.shrs": "_shrs", "comb.shl": "_shl",
                  "comb.shru": "_shru"}[kind]
        lane = "o" if rk == "o" else "u"
        a = e.get(op.operands[0], kind=lane, clean=True)
        b = e.get(op.operands[1], kind=lane, clean=True)
        e.define(op, lane, True,
                 f"{helper}({a}, {b}, {width}, "
                 f"{e.mask_const(width, lane)})")
        return

    if kind == "comb.icmp":
        predicate = op.attr("predicate")
        wa = op.operands[0].width
        wb = op.operands[1].width
        cmp_lane = ("o" if "o" in (batch_kind(wa), batch_kind(wb))
                    else "u")
        a = e.get(op.operands[0], kind=cmp_lane, clean=True)
        b = e.get(op.operands[1], kind=cmp_lane, clean=True)
        if predicate in _UNSIGNED_ICMP:
            e.define(op, "b", True,
                     f"({a} {_UNSIGNED_ICMP[predicate]} {b})")
            return
        # Per-operand sign bits, exactly as in the scalar compiler: the
        # XOR bias maps signed onto unsigned order when the widths (and
        # therefore the biases) are equal.
        if cmp_lane == "u":
            if wa == wb:
                sa = e.const(np.uint64(1 << (wa - 1)), "s")
                sb = e.const(np.uint64(1 << (wb - 1)), "s")
                e.define(op, "b", True,
                         f"(({a} ^ {sa}) {_SIGNED_ICMP[predicate]} "
                         f"({b} ^ {sb}))")
                return
            # Unequal (pre-verification) widths: sign-extend each operand
            # to the wider width and re-bias there.  (v^s)-s wraps mod
            # 2^64; masking to the wider width makes that exact because
            # 2^max_w divides 2^64.
            w = max(wa, wb)
            bias = e.const(np.uint64(1 << (w - 1)), "s")
            wm = e.const(np.uint64(mask(w)), "s")
            sa = e.const(np.uint64(1 << (wa - 1)), "s")
            sb = e.const(np.uint64(1 << (wb - 1)), "s")
            e.define(op, "b", True,
                     f"(((({a} ^ {sa}) - {sa} + {bias}) & {wm}) "
                     f"{_SIGNED_ICMP[predicate]} "
                     f"((({b} ^ {sb}) - {sb} + {bias}) & {wm}))")
            return
        # Object lanes hold arbitrary-precision ints: compare the true
        # signed values directly (correct at any width mix).
        sa = e.const(1 << (wa - 1), "s")
        sb = e.const(1 << (wb - 1), "s")
        e.define(op, "b", True,
                 f"((({a} ^ {sa}) - {sa}) {_SIGNED_ICMP[predicate]} "
                 f"(({b} ^ {sb}) - {sb}))")
        return

    if kind == "comb.mux":
        cond = e.get(op.operands[0], kind="b")
        if rk == "b":
            t = e.get(op.operands[1], kind="b")
            f = e.get(op.operands[2], kind="b")
            e.define(op, "b", True, f"np.where({cond}, {t}, {f})")
            return
        beta = max(_bound(e, op.operands[1]), _bound(e, op.operands[2]))
        lane = "u" if rk != "o" or beta < _NATIVE_LIMIT else "o"
        wide_u = lane == "u" and rk == "o"
        # where() keeps each branch's bits verbatim, so dirt propagates.
        clean = wide_u or (e.is_clean(op.operands[1], lane)
                           and e.is_clean(op.operands[2], lane))
        t = e.get(op.operands[1], kind=lane, clean=wide_u)
        f = e.get(op.operands[2], kind=lane, clean=wide_u)
        e.define(op, lane, clean, f"np.where({cond}, {t}, {f})")
        return

    if kind == "comb.extract":
        src, low = _slice_source(op.operands[0], op.attr("low"), width)
        src_width = src.width
        if src in e.consts:
            _define_const(e, op, (e.consts[src] >> low) & wmask)
            return
        if src_width == width:
            # Full-width slice (low is 0 by construction): the identity.
            e.alias(op, src)
            return
        beta = min(wmask, _bound(e, src) >> low)
        if beta == 0:
            # The slice sits entirely above the source's value range.
            _define_const(e, op, 0)
            return
        src_lane = "o" if e.kind_of(src) == "o" else "u"
        if rk == "b":
            # Single-bit test; junk above src_width never reaches bit
            # positions < src_width, so a dirty source is fine.
            n = e.get(src, kind=src_lane)
            bit = e.const(np.uint64(1 << low) if src_lane == "u"
                          else 1 << low, "b")
            e.define(op, "b", True, f"(({n} & {bit}) != 0)")
            return
        clean_src = e.is_clean(src, src_lane)
        n = e.get(src, kind=src_lane)
        shifted = (n if low == 0
                   else f"({n} >> {e.shift_const(low, src_lane)})")
        # An exact source whose slice bound fits the result width needs
        # no mask at all.
        exact = clean_src and (_bound(e, src) >> low) <= wmask
        want_lane = "u" if rk != "o" or beta < _NATIVE_LIMIT else "o"
        if want_lane == src_lane:
            if exact:
                e.define(op, want_lane, True, shifted)
            elif low + width == src_width:
                # Junk shifts down to bit >= width: result is dirty but
                # correct modulo 2^width.
                e.define(op, want_lane, clean_src, shifted)
            else:
                e.define(op, want_lane, True,
                         f"({shifted} & "
                         f"{e.mask_const(width, src_lane)})")
        else:
            # Lane change: exact value required before converting.
            expr = (shifted if exact
                    else f"({shifted} & {e.mask_const(width, src_lane)})")
            e.define(op, want_lane, True,
                     f"_lower({expr})" if src_lane == "o"
                     else f"_lift({expr})")
        return

    if kind == "comb.concat":
        beta = 0
        for value in op.operands:
            beta = ((beta << value.width)
                    | min(_bound(e, value), mask(value.width)))
        lane = "u" if rk != "o" or beta < _NATIVE_LIMIT else "o"
        # MSB-first shift/or fold; operands with a zero value range
        # contribute nothing (their shift still positions the prefix),
        # which is what lets zero-extension concats collapse to their
        # payload.
        out: Optional[str] = None
        for value in op.operands:
            if out is not None:
                out = f"({out} << {e.shift_const(value.width, lane)})"
            if min(_bound(e, value), mask(value.width)) == 0:
                continue
            part = e.get(value, kind=lane, clean=True)
            out = part if out is None else f"({out} | {part})"
        if out is None:
            _define_const(e, op, 0)
            return
        e.define(op, lane, True, out)
        return

    if kind == "comb.replicate":
        chunk_width = op.operands[0].width
        times = width // chunk_width
        repunit = sum(1 << (chunk_width * i) for i in range(times))
        beta = min(_bound(e, op.operands[0]), mask(chunk_width)) * repunit
        if beta == 0:
            _define_const(e, op, 0)
            return
        lane = "u" if rk != "o" or beta < _NATIVE_LIMIT else "o"
        n = e.get(op.operands[0], kind=lane, clean=True)
        rep = e.const(np.uint64(repunit) if lane == "u" else repunit, "r")
        e.define(op, lane, True, f"({n} * {rep})")
        return

    if kind == "comb.rom":
        values = tuple(v & wmask for v in op.attr("values"))
        beta = max(values) if values else 0
        lane = "u" if rk != "o" or beta < _NATIVE_LIMIT else "o"
        table = e.const(
            np.array(values, dtype=(np.uint64 if lane == "u"
                                    else object)), "t")
        idx_src = op.operands[0]
        idx_kind = batch_kind(idx_src.width)
        idx = e.get(idx_src, kind=("u" if idx_kind == "b" else idx_kind),
                    clean=True)
        e.define(op, lane, True, f"_rom({table}, {idx})")
        return

    raise IRError(f"no batch compilation rule for '{kind}'")


# ---------------------------------------------------------------------------
# Differential oracle: engines against each other
# ---------------------------------------------------------------------------

def random_stimulus(module: HWModule, cycles: int,
                    seed: int = 0) -> List[Dict[str, int]]:
    """Reproducible random input trace exercising every input port."""
    rng = random.Random(seed)
    ports = module.inputs
    return [
        {port.name: rng.getrandbits(port.width) for port in ports}
        for _ in range(cycles)
    ]


def crosscheck_engines(module: HWModule, cycles: int = 32,
                       seed: int = 0,
                       engines: Sequence[str] = ("interp", "compiled"),
                       ) -> Optional[str]:
    """Run the selected engines over the same random stimulus.

    Returns ``None`` when the output traces, register counts and final
    register states agree exactly, else a human-readable mismatch
    description.  This is the standing engine-equivalence oracle used by
    the tests and the fuzz campaigns; include ``"batched"`` in ``engines``
    for the three-way parity check (the batched arm additionally runs the
    stimulus on two lanes at once, pinning down lane independence).
    """
    from repro.sim.rtl_sim import RTLSimulator

    stimulus = random_stimulus(module, cycles, seed)
    reference_name = engines[0]
    reference = RTLSimulator(module, engine=reference_name)
    ref_trace = reference.run(stimulus)
    for engine in engines[1:]:
        if engine == "batched":
            from repro.sim.batch import BatchedSimulator

            sim = BatchedSimulator(module)
            if reference.register_count != sim.register_count:
                return (f"register count: {reference_name}="
                        f"{reference.register_count} "
                        f"batched={sim.register_count}")
            traces = sim.run_batch([stimulus, stimulus])
            states = sim.register_states()
            for lane in range(2):
                if traces[lane] != ref_trace:
                    cycle = next(
                        i for i, (a, b)
                        in enumerate(zip(ref_trace, traces[lane]))
                        if a != b)
                    return (f"cycle {cycle}: outputs differ "
                            f"({reference_name}={ref_trace[cycle]!r} "
                            f"batched[lane {lane}]="
                            f"{traces[lane][cycle]!r})")
                if states[lane] != reference.register_state():
                    return (f"final register state: {reference_name}="
                            f"{reference.register_state()!r} "
                            f"batched[lane {lane}]={states[lane]!r}")
            continue
        sim = RTLSimulator(module, engine=engine)
        if reference.register_count != sim.register_count:
            return (f"register count: {reference_name}="
                    f"{reference.register_count} "
                    f"{engine}={sim.register_count}")
        trace = sim.run(stimulus)
        if trace != ref_trace:
            cycle = next(i for i, (a, b) in enumerate(zip(ref_trace, trace))
                         if a != b)
            return (f"cycle {cycle}: outputs differ "
                    f"({reference_name}={ref_trace[cycle]!r} "
                    f"{engine}={trace[cycle]!r})")
        if sim.register_state() != reference.register_state():
            return (f"final register state: {reference_name}="
                    f"{reference.register_state()!r} "
                    f"{engine}={sim.register_state()!r}")
    return None


__all__ = [
    "BATCH_NATIVE_WIDTH",
    "SIM_ENGINES",
    "BatchCompiledModule",
    "CompiledModule",
    "batch_kind",
    "cached_schedule",
    "clear_compile_cache",
    "compile_cache_stats",
    "compile_module",
    "compile_module_batch",
    "crosscheck_engines",
    "random_stimulus",
    "resolve_engine",
]
