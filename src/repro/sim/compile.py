"""Netlist-to-Python compilation for the RTL simulator.

The interpreting engine in :mod:`repro.sim.rtl_sim` re-walks the
``comb``/``seq`` netlist op by op every cycle, paying a dict lookup per SSA
value and a dispatch per operation.  This module removes that per-cycle
overhead: it takes the simulator's topological schedule once and
code-generates a single straight-line Python ``step`` function per module —
one local variable per SSA value, constant-folded width masks, register
state in a flat list, and the outputs dict built in one literal — then
compiles it with :func:`compile`/``exec``.

The generated function has the signature ``step(inputs, regs)`` where
``inputs`` maps input-port names to ints (missing ports read 0) and
``regs`` is the flat mutable register-state list; it returns the
output-port dict observed before the clock edge and updates ``regs`` in
place.  :class:`~repro.sim.rtl_sim.RTLSimulator` wraps it behind the usual
``step``/``run``/``reset``/``output`` API via ``engine="compiled"``.

Semantics are bit-identical to the interpreter by construction (the same
evaluation rules from :mod:`repro.dialects.comb` are either inlined or
called as helpers), and :func:`crosscheck_engines` packages the
compiled-vs-interpreted comparison as a reusable differential oracle.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.dialects import comb
from repro.dialects.hw import HWModule
from repro.ir.core import IRError, Operation
from repro.utils.bits import mask

#: Engine selector values accepted by RTLSimulator/cosim/CLI.
SIM_ENGINES = ("auto", "interp", "compiled")


def resolve_engine(engine: str) -> str:
    if engine not in SIM_ENGINES:
        raise IRError(
            f"unknown sim engine {engine!r}; expected one of {SIM_ENGINES}"
        )
    return engine


class CompiledModule:
    """One compiled module: the generated ``step`` plus its metadata."""

    __slots__ = ("module", "source", "step", "register_ops")

    def __init__(self, module: HWModule, source: str, step,
                 register_ops: List[Operation]):
        self.module = module
        self.source = source
        self.step = step
        self.register_ops = register_ops


# Signed comparisons on w-bit unsigned patterns: XORing both sides with the
# sign bit maps two's-complement order onto unsigned order, so the generated
# code stays branch-free.  Division/modulo/arithmetic-shift keep the shared
# helpers (they are rare in real netlists and not worth inlining).
_SIGNED_ICMP = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_UNSIGNED_ICMP = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
                  "ugt": ">", "uge": ">="}


def compile_module(module: HWModule,
                   order: Optional[List[Operation]] = None) -> CompiledModule:
    """Code-generate and compile the per-cycle ``step`` for ``module``.

    ``order`` is the register-first topological schedule; when omitted it is
    recomputed with :meth:`RTLSimulator._schedule`.  Raises :class:`IRError`
    on operations without a generation rule.
    """
    if order is None:
        from repro.sim.rtl_sim import RTLSimulator
        order = RTLSimulator._schedule(module)

    names: Dict[object, str] = {}          # Value -> local variable name
    env: Dict[str, object] = {
        "_divu": comb._eval_divu,
        "_divs": comb._eval_divs,
        "_modu": comb._eval_modu,
        "_mods": comb._eval_mods,
        "_shrs": comb._eval_shrs,
    }
    lines: List[str] = []
    outputs: List[str] = []                # "'name': vN" dict entries
    register_ops: List[Operation] = []

    def ref(value) -> str:
        try:
            return names[value]
        except KeyError:
            raise IRError(
                f"module '{module.name}': operand of unscheduled origin"
            ) from None

    def define(op: Operation) -> str:
        name = f"v{len(names)}"
        names[op.result] = name
        return name

    for op in order:
        kind = op.name
        if kind == "hw.input":
            port = module.port(op.attr("name"))
            lines.append(
                f"    {define(op)} = inputs.get({port.name!r}, 0)"
                f" & {mask(port.width):#x}"
            )
        elif kind == "hw.output":
            outputs.append(f"{op.attr('name')!r}: {ref(op.operands[0])}")
        elif kind == "seq.compreg":
            lines.append(f"    {define(op)} = regs[{len(register_ops)}]")
            register_ops.append(op)
        else:
            lines.append(f"    {define(op)} = {_expression(op, ref, env)}")

    body = lines or ["    pass"]
    body.append("    _outputs = {" + ", ".join(outputs) + "}")
    # Clock edge: every register's cycle value is already in a local, so
    # in-place updates cannot disturb other registers' data expressions.
    for index, op in enumerate(register_ops):
        data = ref(op.operands[0])
        if len(op.operands) == 2:
            body.append(f"    if {ref(op.operands[1])}:")
            body.append(f"        regs[{index}] = {data}")
        else:
            body.append(f"    regs[{index}] = {data}")
    body.append("    return _outputs")
    source = "def _step(inputs, regs):\n" + "\n".join(body) + "\n"

    code = compile(source, f"<rtl-sim:{module.name}>", "exec")
    exec(code, env)  # noqa: S102 - generated from the verified netlist only
    return CompiledModule(module, source, env["_step"], register_ops)


def _expression(op: Operation, ref, env: Dict[str, object]) -> str:
    """Python expression computing ``op`` from already-masked operands.

    Invariant: every local holds its value masked to its width, so purely
    width-preserving operators (and/or/xor/mux/...) need no re-masking and
    the masks that remain are folded to literals at compile time.
    """
    kind = op.name
    width = op.result.width
    m = f"{mask(width):#x}"
    operands = [ref(value) for value in op.operands]
    if kind == "comb.constant":
        return f"{op.attr('value') & mask(width):#x}"
    if kind in ("comb.add", "comb.sub", "comb.mul"):
        sign = {"comb.add": "+", "comb.sub": "-", "comb.mul": "*"}[kind]
        return f"({operands[0]} {sign} {operands[1]}) & {m}"
    if kind == "comb.and":
        return f"{operands[0]} & {operands[1]}"
    if kind == "comb.or":
        return f"{operands[0]} | {operands[1]}"
    if kind == "comb.xor":
        return f"{operands[0]} ^ {operands[1]}"
    if kind == "comb.not":
        return f"{operands[0]} ^ {m}"
    if kind == "comb.divu":
        return f"({operands[0]} // {operands[1]} if {operands[1]} else {m})"
    if kind == "comb.modu":
        return (f"({operands[0]} % {operands[1]} if {operands[1]} "
                f"else {operands[0]})")
    if kind in ("comb.divs", "comb.mods", "comb.shrs"):
        helper = {"comb.divs": "_divs", "comb.mods": "_mods",
                  "comb.shrs": "_shrs"}[kind]
        return f"{helper}({operands[0]}, {operands[1]}, {width})"
    if kind == "comb.shl":
        return (f"(({operands[0]} << {operands[1]}) & {m} "
                f"if {operands[1]} < {width} else 0)")
    if kind == "comb.shru":
        return (f"({operands[0]} >> {operands[1]} "
                f"if {operands[1]} < {width} else 0)")
    if kind == "comb.icmp":
        predicate = op.attr("predicate")
        a, b = operands
        if predicate in _UNSIGNED_ICMP:
            return f"(1 if {a} {_UNSIGNED_ICMP[predicate]} {b} else 0)"
        sign_bit = f"{1 << (op.operands[0].width - 1):#x}"
        return (f"(1 if ({a} ^ {sign_bit}) {_SIGNED_ICMP[predicate]} "
                f"({b} ^ {sign_bit}) else 0)")
    if kind == "comb.mux":
        return f"({operands[1]} if {operands[0]} else {operands[2]})"
    if kind == "comb.extract":
        low = op.attr("low")
        shifted = operands[0] if low == 0 else f"({operands[0]} >> {low})"
        if low + width == op.operands[0].width:
            return shifted if low else operands[0]
        return f"{shifted} & {m}"
    if kind == "comb.concat":
        out = operands[0]
        for value, text in zip(op.operands[1:], operands[1:]):
            out = f"({out} << {value.width} | {text})"
        return out
    if kind == "comb.replicate":
        # value * 0b...0001_0001 concatenates the copies in one multiply.
        chunk_width = op.operands[0].width
        times = width // chunk_width
        repunit = sum(1 << (chunk_width * i) for i in range(times))
        return f"{operands[0]} * {repunit:#x}"
    if kind == "comb.rom":
        table_name = f"_rom{len(env)}"
        env[table_name] = tuple(v & mask(width) for v in op.attr("values"))
        return (f"({table_name}[{operands[0]}] "
                f"if {operands[0]} < {len(env[table_name])} else 0)")
    raise IRError(f"no compilation rule for '{kind}'")


# ---------------------------------------------------------------------------
# Differential oracle: compiled vs interpreted
# ---------------------------------------------------------------------------

def random_stimulus(module: HWModule, cycles: int,
                    seed: int = 0) -> List[Dict[str, int]]:
    """Reproducible random input trace exercising every input port."""
    rng = random.Random(seed)
    ports = module.inputs
    return [
        {port.name: rng.getrandbits(port.width) for port in ports}
        for _ in range(cycles)
    ]


def crosscheck_engines(module: HWModule, cycles: int = 32,
                       seed: int = 0) -> Optional[str]:
    """Run both engines over the same random stimulus.

    Returns ``None`` when the output traces, register counts and final
    register states agree exactly, else a human-readable mismatch
    description.  This is the standing compiled-vs-interpreted equivalence
    oracle used by the tests and the fuzz campaigns.
    """
    from repro.sim.rtl_sim import RTLSimulator

    interp = RTLSimulator(module, engine="interp")
    compiled = RTLSimulator(module, engine="compiled")
    if interp.register_count != compiled.register_count:
        return (f"register count: interp={interp.register_count} "
                f"compiled={compiled.register_count}")
    for cycle, vector in enumerate(random_stimulus(module, cycles, seed)):
        a = interp.step(vector)
        b = compiled.step(vector)
        if a != b:
            return (f"cycle {cycle}: outputs differ "
                    f"(interp={a!r} compiled={b!r})")
    if interp.register_state() != compiled.register_state():
        return (f"final register state: interp={interp.register_state()!r} "
                f"compiled={compiled.register_state()!r}")
    return None


__all__ = [
    "SIM_ENGINES",
    "CompiledModule",
    "compile_module",
    "crosscheck_engines",
    "random_stimulus",
    "resolve_engine",
]
