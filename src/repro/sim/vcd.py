"""VCD (Value Change Dump) waveform tracing for the RTL simulator.

Wraps :class:`~repro.sim.rtl_sim.RTLSimulator` and records every port and
pipeline register each cycle into an IEEE-1364 VCD file, so generated ISAX
modules can be debugged in any waveform viewer (GTKWave etc.) exactly like
the SystemVerilog the module was emitted as.

    tracer = VCDTracer(module)
    for vector in stimulus:
        tracer.step(vector)
    tracer.save("dotp.vcd")
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional

from repro.dialects.hw import HWModule
from repro.sim.rtl_sim import RTLSimulator

#: Printable identifier characters per the VCD grammar.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short unique VCD identifier for signal ``index``."""
    base = len(_ID_CHARS)
    out = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, base)
        out = _ID_CHARS[digit] + out
    return out


def _binary(value: int, width: int) -> str:
    return format(value & ((1 << width) - 1), f"0{width}b")


class VCDTracer:
    """Runs a module while recording a VCD trace."""

    def __init__(self, module: HWModule, timescale: str = "1ns",
                 engine: str = "auto"):
        self.module = module
        self.sim = RTLSimulator(module, engine=engine)
        self.timescale = timescale
        self._signals: List[tuple] = []   # (name, width, vcd id, getter key)
        self._last: Dict[str, Optional[int]] = {}
        self._changes: List[str] = []
        self._time = 0
        index = 0
        for port in module.ports:
            self._signals.append((port.name, port.width, _identifier(index),
                                  ("port", port.name)))
            index += 1
        for op in module.registers():
            name = op.attr("name")
            self._signals.append((name, op.result.width, _identifier(index),
                                  ("reg", op)))
            index += 1
        for _name, _width, vcd_id, _key in self._signals:
            self._last[vcd_id] = None

    # ------------------------------------------------------------------ run
    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Advance one cycle, recording all signal values."""
        inputs = inputs or {}
        # A register's output during cycle t is its *pre-edge* value, so
        # capture the register state before stepping: that keeps every
        # signal at one timestamp coherent (a register change appears one
        # timestamp after the data input that caused it, exactly like the
        # emitted SystemVerilog in a real simulator).
        pre_edge = {op: self.sim.register_value(op)
                    for op in self.module.registers()}
        outputs = self.sim.step(inputs)
        values: Dict[str, int] = {}
        values.update({p.name: inputs.get(p.name, 0)
                       for p in self.module.inputs})
        values.update(outputs)
        self._changes.append(f"#{self._time}")
        for name, width, vcd_id, key in self._signals:
            if key[0] == "port":
                value = values.get(key[1], 0)
            else:
                value = pre_edge[key[1]]
            if self._last[vcd_id] != value:
                self._last[vcd_id] = value
                if width == 1:
                    self._changes.append(f"{value & 1}{vcd_id}")
                else:
                    self._changes.append(f"b{_binary(value, width)} {vcd_id}")
        self._time += 1
        return outputs

    # ----------------------------------------------------------------- emit
    def dumps(self) -> str:
        out = io.StringIO()
        out.write("$date\n  repro-longnail RTL simulation\n$end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {_sanitize(self.module.name)} $end\n")
        for name, width, vcd_id, _key in self._signals:
            out.write(f"$var wire {width} {vcd_id} {_sanitize(name)} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        for line in self._changes:
            out.write(line + "\n")
        out.write(f"#{self._time}\n")
        return out.getvalue()

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def trace_instruction(artifact, name: str, inputs: Dict[str, int],
                      cycles: Optional[int] = None,
                      engine: str = "auto") -> VCDTracer:
    """Convenience: trace one functionality driven with constant inputs for
    ``cycles`` (default: pipeline depth + 2)."""
    functionality = artifact.artifact(name)
    tracer = VCDTracer(functionality.module, engine=engine)
    depth = cycles or functionality.schedule.makespan + 2
    for _ in range(depth):
        tracer.step(inputs)
    return tracer
