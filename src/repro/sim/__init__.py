"""Simulation substrate used to verify the generated hardware.

The paper verifies functional correctness "by performing RTL simulation of
the execution of handwritten assembler programs" (Section 5.3).  This
package provides the equivalents:

* :mod:`repro.sim.rtl_sim` — a cycle-driven simulator for generated hw
  modules (the ISAX datapaths), with three engines: a reference
  interpreter, a netlist-to-Python compiled engine
  (:mod:`repro.sim.compile`), and a numpy lane-parallel batched engine
  (:mod:`repro.sim.batch`, ``engine="interp"|"compiled"|"batched"|"auto"``;
  see ``docs/simulation.md``),
* :mod:`repro.sim.coredsl_interp` — a golden-model interpreter executing
  CoreDSL behaviors directly on an architectural state,
* :mod:`repro.sim.riscv` — an RV32I assembler, a functional ISS, and
  cycle-approximate timing models of the four host cores with SCAIE-V-style
  ISAX integration (in-pipeline / tightly-coupled / decoupled / always).
"""

from repro.sim.rtl_sim import RTLSimulator
from repro.sim.compile import (
    SIM_ENGINES,
    BatchCompiledModule,
    CompiledModule,
    clear_compile_cache,
    compile_cache_stats,
    compile_module,
    compile_module_batch,
    crosscheck_engines,
)
from repro.sim.batch import BatchedSimulator
from repro.sim.coredsl_interp import ArchState, CoreDSLInterpreter
from repro.sim.cosim import (
    CosimResult,
    VerificationReport,
    cosim_always,
    cosim_instruction,
    verify_artifact,
)

__all__ = [
    "RTLSimulator",
    "SIM_ENGINES",
    "BatchCompiledModule",
    "BatchedSimulator",
    "CompiledModule",
    "clear_compile_cache",
    "compile_cache_stats",
    "compile_module",
    "compile_module_batch",
    "crosscheck_engines",
    "ArchState",
    "CoreDSLInterpreter",
    "CosimResult",
    "VerificationReport",
    "cosim_always",
    "cosim_instruction",
    "verify_artifact",
]
